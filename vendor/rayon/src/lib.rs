//! Vendored, API-compatible subset of the `rayon` crate.
//!
//! The workspace builds in an offline container, so the slice of rayon the Monte Carlo
//! engine and the benches use is reimplemented on plain `std::thread::scope`:
//! `into_par_iter()` on ranges, vectors and slices, the `map` / `reduce` / `sum` /
//! `collect` adaptors, and a minimal [`ThreadPoolBuilder`] whose `install` scopes a
//! thread count (used by the determinism-across-thread-counts tests).
//!
//! The execution model is deliberately simple: `map` is an *eager parallel* step — the
//! input items are split into one contiguous block per worker thread, each block is
//! mapped on its own thread, and the outputs are reassembled in input order. Downstream
//! `reduce` / `sum` / `collect` then run sequentially over the already-computed values.
//! That preserves rayon's observable semantics for the deterministic workloads in this
//! repository (order-preserving `collect`, order-independent `reduce`) while keeping
//! the heavy per-item closures — the only part worth parallelising here — off a single
//! core.

use std::cell::Cell;
use std::num::NonZeroUsize;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel iterators will use on this thread.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(|n| n.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Error type returned by [`ThreadPoolBuilder::build`] (the shim cannot fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped thread-count configuration, mirroring `rayon::ThreadPool`.
///
/// The shim does not keep persistent worker threads; `install` simply pins the thread
/// count that parallel iterators on this thread will split work into, which is exactly
/// what the determinism tests need.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count in effect.
    ///
    /// The previous thread count is restored even if `op` panics (as with real rayon,
    /// `install`'s effect ends with the call).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|n| n.set(self.0));
            }
        }
        let _restore = Restore(POOL_THREADS.with(|n| n.replace(Some(self.num_threads))));
        op()
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Builder for [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (0 means "use the default").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(current_num_threads),
        })
    }
}

/// Applies `f` to every item of `items` using up to [`current_num_threads`] scoped
/// threads, returning outputs in input order.
fn parallel_map<T: Send, U: Send>(items: Vec<T>, f: impl Fn(T) -> U + Sync) -> Vec<U> {
    let threads = current_num_threads().max(1);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut blocks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_len));
        blocks.push(std::mem::replace(&mut items, rest));
    }
    let f = &f;
    let mut outputs: Vec<Vec<U>> = std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|block| scope.spawn(move || block.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(outputs.iter().map(Vec::len).sum());
    for block in &mut outputs {
        out.append(block);
    }
    out
}

pub mod iter {
    //! Parallel iterator traits and adaptors.

    use super::parallel_map;

    /// Types convertible into a parallel iterator.
    pub trait IntoParallelIterator {
        /// The item type.
        type Item: Send;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Types whose references yield a parallel iterator.
    pub trait IntoParallelRefIterator<'data> {
        /// The item type.
        type Item: Send;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Borrows `self` as a parallel iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    /// The shim's parallel iterator: a materialised item list whose `map` step runs on
    /// scoped threads.
    pub struct ParIter<T: Send> {
        items: Vec<T>,
    }

    /// Minimal counterpart of `rayon::iter::ParallelIterator`.
    pub trait ParallelIterator: Sized {
        /// The item type.
        type Item: Send;

        /// Materialises the remaining items in order.
        fn into_vec(self) -> Vec<Self::Item>;

        /// Maps every item through `f` in parallel, preserving order.
        fn map<U: Send, F: Fn(Self::Item) -> U + Sync + Send>(self, f: F) -> ParIter<U> {
            ParIter {
                items: parallel_map(self.into_vec(), f),
            }
        }

        /// Collects the items in order.
        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            self.into_vec().into_iter().collect()
        }

        /// Reduces the items with `op`, starting from `identity`.
        ///
        /// `op` must be associative for parity with rayon; the shim folds in input
        /// order, which any rayon-correct reduction also permits.
        fn reduce<Id, Op>(self, identity: Id, op: Op) -> Self::Item
        where
            Id: Fn() -> Self::Item + Sync + Send,
            Op: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
        {
            self.into_vec().into_iter().fold(identity(), op)
        }

        /// Sums the items.
        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item> + Send,
        {
            self.into_vec().into_iter().sum()
        }

        /// Number of items.
        fn count(self) -> usize {
            self.into_vec().len()
        }

        /// Runs `f` on every item (in parallel, like `map`, discarding outputs).
        fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F) {
            parallel_map(self.into_vec(), f);
        }
    }

    impl<T: Send> ParallelIterator for ParIter<T> {
        type Item = T;

        fn into_vec(self) -> Vec<T> {
            self.items
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = ParIter<T>;

        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = ParIter<usize>;

        fn into_par_iter(self) -> ParIter<usize> {
            ParIter {
                items: self.collect(),
            }
        }
    }

    impl IntoParallelIterator for std::ops::Range<u64> {
        type Item = u64;
        type Iter = ParIter<u64>;

        fn into_par_iter(self) -> ParIter<u64> {
            ParIter {
                items: self.collect(),
            }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelIterator for &'data [T] {
        type Item = &'data T;
        type Iter = ParIter<&'data T>;

        fn into_par_iter(self) -> ParIter<&'data T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = ParIter<&'data T>;

        fn par_iter(&'data self) -> ParIter<&'data T> {
            self.as_slice().into_par_iter()
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = ParIter<&'data T>;

        fn par_iter(&'data self) -> ParIter<&'data T> {
            self.into_par_iter()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `rayon::prelude`.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_sums() {
        let total = (0..100usize)
            .into_par_iter()
            .map(|x| x + 1)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 5050);
    }

    #[test]
    fn sum_matches_sequential() {
        let total: u64 = (0..1000u64).into_par_iter().sum();
        assert_eq!(total, 499_500);
    }

    #[test]
    fn par_iter_over_slices() {
        let data = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn install_pins_thread_count() {
        for threads in [1usize, 2, 4, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let seen = pool.install(super::current_num_threads);
            assert_eq!(seen, threads);
            let out: Vec<usize> =
                pool.install(|| (0..100usize).into_par_iter().map(|x| x * x).collect());
            assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn install_restores_thread_count_after_a_panic() {
        let outer = super::current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"))
        }));
        assert!(caught.is_err());
        assert_eq!(
            super::current_num_threads(),
            outer,
            "panicking install must not pin the thread count"
        );
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let reference: Vec<usize> = (0..257usize).into_par_iter().map(|x| x * 3).collect();
        for threads in [1usize, 2, 3, 5, 16] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: Vec<usize> =
                pool.install(|| (0..257usize).into_par_iter().map(|x| x * 3).collect());
            assert_eq!(got, reference);
        }
    }
}
