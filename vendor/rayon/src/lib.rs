//! Vendored, API-compatible subset of the `rayon` crate.
//!
//! The workspace builds in an offline container, so the slice of rayon the Monte Carlo
//! engine and the benches use is reimplemented here: `into_par_iter()` on ranges,
//! vectors and slices, the `map` / `reduce` / `sum` / `collect` adaptors, and a
//! minimal [`ThreadPoolBuilder`] whose `install` scopes a thread count (used by the
//! determinism-across-thread-counts tests).
//!
//! # Execution model
//!
//! `map` is an *eager parallel* step: the input items are split into chunk tasks, the
//! tasks are executed by a **lazily-initialized persistent worker pool** (see
//! `pool` module), and the outputs are reassembled in input order. Downstream `reduce` /
//! `sum` / `collect` then run sequentially over the already-computed values. That
//! preserves rayon's observable semantics for the deterministic workloads in this
//! repository (order-preserving `collect`, order-independent `reduce`) while keeping
//! the heavy per-item closures off a single core — and, unlike the previous
//! `std::thread::scope` shim, without paying a `clone(2)`/`join` pair per worker per
//! parallel call on the sampling hot path.
//!
//! # The persistent pool
//!
//! Workers are OS threads spawned once, on first use, and parked on a condition
//! variable when idle. Work distribution follows rayon's shape at chunk granularity:
//! a **shared injector queue** receives jobs submitted from outside the pool,
//! **per-worker deques** receive jobs submitted by a worker (nested parallelism), and
//! idle workers **steal**: own deque first (LIFO, for locality), then the injector,
//! then the other workers' deques (FIFO, oldest chunk first). The queues are
//! mutex-protected — chunk tasks in this repository are thousands of Monte Carlo
//! samples each, so lock traffic is nanoseconds against hundreds of microseconds of
//! work, and the simplicity keeps the shim auditable.
//!
//! The submitting thread never blocks idly: it executes chunk tasks itself while its
//! job is unfinished ("caller helps"), which is also what makes nested parallel calls
//! deadlock-free — a worker that submits a sub-job can always finish that sub-job
//! alone even if every other worker is busy.
//!
//! Panics inside a task are caught on the worker, stored on the job, and re-thrown on
//! the submitting thread once the job completes, so a panicking closure behaves as it
//! would under `std::thread::scope` (and workers survive to serve the next job).

use std::cell::Cell;
use std::num::NonZeroUsize;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads the machine defaults to (the persistent pool's size).
fn default_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The number of worker threads parallel iterators will split work for on this
/// thread: the count pinned by the innermost active [`ThreadPool::install`], or the
/// persistent pool's size (one worker per hardware thread) outside any `install`.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(|n| n.get())
        .unwrap_or_else(default_num_threads)
}

mod pool {
    //! The lazily-initialized persistent worker pool.

    use std::any::Any;
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    /// How a job's chunk closure is stored: a type-erased pointer to the caller's
    /// stack closure. Soundness: [`execute`] does not return until every chunk has
    /// finished running, so the pointee outlives every dereference; after the last
    /// decrement the pointer may dangle inside a still-alive [`Job`], but it is never
    /// dereferenced again.
    struct RunnerPtr(*const (dyn Fn(usize) + Sync));

    unsafe impl Send for RunnerPtr {}
    unsafe impl Sync for RunnerPtr {}

    /// The two ways a job owns its closure. Blocking [`execute`] borrows the
    /// caller's stack closure behind a type-erased pointer (zero allocation on the
    /// sampling hot path); asynchronously [`submit`]ted jobs must own their
    /// closure, because the submitting stack frame is free to unwind (or
    /// `mem::forget` the [`TaskSet`]) while tasks are still running — a borrowed
    /// pointer would be unsound there.
    enum Runner {
        /// Borrowed from a blocked `execute` caller; see [`RunnerPtr`].
        Borrowed(RunnerPtr),
        /// Owned by the job itself; lives until the last task retires.
        Owned(Arc<dyn Fn(usize) + Send + Sync>),
    }

    /// One parallel job: `runner(i)` computes chunk `i`.
    struct Job {
        runner: Runner,
        /// Chunks not yet completed; guarded so the submitter can sleep on `done`.
        remaining: Mutex<usize>,
        done: Condvar,
        /// First panic payload raised by any chunk, re-thrown by the submitter.
        panic: Mutex<Option<Box<dyn Any + Send>>>,
    }

    /// One claimable unit of work: chunk `index` of `job`.
    struct Task {
        job: Arc<Job>,
        index: usize,
    }

    impl Task {
        /// Runs the chunk, records a panic if one escapes, and retires the task.
        fn run(self) {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                match &self.job.runner {
                    // SAFETY: `execute` keeps the closure alive until `remaining`
                    // hits zero, which cannot happen before this call returns.
                    Runner::Borrowed(ptr) => (unsafe { &*ptr.0 })(self.index),
                    Runner::Owned(f) => f(self.index),
                }
            }));
            if let Err(payload) = result {
                let mut slot = self.job.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            let mut remaining = self.job.remaining.lock().unwrap();
            *remaining -= 1;
            if *remaining == 0 {
                self.job.done.notify_all();
            }
        }
    }

    /// The shared pool state: injector, per-worker deques, and the idle-worker park.
    struct Pool {
        /// Jobs submitted from outside the pool land here.
        injector: Mutex<VecDeque<Task>>,
        /// Jobs submitted *by* worker `w` (nested parallelism) land in `deques[w]`.
        deques: Vec<Mutex<VecDeque<Task>>>,
        /// Generation counter bumped on every push; idle workers wait for it to move.
        generation: Mutex<u64>,
        wake: Condvar,
    }

    thread_local! {
        /// The index of this thread inside the pool, if it is a pool worker.
        static WORKER_INDEX: std::cell::Cell<Option<usize>> =
            const { std::cell::Cell::new(None) };
    }

    static POOL: OnceLock<Pool> = OnceLock::new();

    /// The persistent pool, spawning its workers on first use.
    fn global() -> &'static Pool {
        POOL.get_or_init(|| {
            let size = super::default_num_threads();
            let pool = Pool {
                injector: Mutex::new(VecDeque::new()),
                deques: (0..size).map(|_| Mutex::new(VecDeque::new())).collect(),
                generation: Mutex::new(0),
                wake: Condvar::new(),
            };
            for index in 0..size {
                std::thread::Builder::new()
                    .name(format!("rayon-shim-worker-{index}"))
                    .spawn(move || worker_main(index))
                    .expect("spawning a pool worker");
            }
            pool
        })
    }

    /// Claims one task: own deque newest-first when called from worker `own`, then
    /// the injector, then the other deques oldest-first.
    fn claim_task(pool: &Pool, own: Option<usize>) -> Option<Task> {
        if let Some(w) = own {
            if let Some(task) = pool.deques[w].lock().unwrap().pop_back() {
                return Some(task);
            }
        }
        if let Some(task) = pool.injector.lock().unwrap().pop_front() {
            return Some(task);
        }
        let start = own.map_or(0, |w| w + 1);
        let n = pool.deques.len();
        for offset in 0..n {
            let victim = (start + offset) % n;
            if Some(victim) == own {
                continue;
            }
            if let Some(task) = pool.deques[victim].lock().unwrap().pop_front() {
                return Some(task);
            }
        }
        None
    }

    /// A pool worker: claim tasks until none remain, then park until new work is
    /// pushed.
    fn worker_main(index: usize) {
        WORKER_INDEX.with(|w| w.set(Some(index)));
        let pool = global();
        loop {
            if let Some(task) = claim_task(pool, Some(index)) {
                task.run();
                continue;
            }
            let mut generation = pool.generation.lock().unwrap();
            let seen = *generation;
            // Re-check under the generation lock: a push between the failed claim
            // and this point bumped the generation, so the wait below falls through.
            if let Some(task) = claim_task(pool, Some(index)) {
                drop(generation);
                task.run();
                continue;
            }
            while *generation == seen {
                generation = pool.wake.wait(generation).unwrap();
            }
        }
    }

    /// Enqueues one task per chunk of `job` and wakes the workers.
    fn enqueue(pool: &Pool, job: &Arc<Job>, chunks: usize, own: Option<usize>) {
        {
            // Nested submissions go to the submitting worker's own deque (it will
            // pop them newest-first); outside submissions go to the shared injector.
            let queue = match own {
                Some(w) => &pool.deques[w],
                None => &pool.injector,
            };
            let mut queue = queue.lock().unwrap();
            for index in 0..chunks {
                queue.push_back(Task {
                    job: Arc::clone(job),
                    index,
                });
            }
        }
        {
            let mut generation = pool.generation.lock().unwrap();
            *generation += 1;
        }
        pool.wake.notify_all();
    }

    /// Caller helps: run tasks (the job's own chunks, or — under concurrent jobs —
    /// another job's, which still makes global progress) until nothing is
    /// claimable, then sleep until `job` retires.
    fn help_until_done(pool: &Pool, job: &Job, own: Option<usize>) {
        loop {
            if *job.remaining.lock().unwrap() == 0 {
                break;
            }
            if let Some(task) = claim_task(pool, own) {
                task.run();
                continue;
            }
            let mut remaining = job.remaining.lock().unwrap();
            while *remaining > 0 {
                remaining = job.done.wait(remaining).unwrap();
            }
        }
    }

    /// Re-throws the first panic any of `job`'s chunks raised, if one did.
    fn rethrow(job: &Job) {
        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Runs `runner(0..chunks)` across the persistent pool, blocking until every
    /// chunk has completed. The calling thread executes chunks too while it waits.
    ///
    /// Panics raised by any chunk are re-thrown here once the job has fully retired
    /// (so no chunk can still be borrowing the closure when the stack unwinds).
    pub fn execute(chunks: usize, runner: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        if chunks == 1 {
            runner(0);
            return;
        }
        let pool = global();
        // SAFETY: see `RunnerPtr` — this function does not return (or unwind) until
        // `remaining` reaches zero, i.e. until no task can touch the pointer again.
        // The transmute only erases the reference's lifetime into the raw pointer.
        let runner: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(runner)
        };
        let job = Arc::new(Job {
            runner: Runner::Borrowed(RunnerPtr(runner)),
            remaining: Mutex::new(chunks),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let own = WORKER_INDEX.with(|w| w.get());
        enqueue(pool, &job, chunks, own);
        help_until_done(pool, &job, own);
        rethrow(&job);
    }

    /// A handle to a batch of tasks submitted asynchronously with
    /// [`submit_tasks`](crate::submit_tasks): the
    /// submitter keeps running (e.g. accepting more requests) while the pool works,
    /// and [`join`](TaskSet::join)s when it needs completion.
    ///
    /// Dropping the handle without joining is safe — the tasks keep running to
    /// completion on the pool (the job owns its closure), it just becomes
    /// impossible to observe when they finish or to see their panics.
    #[must_use = "dropping a TaskSet makes its completion and panics unobservable"]
    pub struct TaskSet {
        job: Arc<Job>,
    }

    impl TaskSet {
        /// Whether every task of the set has retired (non-blocking).
        pub fn is_complete(&self) -> bool {
            *self.job.remaining.lock().unwrap() == 0
        }

        /// Blocks until every task of the set has retired, helping the pool run
        /// claimable tasks while it waits (so joining from inside a worker cannot
        /// deadlock). Re-throws the first panic any task raised.
        pub fn join(self) {
            let pool = global();
            let own = WORKER_INDEX.with(|w| w.get());
            help_until_done(pool, &self.job, own);
            rethrow(&self.job);
        }
    }

    /// Enqueues `runner(0..chunks)` on the persistent pool and returns immediately
    /// with a [`TaskSet`] handle; the closure is owned by the job, so the caller's
    /// stack is free to move on (unlike [`execute`], which borrows).
    ///
    /// Tasks run on the global workers regardless of any
    /// [`ThreadPool::install`](super::ThreadPool::install) pin on the submitting
    /// thread — the pin is thread-local state for *splitting* decisions, and the
    /// submitting thread is precisely not the one running these tasks.
    pub fn submit(chunks: usize, runner: Arc<dyn Fn(usize) + Send + Sync>) -> TaskSet {
        let job = Arc::new(Job {
            runner: Runner::Owned(runner),
            remaining: Mutex::new(chunks),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        if chunks > 0 {
            let pool = global();
            let own = WORKER_INDEX.with(|w| w.get());
            enqueue(pool, &job, chunks, own);
        }
        TaskSet { job }
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`] (the shim cannot fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped thread-count configuration, mirroring `rayon::ThreadPool`.
///
/// The shim executes on one global persistent worker pool; `install` pins the count
/// that parallel iterators on this thread *split work into*, which is exactly what
/// the determinism-across-thread-counts tests need, while execution stays on the
/// shared workers (plus the calling thread).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count in effect:
    /// [`current_num_threads`] reports this pool's size for the duration of the
    /// call, nested `install`s included.
    ///
    /// The previous thread count is restored even if `op` panics (as with real
    /// rayon, `install`'s effect ends with the call).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|n| n.set(self.0));
            }
        }
        let _restore = Restore(POOL_THREADS.with(|n| n.replace(Some(self.num_threads))));
        op()
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Builder for [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (0 means "use the default").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(current_num_threads),
        })
    }
}

/// Runs `task(0)`, `task(1)`, …, `task(count - 1)` across the persistent pool with
/// **one stealable unit per index** — no chunk batching.
///
/// This is the entry point for callers that have already sized their work: the sweep
/// scheduler in the core crate decomposes analysis cells into cost-estimated items
/// and wants each one individually stealable, so one long exact cell cannot strand a
/// tail of cheap sample chunks batched behind it the way the parallel iterators'
/// per-thread chunking would. Tasks are pushed in index order and drained through the
/// usual injector/deque stealing; the calling thread helps until the job retires.
///
/// With a pinned thread count of one ([`ThreadPool::install`]) the loop runs
/// sequentially on the calling thread, in index order. At higher counts execution
/// order is unspecified — callers must make results deterministic by *placement*
/// (each task writes its own slot), never by completion order.
pub fn for_each_task(count: usize, task: impl Fn(usize) + Sync) {
    if current_num_threads() <= 1 {
        for index in 0..count {
            task(index);
        }
        return;
    }
    pool::execute(count, &task);
}

pub use pool::TaskSet;

/// Submits `task(0)`, `task(1)`, …, `task(count - 1)` to the persistent pool and
/// returns immediately with a [`TaskSet`] handle — the asynchronous counterpart of
/// [`for_each_task`], for callers (like a long-running analysis service) that
/// interleave many independent jobs on the one pool instead of blocking on each.
///
/// The closure must be owned (`Arc`) because the submitting stack frame may
/// return, unwind, or drop the handle while tasks are still running; a borrowed
/// closure here would be unsound. Tasks submitted by different callers drain
/// through the same injector/deque stealing as everything else, so sets
/// interleave at task granularity. Join the handle to wait for completion and
/// observe panics; a submitter inside the pool helps run tasks while joining, so
/// nested submission cannot deadlock.
pub fn submit_tasks(count: usize, task: std::sync::Arc<dyn Fn(usize) + Send + Sync>) -> TaskSet {
    pool::submit(count, task)
}

/// Chunk tasks created per splitting thread: a few per thread so the stealing pool
/// can rebalance ragged per-item costs without making tasks too fine.
const CHUNKS_PER_THREAD: usize = 4;

/// Applies `f` to every item of `items` across the persistent pool, returning
/// outputs in input order.
fn parallel_map<T: Send, U: Send>(items: Vec<T>, f: impl Fn(T) -> U + Sync) -> Vec<U> {
    use std::sync::Mutex;

    let threads = current_num_threads().max(1);
    let len = items.len();
    if threads == 1 || len <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = len.div_ceil(threads * CHUNKS_PER_THREAD).max(1);
    let mut blocks: Vec<Mutex<Option<Vec<T>>>> = Vec::with_capacity(len.div_ceil(chunk_len));
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_len));
        blocks.push(Mutex::new(Some(std::mem::replace(&mut items, rest))));
    }
    let slots: Vec<Mutex<Option<Vec<U>>>> = blocks.iter().map(|_| Mutex::new(None)).collect();
    let f = &f;
    pool::execute(blocks.len(), &|index| {
        let block = blocks[index]
            .lock()
            .unwrap()
            .take()
            .expect("each chunk task claims its block exactly once");
        let out: Vec<U> = block.into_iter().map(f).collect();
        *slots[index].lock().unwrap() = Some(out);
    });
    let mut out = Vec::with_capacity(len);
    for slot in slots {
        out.append(
            &mut slot
                .into_inner()
                .unwrap()
                .expect("every chunk completed before execute returned"),
        );
    }
    out
}

pub mod iter {
    //! Parallel iterator traits and adaptors.

    use super::parallel_map;

    /// Types convertible into a parallel iterator.
    pub trait IntoParallelIterator {
        /// The item type.
        type Item: Send;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Types whose references yield a parallel iterator.
    pub trait IntoParallelRefIterator<'data> {
        /// The item type.
        type Item: Send;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;

        /// Borrows `self` as a parallel iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    /// The shim's parallel iterator: a materialised item list whose `map` step runs
    /// on the persistent pool.
    pub struct ParIter<T: Send> {
        items: Vec<T>,
    }

    /// Minimal counterpart of `rayon::iter::ParallelIterator`.
    pub trait ParallelIterator: Sized {
        /// The item type.
        type Item: Send;

        /// Materialises the remaining items in order.
        fn into_vec(self) -> Vec<Self::Item>;

        /// Maps every item through `f` in parallel, preserving order.
        fn map<U: Send, F: Fn(Self::Item) -> U + Sync + Send>(self, f: F) -> ParIter<U> {
            ParIter {
                items: parallel_map(self.into_vec(), f),
            }
        }

        /// Collects the items in order.
        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            self.into_vec().into_iter().collect()
        }

        /// Reduces the items with `op`, starting from `identity`.
        ///
        /// `op` must be associative for parity with rayon; the shim folds in input
        /// order, which any rayon-correct reduction also permits.
        fn reduce<Id, Op>(self, identity: Id, op: Op) -> Self::Item
        where
            Id: Fn() -> Self::Item + Sync + Send,
            Op: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
        {
            self.into_vec().into_iter().fold(identity(), op)
        }

        /// Sums the items.
        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item> + Send,
        {
            self.into_vec().into_iter().sum()
        }

        /// Number of items.
        fn count(self) -> usize {
            self.into_vec().len()
        }

        /// Runs `f` on every item (in parallel, like `map`, discarding outputs).
        fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F) {
            parallel_map(self.into_vec(), f);
        }
    }

    impl<T: Send> ParallelIterator for ParIter<T> {
        type Item = T;

        fn into_vec(self) -> Vec<T> {
            self.items
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = ParIter<T>;

        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = ParIter<usize>;

        fn into_par_iter(self) -> ParIter<usize> {
            ParIter {
                items: self.collect(),
            }
        }
    }

    impl IntoParallelIterator for std::ops::Range<u64> {
        type Item = u64;
        type Iter = ParIter<u64>;

        fn into_par_iter(self) -> ParIter<u64> {
            ParIter {
                items: self.collect(),
            }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelIterator for &'data [T] {
        type Item = &'data T;
        type Iter = ParIter<&'data T>;

        fn into_par_iter(self) -> ParIter<&'data T> {
            ParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = ParIter<&'data T>;

        fn par_iter(&'data self) -> ParIter<&'data T> {
            self.as_slice().into_par_iter()
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = ParIter<&'data T>;

        fn par_iter(&'data self) -> ParIter<&'data T> {
            self.into_par_iter()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `rayon::prelude`.
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_sums() {
        let total = (0..100usize)
            .into_par_iter()
            .map(|x| x + 1)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 5050);
    }

    #[test]
    fn sum_matches_sequential() {
        let total: u64 = (0..1000u64).into_par_iter().sum();
        assert_eq!(total, 499_500);
    }

    #[test]
    fn par_iter_over_slices() {
        let data = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn install_pins_thread_count() {
        for threads in [1usize, 2, 4, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let seen = pool.install(super::current_num_threads);
            assert_eq!(seen, threads);
            let out: Vec<usize> =
                pool.install(|| (0..100usize).into_par_iter().map(|x| x * x).collect());
            assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    /// Regression test: `current_num_threads()` inside `install` must report the
    /// *installed pool's* size — not the persistent pool's worker count, not
    /// `available_parallelism`, and not a stale outer pin — and nested installs must
    /// shadow and restore correctly.
    #[test]
    fn current_num_threads_reports_installed_pool_size() {
        let ambient = super::current_num_threads();
        let outer = ThreadPoolBuilder::new().num_threads(7).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let (inside_outer, inside_inner, back_in_outer) = outer.install(|| {
            let a = super::current_num_threads();
            let b = inner.install(super::current_num_threads);
            let c = super::current_num_threads();
            (a, b, c)
        });
        assert_eq!(inside_outer, 7, "install must pin its own size");
        assert_eq!(inside_inner, 3, "nested install must shadow the outer pin");
        assert_eq!(back_in_outer, 7, "leaving the nested install must restore");
        assert_eq!(
            super::current_num_threads(),
            ambient,
            "leaving install entirely must restore the ambient count"
        );
        assert_eq!(outer.current_num_threads(), 7);
    }

    #[test]
    fn install_restores_thread_count_after_a_panic() {
        let outer = super::current_num_threads();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| panic!("boom"))
        }));
        assert!(caught.is_err());
        assert_eq!(
            super::current_num_threads(),
            outer,
            "panicking install must not pin the thread count"
        );
    }

    #[test]
    fn panic_in_parallel_closure_propagates_to_the_caller() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..64usize)
                    .into_par_iter()
                    .map(|x| {
                        if x == 33 {
                            panic!("chunk exploded");
                        }
                        x
                    })
                    .collect::<Vec<_>>()
            })
        }));
        let payload = caught.expect_err("the chunk panic must reach the caller");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert_eq!(message, "chunk exploded");
        // The pool survives a panicking job and serves the next one.
        let ok: Vec<usize> = pool.install(|| (0..64usize).into_par_iter().map(|x| x).collect());
        assert_eq!(ok.len(), 64);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let reference: Vec<usize> = (0..257usize).into_par_iter().map(|x| x * 3).collect();
        for threads in [1usize, 2, 3, 5, 16] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: Vec<usize> =
                pool.install(|| (0..257usize).into_par_iter().map(|x| x * 3).collect());
            assert_eq!(got, reference);
        }
    }

    #[test]
    fn for_each_task_runs_every_index_exactly_once_at_any_thread_count() {
        for threads in [1usize, 2, 5, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            for count in [0usize, 1, 2, 97] {
                let hits: Vec<Mutex<usize>> = (0..count).map(|_| Mutex::new(0)).collect();
                pool.install(|| {
                    super::for_each_task(count, |index| {
                        *hits[index].lock().unwrap() += 1;
                    });
                });
                assert!(
                    hits.iter().all(|h| *h.lock().unwrap() == 1),
                    "count {count} at {threads} threads: some index ran 0 or 2+ times"
                );
            }
        }
    }

    #[test]
    fn for_each_task_propagates_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                super::for_each_task(64, |index| {
                    if index == 17 {
                        panic!("task exploded");
                    }
                });
            });
        }));
        assert!(caught.is_err(), "the task panic must reach the caller");
    }

    #[test]
    fn submit_tasks_runs_every_index_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        for count in [0usize, 1, 2, 97] {
            let hits: Arc<Vec<AtomicUsize>> =
                Arc::new((0..count).map(|_| AtomicUsize::new(0)).collect());
            let set = super::submit_tasks(count, {
                let hits = hits.clone();
                Arc::new(move |index| {
                    hits[index].fetch_add(1, Ordering::Relaxed);
                })
            });
            set.join();
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "count {count}: some index ran 0 or 2+ times"
            );
        }
    }

    #[test]
    fn submitted_sets_interleave_and_join_independently() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        // Two concurrently submitted sets share the pool; each join observes only
        // its own completion.
        let a_done = Arc::new(AtomicUsize::new(0));
        let b_done = Arc::new(AtomicUsize::new(0));
        let a = super::submit_tasks(64, {
            let a_done = a_done.clone();
            Arc::new(move |_| {
                std::thread::sleep(std::time::Duration::from_micros(100));
                a_done.fetch_add(1, Ordering::Relaxed);
            })
        });
        let b = super::submit_tasks(64, {
            let b_done = b_done.clone();
            Arc::new(move |_| {
                b_done.fetch_add(1, Ordering::Relaxed);
            })
        });
        b.join();
        assert_eq!(b_done.load(Ordering::Relaxed), 64);
        a.join();
        assert_eq!(a_done.load(Ordering::Relaxed), 64);
        assert!(a_done.load(Ordering::Relaxed) == 64 && b_done.load(Ordering::Relaxed) == 64);
    }

    #[test]
    fn submit_tasks_propagates_panics_on_join() {
        use std::sync::Arc;
        let set = super::submit_tasks(
            32,
            Arc::new(|index| {
                if index == 9 {
                    panic!("submitted task exploded");
                }
            }),
        );
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| set.join()));
        assert!(caught.is_err(), "the task panic must reach join()");
    }

    #[test]
    fn dropped_task_set_still_completes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let done = Arc::new(AtomicUsize::new(0));
        let set = super::submit_tasks(16, {
            let done = done.clone();
            Arc::new(move |_| {
                done.fetch_add(1, Ordering::Relaxed);
            })
        });
        drop(set);
        // The job owns its closure, so the tasks run to completion on the pool.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while done.load(Ordering::Relaxed) < 16 {
            assert!(
                std::time::Instant::now() < deadline,
                "dropped set's tasks never completed"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn nested_parallelism_completes() {
        // A parallel map whose closure itself runs a parallel map: the inner jobs
        // are submitted from pool workers (or the helping caller) and must complete
        // without deadlock because every submitter can run its own chunks.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0..8usize)
                .into_par_iter()
                .map(|i| {
                    (0..100usize)
                        .into_par_iter()
                        .map(|j| i * 100 + j)
                        .sum::<usize>()
                })
                .collect()
        });
        let expected: Vec<usize> = (0..8)
            .map(|i| (0..100).map(|j| i * 100 + j).sum())
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn work_executes_on_persistent_named_workers() {
        // With more splitting threads than the caller and per-chunk sleeps, the
        // parked pool workers must wake up and take chunks; their thread names
        // prove the persistent pool (not ad-hoc scoped threads) ran the work.
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let mut worker_names = BTreeSet::new();
        for _attempt in 0..3 {
            let names = Mutex::new(BTreeSet::new());
            pool.install(|| {
                (0..32usize).into_par_iter().for_each(|_| {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    if let Some(name) = std::thread::current().name() {
                        names.lock().unwrap().insert(name.to_string());
                    }
                });
            });
            worker_names.extend(
                names
                    .into_inner()
                    .unwrap()
                    .into_iter()
                    .filter(|n| n.starts_with("rayon-shim-worker-")),
            );
            if !worker_names.is_empty() {
                break;
            }
        }
        assert!(
            !worker_names.is_empty(),
            "no chunk ever ran on a persistent pool worker"
        );
    }
}
