//! Vendored, API-compatible subset of the `criterion` crate.
//!
//! The workspace builds offline, so the benchmarking surface the `bench` crate uses is
//! reimplemented here: [`Criterion`], [`BenchmarkId`], benchmark groups,
//! `criterion_group!` / `criterion_main!` and [`black_box`]. Measurement is a
//! wall-clock harness (short warm-up, then timed batches until a per-benchmark time
//! budget is spent) that reports mean / min / max per iteration. It has none of
//! criterion's statistical machinery, but produces stable, comparable numbers and the
//! same console workflow (`cargo bench`), which is all the repository needs.

use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter, e.g. `enumeration/9`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just a parameter, e.g. `100`.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// One timed measurement, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
struct Sample {
    nanos_per_iter: f64,
}

/// The per-benchmark timing harness handed to `iter` closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Sample>,
    time_budget: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, first warming up, then sampling until the time budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and batch-size calibration: aim for batches of roughly 10 ms.
        let warmup_start = Instant::now();
        black_box(routine());
        let one = warmup_start.elapsed();
        let batch = ((Duration::from_millis(10).as_nanos().max(1) / one.as_nanos().max(1))
            as usize)
            .clamp(1, 100_000);

        let deadline = Instant::now() + self.time_budget;
        let mut measured = 0usize;
        while Instant::now() < deadline || measured < 5 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(Sample {
                nanos_per_iter: elapsed.as_nanos() as f64 / batch as f64,
            });
            measured += 1;
            if measured >= 200 {
                break;
            }
        }
    }
}

fn format_nanos(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// Whether `full_id` matches the benchmark name filters passed on the command line
/// (`cargo bench -p bench -- <filter>...`), mirroring criterion's substring filter.
/// No non-flag arguments means "run everything".
fn matches_filter(full_id: &str) -> bool {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    filters.is_empty() || filters.iter().any(|f| full_id.contains(f.as_str()))
}

fn run_one(full_id: &str, time_budget: Duration, f: impl FnOnce(&mut Bencher<'_>)) {
    if !matches_filter(full_id) {
        return;
    }
    let mut samples = Vec::new();
    f(&mut Bencher {
        samples: &mut samples,
        time_budget,
    });
    if samples.is_empty() {
        println!("{full_id:<40} (no samples)");
        return;
    }
    let mean = samples.iter().map(|s| s.nanos_per_iter).sum::<f64>() / samples.len() as f64;
    let min = samples
        .iter()
        .map(|s| s.nanos_per_iter)
        .fold(f64::INFINITY, f64::min);
    let max = samples
        .iter()
        .map(|s| s.nanos_per_iter)
        .fold(0.0f64, f64::max);
    println!(
        "{full_id:<40} time: [{} {} {}]",
        format_nanos(min),
        format_nanos(mean),
        format_nanos(max)
    );
}

/// A named collection of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sampling is time-budget driven.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.time_budget = time;
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id);
        run_one(&full_id, self.criterion.time_budget, |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labelled by `id`.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher<'_>),
    ) -> &mut Self {
        let full_id = format!("{}/{}", self.name, id);
        run_one(&full_id, self.criterion.time_budget, f);
        self
    }

    /// Ends the group (printing is immediate in the shim, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    time_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep the whole suite fast by default; CRITERION_TIME_BUDGET_MS overrides.
        let ms = std::env::var("CRITERION_TIME_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Self {
            time_budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher<'_>),
    ) -> &mut Self {
        run_one(&name.to_string(), self.time_budget, f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($function:path),+ $(,)?) => {
        pub fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_measures() {
        std::env::set_var("CRITERION_TIME_BUDGET_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_run_with_inputs() {
        std::env::set_var("CRITERION_TIME_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
