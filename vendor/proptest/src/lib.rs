//! Vendored, API-compatible subset of the `proptest` crate.
//!
//! The workspace builds offline, so the property-testing surface the test suite uses is
//! reimplemented here: the [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`, the
//! [`strategy::Strategy`] trait with range and `prop_map` strategies, and
//! [`collection::vec`]. Unlike upstream there is no shrinking and no persisted failure
//! regression files: each test runs a fixed number of cases with inputs drawn from a
//! generator seeded deterministically from the test's name and the case index, so
//! failures reproduce exactly on re-run. A failing case reports its name, case index
//! and seed.

pub use rand;

pub mod test_runner {
    //! Run configuration.

    /// Per-test configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of input cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the single-core CI budget sane while
            // still giving meaningful coverage. PROPTEST_CASES overrides either way.
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Self { cases }
        }
    }

    /// Deterministic per-test, per-case seed: FNV-1a of the test name mixed with the
    /// case index.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        hash ^ ((case as u64) << 32 | case as u64)
    }
}

pub mod strategy {
    //! Input-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Value`, mirroring `proptest::strategy::Strategy`
    /// minus shrinking.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `fun`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, fun: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, fun }
        }
    }

    /// The strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        fun: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.fun)(self.source.sample(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

    // Tuples of strategies are strategies over tuples of their values, mirroring
    // upstream proptest's tuple composition (`(a, b).prop_map(...)`). Components
    // sample left to right from the one RNG stream, so a tuple draw is
    // deterministic per seed like every other strategy here.
    macro_rules! impl_tuple_strategy {
        ($($name:ident $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A 0, B 1);
    impl_tuple_strategy!(A 0, B 1, C 2);
    impl_tuple_strategy!(A 0, B 1, C 2, D 3);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Vector lengths accepted by [`vec()`]: a fixed `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn sample_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            if self.is_empty() {
                self.start
            } else {
                rng.gen_range(self.clone())
            }
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose elements come from `element` and whose length comes from
    /// `len`, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.len.sample_len(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: both sides are `{:?}`",
            left
        );
    }};
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Supports the forms the repository uses: an optional leading
/// `#![proptest_config(...)]`, then any number of `fn name(arg in strategy, ...) { .. }`
/// items carrying their own attributes (including `#[test]`, which — as with upstream —
/// the author writes explicitly).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            for case in 0..config.cases {
                let seed = $crate::test_runner::case_seed(stringify!($name), case);
                let mut proptest_rng =
                    <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(seed);
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut proptest_rng);
                )+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(cause) = outcome {
                    eprintln!(
                        "proptest case failed: {} (case {}/{}, seed {:#x})",
                        stringify!($name),
                        case,
                        config.cases,
                        seed
                    );
                    ::std::panic::resume_unwind(cause);
                }
            }
        }
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr);) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(n in 3usize..9, p in 0.0f64..0.5) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((0.0..0.5).contains(&p));
        }

        #[test]
        fn trailing_comma_accepted(
            x in 0u64..10,
            y in 0u64..10,
        ) {
            prop_assert!(x < 10 && y < 10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_applied(x in 0usize..100) {
            prop_assert!(x < 100);
        }
    }

    proptest! {
        #[test]
        fn collection_vec_with_range_len(xs in crate::collection::vec(0usize..96, 0..30)) {
            prop_assert!(xs.len() < 30);
            prop_assert!(xs.iter().all(|&x| x < 96));
        }

        #[test]
        fn collection_vec_with_fixed_len(xs in crate::collection::vec(0u8..3, 7usize)) {
            prop_assert_eq!(xs.len(), 7);
        }
    }

    #[test]
    fn prop_map_transforms_samples() {
        let strategy = (0usize..10).prop_map(|x| x * 2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = strategy.sample(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let strategy = crate::collection::vec(0usize..50, 0..10);
        let a = strategy.sample(&mut StdRng::seed_from_u64(9));
        let b = strategy.sample(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
