//! Vendored, API-compatible subset of the `rand` crate (version 0.8 surface).
//!
//! This workspace builds in an offline container with no crates.io access, so the
//! handful of `rand` APIs the repository uses are reimplemented here: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits and [`rngs::StdRng`]. `StdRng` is a
//! xoshiro256++ generator seeded through SplitMix64 — statistically solid for the
//! Monte Carlo workloads in this repository, though its stream intentionally makes
//! no compatibility promise with upstream `rand`'s ChaCha-based `StdRng`. All
//! fixed-seed expectations in the test suite are tolerance- or
//! determinism-based, never tied to upstream's exact stream.

/// The object-safe core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an `Rng` (the shim's stand-in for
/// `Standard: Distribution<T>`).
pub trait StandardSample {
    /// Draws one uniformly distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, matching upstream's convention.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by 128-bit widening multiply (Lemire's method
/// without the rejection step; the residual bias is below 2^-64 per draw).
fn uniform_below_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below_u64(rng, span) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start + uniform_below_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (the only constructor this repo uses).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64, used to expand a 64-bit seed into the xoshiro state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not stream-compatible with upstream `rand`'s `StdRng`; deterministic for a fixed
    /// seed, which is the property the test suite and the parallel Monte Carlo engine
    /// rely on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro forbids the all-zero state; splitmix64 cannot produce four
            // consecutive zeros, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn fixed_seed_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_float_is_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        const N: usize = 100_000;
        for _ in 0..N {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn gen_range_covers_small_domains_uniformly() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        const N: usize = 40_000;
        for _ in 0..N {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / N as f64;
            assert!((frac - 0.25).abs() < 0.02, "fraction {frac}");
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw(rng: &mut dyn RngCore) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
