//! Flexible quorums (Flexible Paxos style).
//!
//! Howard et al. observed that the replication quorum `Q2` and the leader-election quorum
//! `Q1` need not both be majorities — they only need to intersect each other. The paper
//! leans on the same observation when it asks whether quorum sizes can be chosen
//! "dynamically such that they overlap with high probability" (§4). [`FlexibleQuorum`]
//! models the deterministic version: two thresholds over the same universe.

use rand::Rng;

use crate::set::NodeSet;
use crate::system::QuorumSystem;
use crate::threshold::ThresholdQuorum;

/// A two-tier threshold quorum system with separate persistence (`Q2`) and view-change
/// (`Q1`) thresholds over the same universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlexibleQuorum {
    universe: usize,
    persistence: ThresholdQuorum,
    view_change: ThresholdQuorum,
}

impl FlexibleQuorum {
    /// Creates a flexible quorum system with the given persistence-quorum size (`Q2`,
    /// used on the replication fast path) and view-change-quorum size (`Q1`).
    pub fn new(universe: usize, persistence_size: usize, view_change_size: usize) -> Self {
        Self {
            universe,
            persistence: ThresholdQuorum::new(universe, persistence_size),
            view_change: ThresholdQuorum::new(universe, view_change_size),
        }
    }

    /// The persistence (replication) quorum subsystem.
    pub fn persistence(&self) -> &ThresholdQuorum {
        &self.persistence
    }

    /// The view-change (leader election) quorum subsystem.
    pub fn view_change(&self) -> &ThresholdQuorum {
        &self.view_change
    }

    /// Whether every persistence quorum intersects every view-change quorum — the
    /// cross-intersection safety requirement of Flexible Paxos (`|Q1| + |Q2| > N`).
    pub fn cross_intersects(&self) -> bool {
        self.persistence.threshold() + self.view_change.threshold() > self.universe
    }

    /// Whether cross-intersection still holds in at least one node outside `faulty`.
    pub fn cross_intersection_survives_faults(&self, faulty: &NodeSet) -> bool {
        assert_eq!(faulty.universe(), self.universe, "universe mismatch");
        let guaranteed = (self.persistence.threshold() + self.view_change.threshold())
            .saturating_sub(self.universe);
        guaranteed > faulty.len()
    }

    /// Probability that both quorums can be formed when each node is live independently
    /// with probability `p_live` (both thresholds must be met by the same live set, so
    /// the binding constraint is the larger threshold).
    pub fn formation_probability_iid(&self, p_live: f64) -> f64 {
        let k = self
            .persistence
            .threshold()
            .max(self.view_change.threshold());
        crate::metrics::binomial_tail_at_least(self.universe, k, p_live)
    }
}

impl QuorumSystem for FlexibleQuorum {
    fn universe_size(&self) -> usize {
        self.universe
    }

    /// Membership of the *persistence* quorum system (the common case on the data path).
    fn is_quorum(&self, set: &NodeSet) -> bool {
        self.persistence.is_quorum(set)
    }

    fn min_quorum_size(&self) -> usize {
        self.persistence.min_quorum_size()
    }

    fn sample_quorum<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeSet> {
        self.persistence.sample_quorum(rng)
    }

    fn always_intersects(&self) -> bool {
        self.cross_intersects()
    }

    fn intersection_survives_faults(&self, faulty: &NodeSet) -> bool {
        self.cross_intersection_survives_faults(faulty)
    }

    fn describe(&self) -> String {
        format!(
            "flexible quorum over {} nodes (Q_per {}, Q_vc {})",
            self.universe,
            self.persistence.threshold(),
            self.view_change.threshold()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn raft_default_is_flexible_with_equal_quorums() {
        let f = FlexibleQuorum::new(5, 3, 3);
        assert!(f.cross_intersects());
        assert_eq!(f.min_quorum_size(), 3);
    }

    #[test]
    fn small_persistence_quorum_needs_large_view_change_quorum() {
        // |Q2| = 2, |Q1| = 4 over 5 nodes: still safe.
        let f = FlexibleQuorum::new(5, 2, 4);
        assert!(f.cross_intersects());
        // |Q2| = 2, |Q1| = 3 over 5 nodes: 2 + 3 = 5, not > 5, unsafe.
        let broken = FlexibleQuorum::new(5, 2, 3);
        assert!(!broken.cross_intersects());
    }

    #[test]
    fn fault_coverage_of_cross_intersection() {
        let f = FlexibleQuorum::new(7, 4, 4);
        assert!(f.cross_intersection_survives_faults(&NodeSet::empty(7)));
        assert!(!f.cross_intersection_survives_faults(&NodeSet::from_indices(7, &[0])));
    }

    #[test]
    fn formation_probability_uses_binding_threshold() {
        let f = FlexibleQuorum::new(5, 2, 4);
        let expected = crate::metrics::binomial_tail_at_least(5, 4, 0.9);
        assert!((f.formation_probability_iid(0.9) - expected).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn cross_intersection_iff_sizes_exceed_universe(
            n in 2usize..40, q2 in 1usize..40, q1 in 1usize..40
        ) {
            let q2 = q2.min(n);
            let q1 = q1.min(n);
            let f = FlexibleQuorum::new(n, q2, q1);
            prop_assert_eq!(f.cross_intersects(), q1 + q2 > n);
        }
    }
}
