//! Probabilistic quorums.
//!
//! Malkhi, Reiter and Wright's probabilistic quorum systems (cited in §5) replace the
//! worst-case intersection guarantee with a probabilistic one: quorums are random subsets
//! of size O(√N) that intersect *with high probability*. §4 of the paper argues that
//! "sampling from much smaller subsets of nodes can guarantee intersection with high
//! enough probability"; this module provides the machinery to quantify exactly how high.

use rand::Rng;

use crate::metrics::ln_binomial;
use crate::set::NodeSet;
use crate::system::{sample_subset, QuorumSystem};

/// A probabilistic quorum system: every uniformly random subset of `quorum_size` nodes is
/// treated as a quorum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbabilisticQuorum {
    universe: usize,
    quorum_size: usize,
}

impl ProbabilisticQuorum {
    /// Creates a probabilistic quorum system with the given access-set size.
    pub fn new(universe: usize, quorum_size: usize) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        assert!(
            (1..=universe).contains(&quorum_size),
            "quorum size must be in 1..={universe}"
        );
        Self {
            universe,
            quorum_size,
        }
    }

    /// Creates the classic `l·√N` construction.
    pub fn sqrt_construction(universe: usize, multiplier: f64) -> Self {
        assert!(multiplier > 0.0);
        let size = ((universe as f64).sqrt() * multiplier).ceil() as usize;
        Self::new(universe, size.clamp(1, universe))
    }

    /// The access-set (quorum) size.
    pub fn quorum_size(&self) -> usize {
        self.quorum_size
    }

    /// Exact probability that two independently drawn quorums of sizes `a` and `b`
    /// intersect, over a universe of `n` nodes: `1 - C(n-a, b) / C(n, b)`.
    pub fn intersection_probability_sizes(n: usize, a: usize, b: usize) -> f64 {
        assert!(a <= n && b <= n);
        if a + b > n {
            return 1.0;
        }
        1.0 - (ln_binomial(n - a, b) - ln_binomial(n, b)).exp()
    }

    /// Probability that two independently drawn quorums of this system intersect.
    pub fn intersection_probability(&self) -> f64 {
        Self::intersection_probability_sizes(self.universe, self.quorum_size, self.quorum_size)
    }

    /// Probability that a random quorum consists *entirely* of members of a faulty set of
    /// size `faulty` (hypergeometric tail): `C(faulty, q) / C(n, q)`.
    pub fn probability_all_faulty(&self, faulty: usize) -> f64 {
        assert!(faulty <= self.universe);
        if faulty < self.quorum_size {
            return 0.0;
        }
        (ln_binomial(faulty, self.quorum_size) - ln_binomial(self.universe, self.quorum_size)).exp()
    }

    /// Probability that a random quorum contains at least one node outside a faulty set
    /// of size `faulty` — the quantity behind the paper's "ten nines that a random quorum
    /// of five nodes includes at least one correct node" observation (§3.2).
    pub fn probability_hits_correct(&self, faulty: usize) -> f64 {
        1.0 - self.probability_all_faulty(faulty)
    }

    /// The smallest quorum size whose pairwise intersection probability reaches
    /// `target`, or `None` if even quorums of the full universe cannot (target > 1).
    pub fn min_size_for_intersection(universe: usize, target: f64) -> Option<usize> {
        assert!(universe > 0);
        if !(0.0..=1.0).contains(&target) {
            return None;
        }
        (1..=universe).find(|&q| Self::intersection_probability_sizes(universe, q, q) >= target)
    }
}

impl QuorumSystem for ProbabilisticQuorum {
    fn universe_size(&self) -> usize {
        self.universe
    }

    fn is_quorum(&self, set: &NodeSet) -> bool {
        assert_eq!(set.universe(), self.universe, "universe mismatch");
        set.len() >= self.quorum_size
    }

    fn min_quorum_size(&self) -> usize {
        self.quorum_size
    }

    fn sample_quorum<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeSet> {
        Some(sample_subset(self.universe, self.quorum_size, rng))
    }

    fn always_intersects(&self) -> bool {
        2 * self.quorum_size > self.universe
    }

    fn intersection_survives_faults(&self, faulty: &NodeSet) -> bool {
        let guaranteed = (2 * self.quorum_size).saturating_sub(self.universe);
        guaranteed > faulty.len()
    }

    fn describe(&self) -> String {
        format!(
            "probabilistic quorum over {} nodes (access sets of {}, pairwise intersection {:.6})",
            self.universe,
            self.quorum_size,
            self.intersection_probability()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn intersection_probability_is_one_when_sizes_force_overlap() {
        assert_eq!(
            ProbabilisticQuorum::intersection_probability_sizes(5, 3, 3),
            1.0
        );
    }

    #[test]
    fn intersection_probability_matches_monte_carlo() {
        let q = ProbabilisticQuorum::new(30, 8);
        let analytic = q.intersection_probability();
        let mut rng = StdRng::seed_from_u64(7);
        let mut hits = 0;
        let trials = 20_000;
        for _ in 0..trials {
            let a = q.sample_quorum(&mut rng).unwrap();
            let b = q.sample_quorum(&mut rng).unwrap();
            if a.intersects(&b) {
                hits += 1;
            }
        }
        let empirical = hits as f64 / trials as f64;
        assert!(
            (analytic - empirical).abs() < 0.02,
            "{analytic} vs {empirical}"
        );
    }

    #[test]
    fn sqrt_construction_scales_with_root_n() {
        let q = ProbabilisticQuorum::sqrt_construction(100, 2.0);
        assert_eq!(q.quorum_size(), 20);
        assert!(q.intersection_probability() > 0.98);
    }

    #[test]
    fn paper_claim_five_node_quorum_hits_correct_node_with_ten_nines() {
        // With iid p_u = 1% faults, a sampled 5-node quorum is all-faulty with
        // probability p^5 = 1e-10 — the paper's "ten nines" observation.
        let p_all_faulty_iid = 0.01f64.powi(5);
        assert!(1.0 - p_all_faulty_iid >= 1.0 - 1e-10);
        // Conditioned on as many as 10 faulty nodes (ten times the expectation), the
        // hypergeometric bound is still better than five nines.
        let q = ProbabilisticQuorum::new(100, 5);
        let p = q.probability_hits_correct(10);
        assert!(p > 1.0 - 1e-5, "got {p}");
        // With exactly 1 faulty node it is impossible to miss every correct node.
        assert_eq!(q.probability_hits_correct(1), 1.0);
    }

    #[test]
    fn probability_all_faulty_edge_cases() {
        let q = ProbabilisticQuorum::new(10, 3);
        assert_eq!(q.probability_all_faulty(2), 0.0);
        assert!((q.probability_all_faulty(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_size_search_finds_small_quorums() {
        let size = ProbabilisticQuorum::min_size_for_intersection(100, 0.999).unwrap();
        assert!(
            size < 51,
            "probabilistic quorums should beat majorities, got {size}"
        );
        let q = ProbabilisticQuorum::new(100, size);
        assert!(q.intersection_probability() >= 0.999);
        if size > 1 {
            let smaller = ProbabilisticQuorum::new(100, size - 1);
            assert!(smaller.intersection_probability() < 0.999);
        }
    }

    proptest! {
        #[test]
        fn intersection_probability_is_monotone_in_size(n in 4usize..60) {
            let mut last = 0.0f64;
            for q in 1..=n {
                let p = ProbabilisticQuorum::intersection_probability_sizes(n, q, q);
                prop_assert!(p >= last - 1e-12);
                last = p;
            }
            prop_assert!((last - 1.0).abs() < 1e-12);
        }
    }
}
