//! Grid quorum systems (Naor–Wool style).
//!
//! Nodes are arranged in an `rows × cols` grid; a quorum is one full row plus one node
//! from every row ("row-cover"). Grid systems trade smaller quorums (O(√N)) for lower
//! availability than majorities; they are the classic example of a deterministic quorum
//! system whose load beats majority voting, and a useful comparison point for the
//! probabilistic quorums of §4.

use rand::Rng;

use crate::set::NodeSet;
use crate::system::QuorumSystem;

/// A rectangular grid quorum system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridQuorum {
    rows: usize,
    cols: usize,
}

impl GridQuorum {
    /// Creates a grid with the given dimensions; the universe is `rows * cols` nodes,
    /// node `i` sitting at row `i / cols`, column `i % cols`.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid must be non-empty");
        Self { rows, cols }
    }

    /// Creates the most-square grid covering at least `n` nodes, truncated to exactly
    /// `n` by treating missing cells as permanently crashed (only full grids are exposed
    /// for simplicity; panics if `n` is not a perfect rectangle of the chosen shape).
    pub fn square(n: usize) -> Self {
        let side = (n as f64).sqrt().round() as usize;
        assert!(
            side * side == n,
            "square grid requires a perfect square, got {n}"
        );
        Self::new(side, side)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn row_members(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.cols).map(move |c| row * self.cols + c)
    }

    /// Whether `set` contains at least one full row.
    fn covers_full_row(&self, set: &NodeSet) -> bool {
        (0..self.rows).any(|r| self.row_members(r).all(|i| set.contains(i)))
    }

    /// Whether `set` contains at least one node from every row.
    fn covers_every_row(&self, set: &NodeSet) -> bool {
        (0..self.rows).all(|r| self.row_members(r).any(|i| set.contains(i)))
    }
}

impl QuorumSystem for GridQuorum {
    fn universe_size(&self) -> usize {
        self.rows * self.cols
    }

    fn is_quorum(&self, set: &NodeSet) -> bool {
        assert_eq!(set.universe(), self.universe_size(), "universe mismatch");
        self.covers_full_row(set) && self.covers_every_row(set)
    }

    fn min_quorum_size(&self) -> usize {
        // One full row (cols nodes) plus one node from each of the other rows.
        self.cols + self.rows - 1
    }

    fn sample_quorum<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeSet> {
        let mut set = NodeSet::empty(self.universe_size());
        let full_row = rng.gen_range(0..self.rows);
        for i in self.row_members(full_row) {
            set.insert(i);
        }
        for r in 0..self.rows {
            if r == full_row {
                continue;
            }
            let c = rng.gen_range(0..self.cols);
            set.insert(r * self.cols + c);
        }
        Some(set)
    }

    fn always_intersects(&self) -> bool {
        // Quorum A's full row meets quorum B's row-cover in that row.
        true
    }

    fn intersection_survives_faults(&self, faulty: &NodeSet) -> bool {
        assert_eq!(faulty.universe(), self.universe_size(), "universe mismatch");
        // Guaranteed only when no node is faulty: two quorums may overlap in exactly one
        // cell, which a single fault can cover.
        faulty.is_empty()
    }

    fn describe(&self) -> String {
        format!("{}x{} grid quorum", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn min_quorum_size_is_sqrt_scale() {
        let g = GridQuorum::square(100);
        assert_eq!(g.min_quorum_size(), 19);
        assert_eq!(g.universe_size(), 100);
    }

    #[test]
    fn row_plus_cover_is_quorum() {
        let g = GridQuorum::new(3, 3);
        // Full row 0 plus one node in rows 1 and 2.
        let q = NodeSet::from_indices(9, &[0, 1, 2, 3, 6]);
        assert!(g.is_quorum(&q));
        // Missing the row-cover for row 2.
        let not_q = NodeSet::from_indices(9, &[0, 1, 2, 3]);
        assert!(!not_q.is_empty());
        assert!(!g.is_quorum(&not_q));
        // A column alone is not a quorum (covers every row but no full row).
        let col = NodeSet::from_indices(9, &[0, 3, 6]);
        assert!(!g.is_quorum(&col));
    }

    #[test]
    fn sampled_quorums_are_quorums_of_min_size() {
        let g = GridQuorum::new(4, 5);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let q = g.sample_quorum(&mut rng).unwrap();
            assert!(g.is_quorum(&q));
            assert_eq!(q.len(), g.min_quorum_size());
        }
    }

    #[test]
    fn any_two_sampled_quorums_intersect() {
        let g = GridQuorum::new(5, 5);
        let mut rng = StdRng::seed_from_u64(3);
        let quorums: Vec<NodeSet> = (0..20)
            .map(|_| g.sample_quorum(&mut rng).unwrap())
            .collect();
        for a in &quorums {
            for b in &quorums {
                assert!(a.intersects(b), "{a} and {b} must intersect");
            }
        }
    }

    #[test]
    #[should_panic(expected = "perfect square")]
    fn square_rejects_non_square_sizes() {
        GridQuorum::square(12);
    }
}
