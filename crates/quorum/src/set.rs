//! Compact node sets.
//!
//! Quorums, failure configurations and committees are all subsets of a fixed universe of
//! `n` nodes. [`NodeSet`] stores such a subset as a bit set backed by `u64` words, so
//! universes well beyond the paper's 100-node examples stay cheap to copy and compare.

/// A subset of a fixed universe of `n` nodes, stored as a bit set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeSet {
    universe: usize,
    words: Vec<u64>,
}

impl NodeSet {
    /// Creates an empty set over a universe of `universe` nodes.
    pub fn empty(universe: usize) -> Self {
        Self {
            universe,
            words: vec![0; universe.div_ceil(64)],
        }
    }

    /// Creates the full set over a universe of `universe` nodes.
    pub fn full(universe: usize) -> Self {
        let mut set = Self::empty(universe);
        for i in 0..universe {
            set.insert(i);
        }
        set
    }

    /// Creates a set from explicit member indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is outside the universe.
    pub fn from_indices(universe: usize, indices: &[usize]) -> Self {
        let mut set = Self::empty(universe);
        for &i in indices {
            set.insert(i);
        }
        set
    }

    /// Creates a set from a boolean membership vector.
    pub fn from_bools(members: &[bool]) -> Self {
        let mut set = Self::empty(members.len());
        for (i, &m) in members.iter().enumerate() {
            if m {
                set.insert(i);
            }
        }
        set
    }

    /// The universe size this set ranges over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Adds a node to the set.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the universe.
    pub fn insert(&mut self, index: usize) {
        assert!(
            index < self.universe,
            "index {index} outside universe {}",
            self.universe
        );
        self.words[index / 64] |= 1u64 << (index % 64);
    }

    /// Removes a node from the set.
    pub fn remove(&mut self, index: usize) {
        assert!(
            index < self.universe,
            "index {index} outside universe {}",
            self.universe
        );
        self.words[index / 64] &= !(1u64 << (index % 64));
    }

    /// Whether the set contains `index`.
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.universe {
            return false;
        }
        self.words[index / 64] & (1u64 << (index % 64)) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterator over member indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.universe).filter(|&i| self.contains(i))
    }

    /// Member indices collected into a vector.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Set union (universes must match).
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        NodeSet {
            universe: self.universe,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// Set intersection (universes must match).
    pub fn intersection(&self, other: &NodeSet) -> NodeSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        NodeSet {
            universe: self.universe,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Set difference `self \ other` (universes must match).
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        NodeSet {
            universe: self.universe,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
        }
    }

    /// Complement within the universe.
    pub fn complement(&self) -> NodeSet {
        let mut out = NodeSet::full(self.universe);
        for i in self.iter() {
            out.remove(i);
        }
        out
    }

    /// Whether the two sets share at least one member.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset_of(&self, other: &NodeSet) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }
}

impl std::fmt::Display for NodeSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = NodeSet::empty(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_and_complement() {
        let full = NodeSet::full(70);
        assert_eq!(full.len(), 70);
        let empty = full.complement();
        assert!(empty.is_empty());
        let some = NodeSet::from_indices(70, &[1, 3, 69]);
        assert_eq!(some.complement().len(), 67);
    }

    #[test]
    fn set_algebra() {
        let a = NodeSet::from_indices(10, &[0, 1, 2, 3]);
        let b = NodeSet::from_indices(10, &[2, 3, 4, 5]);
        assert_eq!(a.union(&b).to_vec(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(a.intersection(&b).to_vec(), vec![2, 3]);
        assert_eq!(a.difference(&b).to_vec(), vec![0, 1]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&NodeSet::from_indices(10, &[7, 8])));
        assert!(NodeSet::from_indices(10, &[2]).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn from_bools_round_trips() {
        let bools = [true, false, true, true, false];
        let s = NodeSet::from_bools(&bools);
        assert_eq!(s.to_vec(), vec![0, 2, 3]);
        assert_eq!(s.universe(), 5);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn insert_out_of_range_panics() {
        NodeSet::empty(5).insert(5);
    }

    #[test]
    fn display_lists_members() {
        let s = NodeSet::from_indices(6, &[1, 4]);
        assert_eq!(format!("{s}"), "{1,4}");
    }

    proptest! {
        #[test]
        fn union_contains_both_operands(
            xs in proptest::collection::vec(0usize..96, 0..30),
            ys in proptest::collection::vec(0usize..96, 0..30)
        ) {
            let a = NodeSet::from_indices(96, &xs);
            let b = NodeSet::from_indices(96, &ys);
            let u = a.union(&b);
            prop_assert!(a.is_subset_of(&u));
            prop_assert!(b.is_subset_of(&u));
            prop_assert!(u.intersection(&a) == a);
        }

        #[test]
        fn intersection_is_subset_and_symmetric(
            xs in proptest::collection::vec(0usize..96, 0..30),
            ys in proptest::collection::vec(0usize..96, 0..30)
        ) {
            let a = NodeSet::from_indices(96, &xs);
            let b = NodeSet::from_indices(96, &ys);
            let i1 = a.intersection(&b);
            let i2 = b.intersection(&a);
            prop_assert_eq!(&i1, &i2);
            prop_assert!(i1.is_subset_of(&a));
            prop_assert!(i1.is_subset_of(&b));
            prop_assert_eq!(i1.is_empty(), !a.intersects(&b));
        }

        #[test]
        fn len_matches_member_count(xs in proptest::collection::vec(0usize..200, 0..60)) {
            let s = NodeSet::from_indices(200, &xs);
            let mut unique = xs.clone();
            unique.sort_unstable();
            unique.dedup();
            prop_assert_eq!(s.len(), unique.len());
            prop_assert_eq!(s.to_vec(), unique);
        }
    }
}
