//! Weighted (stake-based) quorum systems.
//!
//! §2(1) of the paper notes that "stake in blockchain systems captures a similar idea:
//! nodes with higher stake have more to lose... and thus are considered more trustworthy".
//! A [`WeightedQuorum`] generalizes threshold quorums to arbitrary non-negative weights:
//! a set is a quorum when its total weight reaches a threshold fraction of the total.

use rand::Rng;

use crate::set::NodeSet;
use crate::system::QuorumSystem;

/// A weight-threshold quorum system: a set is a quorum iff its weight sum is strictly
/// greater than `threshold_fraction` of the total weight.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedQuorum {
    weights: Vec<f64>,
    threshold_fraction: f64,
}

impl WeightedQuorum {
    /// Creates a weighted quorum system.
    ///
    /// # Panics
    ///
    /// Panics if weights are empty, any weight is negative/non-finite, the total weight
    /// is zero, or the threshold fraction is outside `[0.5, 1.0)` (fractions below one
    /// half cannot guarantee intersection and are rejected to prevent misuse).
    pub fn new(weights: Vec<f64>, threshold_fraction: f64) -> Self {
        assert!(!weights.is_empty(), "need at least one node");
        assert!(
            weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be finite and non-negative"
        );
        assert!(
            weights.iter().sum::<f64>() > 0.0,
            "total weight must be positive"
        );
        assert!(
            (0.5..1.0).contains(&threshold_fraction),
            "threshold fraction must be in [0.5, 1.0)"
        );
        Self {
            weights,
            threshold_fraction,
        }
    }

    /// Creates a simple-majority-of-stake system (threshold fraction 1/2).
    pub fn majority_of_stake(weights: Vec<f64>) -> Self {
        Self::new(weights, 0.5)
    }

    /// Total weight across all nodes.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Weight of a single node.
    pub fn weight(&self, index: usize) -> f64 {
        self.weights[index]
    }

    /// Total weight of the members of `set`.
    pub fn weight_of(&self, set: &NodeSet) -> f64 {
        set.iter().map(|i| self.weights[i]).sum()
    }

    /// The weight a set must strictly exceed to be a quorum.
    pub fn required_weight(&self) -> f64 {
        self.threshold_fraction * self.total_weight()
    }
}

impl QuorumSystem for WeightedQuorum {
    fn universe_size(&self) -> usize {
        self.weights.len()
    }

    fn is_quorum(&self, set: &NodeSet) -> bool {
        assert_eq!(set.universe(), self.weights.len(), "universe mismatch");
        self.weight_of(set) > self.required_weight()
    }

    fn min_quorum_size(&self) -> usize {
        // Greedily take the heaviest nodes until the threshold is exceeded.
        let mut sorted: Vec<f64> = self.weights.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let mut acc = 0.0;
        for (i, w) in sorted.iter().enumerate() {
            acc += w;
            if acc > self.required_weight() {
                return i + 1;
            }
        }
        self.weights.len()
    }

    fn sample_quorum<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeSet> {
        // Add nodes in a random order until the weight threshold is exceeded.
        let n = self.weights.len();
        let mut order: Vec<usize> = (0..n).collect();
        for i in 0..n {
            let j = rng.gen_range(i..n);
            order.swap(i, j);
        }
        let mut set = NodeSet::empty(n);
        let mut acc = 0.0;
        for &i in &order {
            set.insert(i);
            acc += self.weights[i];
            if acc > self.required_weight() {
                return Some(set);
            }
        }
        None
    }

    fn always_intersects(&self) -> bool {
        // Two sets each holding strictly more than half (or more) of the weight must share
        // a node as long as the threshold fraction is at least one half.
        self.threshold_fraction >= 0.5
    }

    fn intersection_survives_faults(&self, faulty: &NodeSet) -> bool {
        assert_eq!(faulty.universe(), self.weights.len(), "universe mismatch");
        // Two quorums overlap in weight at least 2*required - total; that overlap can be
        // covered by faulty nodes only if the faulty weight reaches it.
        let guaranteed = 2.0 * self.required_weight() - self.total_weight();
        self.weight_of(faulty) < guaranteed
    }

    fn describe(&self) -> String {
        format!(
            "weighted quorum over {} nodes (>{:.1}% of stake)",
            self.weights.len(),
            self.threshold_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn equal_weights_reduce_to_majority() {
        let q = WeightedQuorum::majority_of_stake(vec![1.0; 5]);
        assert!(q.is_quorum(&NodeSet::from_indices(5, &[0, 1, 2])));
        assert!(!q.is_quorum(&NodeSet::from_indices(5, &[0, 1])));
        assert_eq!(q.min_quorum_size(), 3);
    }

    #[test]
    fn heavy_node_shrinks_min_quorum() {
        let q = WeightedQuorum::majority_of_stake(vec![10.0, 1.0, 1.0, 1.0, 1.0]);
        // The heavy node plus any other exceeds half of 14.
        assert_eq!(q.min_quorum_size(), 1);
        assert!(q.is_quorum(&NodeSet::from_indices(5, &[0])));
        assert!(!q.is_quorum(&NodeSet::from_indices(5, &[1, 2, 3, 4])));
    }

    #[test]
    fn intersection_survives_only_light_faults() {
        let q = WeightedQuorum::new(vec![1.0, 1.0, 1.0, 1.0], 0.75);
        // Quorums hold > 3 of 4 weight, so any two overlap in weight > 2.
        assert!(q.intersection_survives_faults(&NodeSet::from_indices(4, &[0])));
        assert!(!q.intersection_survives_faults(&NodeSet::from_indices(4, &[0, 1, 2])));
    }

    #[test]
    fn sampled_quorums_are_quorums() {
        let q = WeightedQuorum::majority_of_stake(vec![5.0, 3.0, 2.0, 2.0, 1.0]);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let s = q.sample_quorum(&mut rng).unwrap();
            assert!(q.is_quorum(&s));
        }
    }

    #[test]
    #[should_panic(expected = "threshold fraction")]
    fn rejects_sub_majority_threshold() {
        WeightedQuorum::new(vec![1.0, 1.0], 0.3);
    }

    proptest! {
        #[test]
        fn quorum_weight_exceeds_required(
            weights in proptest::collection::vec(0.1f64..10.0, 2..10),
            seed in 0u64..1000
        ) {
            let q = WeightedQuorum::majority_of_stake(weights);
            let mut rng = StdRng::seed_from_u64(seed);
            let s = q.sample_quorum(&mut rng).unwrap();
            prop_assert!(q.weight_of(&s) > q.required_weight());
        }
    }
}
