//! Quorum-system substrate for probabilistic consensus analysis.
//!
//! Consensus protocols progress by gathering *quorums* of replies (§3.1 of the paper):
//! non-equivocation, persistence, view-change and view-change-trigger quorums whose
//! intersection invariants drive both safety and liveness. This crate provides the quorum
//! abstractions the analysis layer and the executable protocols share:
//!
//! * [`set`] — compact node sets (bit sets) used to describe quorums and failure
//!   configurations.
//! * [`system`] — the [`system::QuorumSystem`] trait: membership test, minimum quorum
//!   size, formability from a set of live nodes, and pairwise-intersection checking.
//! * [`majority`], [`threshold`], [`flexible`], [`weighted`], [`grid`] — classic
//!   deterministic quorum systems (simple majority, k-of-n, Flexible-Paxos style
//!   two-tier thresholds, stake-weighted, and Naor–Wool grids).
//! * [`probabilistic`] — probabilistic quorums: O(√N)-sized random quorums that
//!   intersect with high probability rather than with certainty.
//! * [`committee`] — committee sampling in the style of Algorand / King–Saia: seeded
//!   random committees together with the probability that a sampled committee is
//!   "good enough".
//! * [`metrics`] — Naor–Wool style quality measures: load, capacity and availability of
//!   a quorum system under per-node failure probabilities.
//!
//! # Examples
//!
//! ```
//! use quorum::majority::MajorityQuorum;
//! use quorum::set::NodeSet;
//! use quorum::system::QuorumSystem;
//!
//! let q = MajorityQuorum::new(5);
//! assert_eq!(q.min_quorum_size(), 3);
//! assert!(q.is_quorum(&NodeSet::from_indices(5, &[0, 2, 4])));
//! assert!(q.always_intersects());
//! ```

// Documentation is part of this crate's contract: every public item is
// documented, and CI builds rustdoc with `-D warnings` (see the `docs` job).
#![warn(missing_docs)]
pub mod committee;
pub mod flexible;
pub mod grid;
pub mod majority;
pub mod metrics;
pub mod probabilistic;
pub mod set;
pub mod system;
pub mod threshold;
pub mod weighted;

pub use committee::{CommitteeSampler, CommitteeSpec};
pub use flexible::FlexibleQuorum;
pub use grid::GridQuorum;
pub use majority::MajorityQuorum;
pub use metrics::{availability_under_iid, quorum_load};
pub use probabilistic::ProbabilisticQuorum;
pub use set::NodeSet;
pub use system::QuorumSystem;
pub use threshold::ThresholdQuorum;
pub use weighted::WeightedQuorum;
