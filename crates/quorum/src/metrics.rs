//! Quorum-system quality measures.
//!
//! Naor and Wool introduced *load*, *capacity* and *availability* as the quality measures
//! of a quorum system (§5 of the paper cites this line of work, noting it assumes all
//! nodes fail with equal probability). This module provides those measures plus the
//! binomial helpers shared by the threshold-style systems.

use crate::set::NodeSet;
use crate::system::QuorumSystem;

/// log of the binomial coefficient `C(n, k)`, computed via `ln Γ` for numerical range.
pub fn ln_binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

fn ln_factorial(n: usize) -> f64 {
    (1..=n).map(|i| (i as f64).ln()).sum()
}

/// Probability mass `P[X = k]` for `X ~ Binomial(n, p)`.
pub fn binomial_pmf(n: usize, k: usize, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    (ln_binomial(n, k) + (k as f64) * p.ln() + ((n - k) as f64) * (1.0 - p).ln()).exp()
}

/// Tail probability `P[X >= k]` for `X ~ Binomial(n, p)`.
pub fn binomial_tail_at_least(n: usize, k: usize, p: f64) -> f64 {
    (k..=n).map(|i| binomial_pmf(n, i, p)).sum::<f64>().min(1.0)
}

/// Tail probability `P[X <= k]` for `X ~ Binomial(n, p)`.
pub fn binomial_cdf(n: usize, k: usize, p: f64) -> f64 {
    (0..=k.min(n))
        .map(|i| binomial_pmf(n, i, p))
        .sum::<f64>()
        .min(1.0)
}

/// The *load* of a threshold-style quorum system: the minimum, over strategies for
/// picking quorums, of the busiest node's access probability. For a balanced k-of-n
/// system this is simply `k / n`.
pub fn quorum_load<Q: QuorumSystem + ?Sized>(system: &Q) -> f64 {
    system.min_quorum_size() as f64 / system.universe_size() as f64
}

/// Availability of a quorum system when every node is independently *live* with
/// probability `p_live`: the probability that the live nodes contain a quorum, estimated
/// exactly by enumerating failure counts for threshold systems and by Monte Carlo
/// otherwise.
///
/// For the threshold systems used throughout the paper the exact binomial expression is
/// used; for arbitrary systems the caller should prefer the analysis crate's Monte Carlo
/// machinery. Here we enumerate all subsets only for tiny universes (n ≤ 16).
pub fn availability_under_iid<Q: QuorumSystem + ?Sized>(system: &Q, p_live: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p_live));
    let n = system.universe_size();
    // Fast path: detect threshold behaviour by probing cardinalities.
    if let Some(k) = threshold_of(system) {
        return binomial_tail_at_least(n, k, p_live);
    }
    assert!(
        n <= 16,
        "exact availability for non-threshold systems is only supported for n <= 16"
    );
    let mut total = 0.0;
    for mask in 0u32..(1u32 << n) {
        let members: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        let set = NodeSet::from_indices(n, &members);
        if system.can_form_quorum(&set) {
            let k = members.len();
            total += p_live.powi(k as i32) * (1.0 - p_live).powi((n - k) as i32);
        }
    }
    total
}

/// If the system behaves like a pure threshold system on prefix sets, returns that
/// threshold. Used as a fast path for availability computations.
fn threshold_of<Q: QuorumSystem + ?Sized>(system: &Q) -> Option<usize> {
    let n = system.universe_size();
    let k = system.min_quorum_size();
    if k == 0 || k > n {
        return None;
    }
    // A prefix of size k must be a quorum and one of size k-1 must not; additionally a
    // "spread" set of size k (every other node) must be a quorum for us to conclude the
    // system only counts cardinality. This is a heuristic fast path; systems that are
    // not genuinely threshold-shaped should not rely on it.
    let prefix_k = NodeSet::from_indices(n, &(0..k).collect::<Vec<_>>());
    let prefix_k1 = NodeSet::from_indices(n, &(0..k.saturating_sub(1)).collect::<Vec<_>>());
    let spread: Vec<usize> = (0..n).rev().take(k).collect();
    let spread_k = NodeSet::from_indices(n, &spread);
    if system.is_quorum(&prefix_k)
        && system.is_quorum(&spread_k)
        && (k == 0 || !system.is_quorum(&prefix_k1))
    {
        Some(k)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::ThresholdQuorum;
    use proptest::prelude::*;

    #[test]
    fn binomial_pmf_sums_to_one() {
        let total: f64 = (0..=10).map(|k| binomial_pmf(10, k, 0.3)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn binomial_edge_cases() {
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 6, 0.5), 0.0);
        assert!((binomial_tail_at_least(3, 0, 0.2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_and_tail_are_complementary() {
        for k in 0..=7 {
            let cdf = binomial_cdf(7, k, 0.13);
            let tail = binomial_tail_at_least(7, k + 1, 0.13);
            assert!((cdf + tail - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn load_of_majority_is_about_half() {
        let q = ThresholdQuorum::new(9, 5);
        assert!((quorum_load(&q) - 5.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn availability_matches_paper_raft_n3() {
        // 2-of-3 with p_live = 0.99 is the Raft N=3 liveness number from Table 2.
        let q = ThresholdQuorum::new(3, 2);
        let a = availability_under_iid(&q, 0.99);
        assert!((a - 0.999702).abs() < 1e-6, "got {a}");
    }

    proptest! {
        #[test]
        fn availability_is_monotone_in_liveness(n in 2usize..12, seed in 0usize..100) {
            let k = (seed % n).max(1);
            let q = ThresholdQuorum::new(n, k);
            let lo = availability_under_iid(&q, 0.7);
            let hi = availability_under_iid(&q, 0.9);
            prop_assert!(hi >= lo - 1e-12);
        }

        #[test]
        fn binomial_tail_is_monotone_in_k(n in 1usize..25, p in 0.0..1.0f64) {
            let mut last = 1.0f64 + 1e-12;
            for k in 0..=n {
                let t = binomial_tail_at_least(n, k, p);
                prop_assert!(t <= last + 1e-12);
                last = t;
            }
        }
    }
}
