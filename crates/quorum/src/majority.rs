//! Simple-majority quorums (the Raft / Multi-Paxos default).

use rand::Rng;

use crate::set::NodeSet;
use crate::system::QuorumSystem;
use crate::threshold::ThresholdQuorum;

/// The simple-majority quorum system: any subset of more than half the nodes.
///
/// This is the configuration Raft uses for both its persistence and view-change
/// (election) quorums, i.e. `|Q_per| = |Q_vc| = ⌊N/2⌋ + 1` in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MajorityQuorum {
    inner: ThresholdQuorum,
}

impl MajorityQuorum {
    /// Creates a majority quorum system over `universe` nodes.
    pub fn new(universe: usize) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        Self {
            inner: ThresholdQuorum::new(universe, universe / 2 + 1),
        }
    }

    /// The underlying threshold (`⌊N/2⌋ + 1`).
    pub fn threshold(&self) -> usize {
        self.inner.threshold()
    }

    /// The number of simultaneous crash faults this system tolerates while staying live.
    pub fn tolerated_faults(&self) -> usize {
        self.universe_size() - self.threshold()
    }
}

impl QuorumSystem for MajorityQuorum {
    fn universe_size(&self) -> usize {
        self.inner.universe_size()
    }

    fn is_quorum(&self, set: &NodeSet) -> bool {
        self.inner.is_quorum(set)
    }

    fn min_quorum_size(&self) -> usize {
        self.inner.min_quorum_size()
    }

    fn sample_quorum<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeSet> {
        self.inner.sample_quorum(rng)
    }

    fn always_intersects(&self) -> bool {
        true
    }

    fn intersection_survives_faults(&self, faulty: &NodeSet) -> bool {
        self.inner.intersection_survives_faults(faulty)
    }

    fn describe(&self) -> String {
        format!(
            "majority quorum over {} nodes (threshold {})",
            self.universe_size(),
            self.threshold()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn thresholds_match_floor_half_plus_one() {
        assert_eq!(MajorityQuorum::new(3).threshold(), 2);
        assert_eq!(MajorityQuorum::new(4).threshold(), 3);
        assert_eq!(MajorityQuorum::new(5).threshold(), 3);
        assert_eq!(MajorityQuorum::new(9).threshold(), 5);
    }

    #[test]
    fn tolerated_faults_is_minority() {
        assert_eq!(MajorityQuorum::new(3).tolerated_faults(), 1);
        assert_eq!(MajorityQuorum::new(5).tolerated_faults(), 2);
        assert_eq!(MajorityQuorum::new(4).tolerated_faults(), 1);
    }

    #[test]
    fn membership() {
        let q = MajorityQuorum::new(5);
        assert!(q.is_quorum(&NodeSet::from_indices(5, &[0, 1, 2])));
        assert!(!q.is_quorum(&NodeSet::from_indices(5, &[0, 1])));
    }

    proptest! {
        #[test]
        fn majorities_always_intersect(n in 1usize..200) {
            let q = MajorityQuorum::new(n);
            prop_assert!(q.always_intersects());
            prop_assert!(2 * q.threshold() > n);
        }
    }
}
