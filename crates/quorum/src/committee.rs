//! Committee sampling.
//!
//! Algorand and King–Saia (cited in §5) replace "everyone votes" with a sampled committee
//! that is, with high probability, *representative* of the whole cluster. §4 of the paper
//! proposes sampling committees "to select only the reliable nodes" when fleet
//! reliability exceeds application requirements. This module provides seeded committee
//! sampling (uniform or reliability-weighted) plus the hypergeometric math quantifying
//! how likely a sampled committee is to be safe/live.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::ln_binomial;
use crate::set::NodeSet;
use crate::system::sample_subset;

/// Static description of a committee-sampling scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitteeSpec {
    /// Size of the whole cluster.
    pub universe: usize,
    /// Number of members sampled into each committee.
    pub committee_size: usize,
    /// Number of correct members the committee needs to function (e.g. its own quorum).
    pub required_correct: usize,
}

impl CommitteeSpec {
    /// Creates a committee spec.
    ///
    /// # Panics
    ///
    /// Panics unless `required_correct <= committee_size <= universe`.
    pub fn new(universe: usize, committee_size: usize, required_correct: usize) -> Self {
        assert!(committee_size <= universe, "committee larger than cluster");
        assert!(committee_size >= 1, "committee must be non-empty");
        assert!(
            required_correct <= committee_size,
            "cannot require more correct members than the committee size"
        );
        Self {
            universe,
            committee_size,
            required_correct,
        }
    }

    /// Hypergeometric probability that a uniformly sampled committee contains exactly
    /// `k` faulty members when the cluster contains `faulty` faulty nodes.
    pub fn probability_faulty_members(&self, faulty: usize, k: usize) -> f64 {
        assert!(faulty <= self.universe);
        let correct = self.universe - faulty;
        if k > faulty || self.committee_size - k > correct {
            return 0.0;
        }
        (ln_binomial(faulty, k) + ln_binomial(correct, self.committee_size - k)
            - ln_binomial(self.universe, self.committee_size))
        .exp()
    }

    /// Probability that a uniformly sampled committee still contains at least
    /// `required_correct` correct members when `faulty` cluster nodes are faulty.
    pub fn probability_functional(&self, faulty: usize) -> f64 {
        let max_tolerable_faulty_members = self.committee_size - self.required_correct;
        (0..=max_tolerable_faulty_members)
            .map(|k| self.probability_faulty_members(faulty, k))
            .sum::<f64>()
            .min(1.0)
    }

    /// The smallest committee size such that, with `faulty` faulty cluster nodes and a
    /// committee-internal majority requirement, the committee is functional with at least
    /// probability `target`. Returns `None` if even the full cluster cannot reach it.
    pub fn min_committee_size_for(universe: usize, faulty: usize, target: f64) -> Option<usize> {
        (1..=universe).find(|&size| {
            let spec = CommitteeSpec::new(universe, size, size / 2 + 1);
            spec.probability_functional(faulty) >= target
        })
    }
}

/// Samples committees, uniformly or weighted toward reliable nodes, from a seed — the
/// deterministic stand-in for VRF-based sortition.
#[derive(Debug, Clone)]
pub struct CommitteeSampler {
    spec: CommitteeSpec,
    seed: u64,
}

impl CommitteeSampler {
    /// Creates a sampler for `spec` seeded with `seed` (e.g. a view number mixed with an
    /// epoch randomness beacon).
    pub fn new(spec: CommitteeSpec, seed: u64) -> Self {
        Self { spec, seed }
    }

    /// The spec this sampler draws from.
    pub fn spec(&self) -> &CommitteeSpec {
        &self.spec
    }

    fn rng_for_round(&self, round: u64) -> StdRng {
        // Mix the seed and round; SplitMix64-style finalizer for dispersion.
        let mut z = self.seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }

    /// Samples the committee for a round uniformly at random. Deterministic per
    /// `(seed, round)`, so every correct node derives the same committee.
    pub fn sample_uniform(&self, round: u64) -> NodeSet {
        let mut rng = self.rng_for_round(round);
        sample_subset(self.spec.universe, self.spec.committee_size, &mut rng)
    }

    /// Samples the committee for a round with per-node selection weights (higher weight →
    /// more likely to be selected), using weighted sampling without replacement.
    ///
    /// This is the probability-native refinement of §4: weights are typically the
    /// inverse of each node's fault probability, biasing committees toward reliable
    /// nodes.
    pub fn sample_weighted(&self, round: u64, weights: &[f64]) -> NodeSet {
        assert_eq!(
            weights.len(),
            self.spec.universe,
            "need one weight per cluster node"
        );
        assert!(
            weights.iter().all(|&w| w > 0.0 && w.is_finite()),
            "weights must be positive and finite"
        );
        let mut rng = self.rng_for_round(round);
        let mut remaining: Vec<usize> = (0..self.spec.universe).collect();
        let mut committee = NodeSet::empty(self.spec.universe);
        for _ in 0..self.spec.committee_size {
            let total: f64 = remaining.iter().map(|&i| weights[i]).sum();
            let mut draw = rng.gen::<f64>() * total;
            let mut chosen = remaining.len() - 1;
            for (pos, &i) in remaining.iter().enumerate() {
                draw -= weights[i];
                if draw <= 0.0 {
                    chosen = pos;
                    break;
                }
            }
            committee.insert(remaining.swap_remove(chosen));
        }
        committee
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hypergeometric_masses_sum_to_one() {
        let spec = CommitteeSpec::new(20, 7, 4);
        let total: f64 = (0..=7).map(|k| spec.probability_faulty_members(5, k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn functional_probability_decreases_with_more_faults() {
        let spec = CommitteeSpec::new(50, 9, 5);
        let mut last = 1.0;
        for faulty in 0..20 {
            let p = spec.probability_functional(faulty);
            assert!(p <= last + 1e-12);
            last = p;
        }
    }

    #[test]
    fn committee_of_everyone_matches_direct_count() {
        let spec = CommitteeSpec::new(10, 10, 6);
        assert_eq!(spec.probability_functional(4), 1.0);
        assert_eq!(spec.probability_functional(5), 0.0);
    }

    #[test]
    fn sampling_is_deterministic_per_round_and_varies_across_rounds() {
        let sampler = CommitteeSampler::new(CommitteeSpec::new(40, 7, 4), 42);
        let a1 = sampler.sample_uniform(3);
        let a2 = sampler.sample_uniform(3);
        let b = sampler.sample_uniform(4);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(a1.len(), 7);
    }

    #[test]
    fn weighted_sampling_prefers_reliable_nodes() {
        let spec = CommitteeSpec::new(20, 5, 3);
        let sampler = CommitteeSampler::new(spec, 7);
        // Nodes 0..10 are 100x more attractive than nodes 10..20.
        let weights: Vec<f64> = (0..20).map(|i| if i < 10 { 100.0 } else { 1.0 }).collect();
        let mut reliable_picks = 0usize;
        let mut total = 0usize;
        for round in 0..500 {
            let committee = sampler.sample_weighted(round, &weights);
            reliable_picks += committee.iter().filter(|&i| i < 10).count();
            total += committee.len();
        }
        let frac = reliable_picks as f64 / total as f64;
        assert!(frac > 0.9, "reliable fraction {frac}");
    }

    #[test]
    fn min_committee_size_grows_with_fault_count() {
        let small = CommitteeSpec::min_committee_size_for(100, 5, 0.999).unwrap();
        let large = CommitteeSpec::min_committee_size_for(100, 30, 0.999).unwrap();
        assert!(small < large);
        assert!(small < 100);
    }

    proptest! {
        #[test]
        fn sampled_committees_have_spec_size(universe in 5usize..60, seed in 0u64..500) {
            let size = (universe / 3).max(1);
            let spec = CommitteeSpec::new(universe, size, size / 2 + 1);
            let sampler = CommitteeSampler::new(spec, seed);
            let c = sampler.sample_uniform(seed);
            prop_assert_eq!(c.len(), size);
            prop_assert!(c.iter().all(|i| i < universe));
        }
    }
}
