//! The quorum-system trait.

use rand::Rng;

use crate::set::NodeSet;

/// A quorum system over a fixed universe of nodes.
///
/// Implementations define which subsets of the universe count as quorums. The analysis
/// layer uses three derived questions:
///
/// * *liveness*: can the currently-correct nodes still form a quorum
///   ([`QuorumSystem::can_form_quorum`])?
/// * *safety*: do any two quorums necessarily intersect
///   ([`QuorumSystem::always_intersects`]), and do they still intersect in a *correct*
///   node given a set of faulty ones
///   ([`QuorumSystem::intersection_survives_faults`])?
/// * *cost*: how small can a quorum be ([`QuorumSystem::min_quorum_size`])?
pub trait QuorumSystem {
    /// Number of nodes in the universe.
    fn universe_size(&self) -> usize;

    /// Whether `set` contains a quorum.
    fn is_quorum(&self, set: &NodeSet) -> bool;

    /// The size of the smallest quorum.
    fn min_quorum_size(&self) -> usize;

    /// Whether the nodes in `live` can assemble at least one quorum using only members of
    /// `live`. Default: `live` itself is a quorum (correct for monotone systems).
    fn can_form_quorum(&self, live: &NodeSet) -> bool {
        self.is_quorum(live)
    }

    /// Samples one (preferably minimal) quorum uniformly-ish at random, or `None` if the
    /// system has no quorum at all.
    fn sample_quorum<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeSet>;

    /// Whether every pair of quorums intersects in at least one node.
    fn always_intersects(&self) -> bool;

    /// Whether every pair of quorums intersects in at least one node *outside* `faulty`.
    ///
    /// This is the probabilistic-safety question for Byzantine settings: a quorum
    /// intersection consisting solely of Byzantine nodes provides no protection.
    fn intersection_survives_faults(&self, faulty: &NodeSet) -> bool;

    /// A human-readable description of the system.
    fn describe(&self) -> String {
        format!(
            "quorum system over {} nodes (min quorum {})",
            self.universe_size(),
            self.min_quorum_size()
        )
    }
}

/// Samples a uniformly random subset of exactly `k` distinct indices from `0..n`.
///
/// Helper shared by the threshold-style systems. Uses a partial Fisher–Yates shuffle, so
/// it is O(n) time and allocation.
pub fn sample_subset<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> NodeSet {
    assert!(k <= n, "cannot sample {k} nodes from a universe of {n}");
    let mut indices: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        indices.swap(i, j);
    }
    NodeSet::from_indices(n, &indices[..k])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_subset_has_requested_size_and_is_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for k in 0..=10 {
            let s = sample_subset(10, k, &mut rng);
            assert_eq!(s.len(), k);
            assert!(s.iter().all(|i| i < 10));
        }
    }

    #[test]
    fn sample_subset_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 6];
        for _ in 0..30_000 {
            for i in sample_subset(6, 2, &mut rng).iter() {
                counts[i] += 1;
            }
        }
        // Each node should appear in about 1/3 of the samples.
        for &c in &counts {
            let frac = c as f64 / 30_000.0;
            assert!((frac - 1.0 / 3.0).abs() < 0.02, "frac {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_subset_rejects_oversized_request() {
        let mut rng = StdRng::seed_from_u64(5);
        sample_subset(3, 4, &mut rng);
    }
}
