//! Threshold (k-of-n) quorum systems.

use rand::Rng;

use crate::set::NodeSet;
use crate::system::{sample_subset, QuorumSystem};

/// The k-of-n threshold quorum system: any subset of at least `threshold` nodes is a
/// quorum. Majority quorums, PBFT's `2f+1` quorums and the paper's `|Q_per|`, `|Q_vc|`,
/// `|Q_eq|` parameters are all instances of this system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThresholdQuorum {
    universe: usize,
    threshold: usize,
}

impl ThresholdQuorum {
    /// Creates a k-of-n system.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero or exceeds `universe`.
    pub fn new(universe: usize, threshold: usize) -> Self {
        assert!(universe > 0, "universe must be non-empty");
        assert!(
            (1..=universe).contains(&threshold),
            "threshold {threshold} must be in 1..={universe}"
        );
        Self {
            universe,
            threshold,
        }
    }

    /// The threshold k.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Probability that a quorum can be formed when each node is independently live with
    /// the given probability (i.e. at least `threshold` of `universe` nodes are live).
    pub fn formation_probability_iid(&self, p_live: f64) -> f64 {
        crate::metrics::binomial_tail_at_least(self.universe, self.threshold, p_live)
    }
}

impl QuorumSystem for ThresholdQuorum {
    fn universe_size(&self) -> usize {
        self.universe
    }

    fn is_quorum(&self, set: &NodeSet) -> bool {
        assert_eq!(set.universe(), self.universe, "universe mismatch");
        set.len() >= self.threshold
    }

    fn min_quorum_size(&self) -> usize {
        self.threshold
    }

    fn sample_quorum<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeSet> {
        Some(sample_subset(self.universe, self.threshold, rng))
    }

    fn always_intersects(&self) -> bool {
        // Two quorums of size k over n nodes must overlap iff 2k > n.
        2 * self.threshold > self.universe
    }

    fn intersection_survives_faults(&self, faulty: &NodeSet) -> bool {
        assert_eq!(faulty.universe(), self.universe, "universe mismatch");
        // Two k-sized quorums overlap in at least 2k - n nodes; the overlap can be made
        // entirely faulty iff |faulty| >= 2k - n.
        let guaranteed_overlap = (2 * self.threshold).saturating_sub(self.universe);
        guaranteed_overlap > faulty.len()
    }

    fn describe(&self) -> String {
        format!("{}-of-{} threshold quorum", self.threshold, self.universe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn membership_is_by_cardinality() {
        let q = ThresholdQuorum::new(7, 5);
        assert!(q.is_quorum(&NodeSet::from_indices(7, &[0, 1, 2, 3, 4])));
        assert!(!q.is_quorum(&NodeSet::from_indices(7, &[0, 1, 2, 3])));
        assert_eq!(q.min_quorum_size(), 5);
    }

    #[test]
    fn intersection_rules() {
        assert!(ThresholdQuorum::new(5, 3).always_intersects());
        assert!(!ThresholdQuorum::new(6, 3).always_intersects());
        // 5-of-7 quorums overlap in >= 3 nodes; 2 faulty nodes cannot cover the overlap.
        let q = ThresholdQuorum::new(7, 5);
        assert!(q.intersection_survives_faults(&NodeSet::from_indices(7, &[0, 1])));
        assert!(!q.intersection_survives_faults(&NodeSet::from_indices(7, &[0, 1, 2])));
    }

    #[test]
    fn sampled_quorums_are_minimal() {
        let q = ThresholdQuorum::new(9, 5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = q.sample_quorum(&mut rng).unwrap();
            assert_eq!(s.len(), 5);
            assert!(q.is_quorum(&s));
        }
    }

    #[test]
    fn formation_probability_matches_binomial() {
        let q = ThresholdQuorum::new(3, 2);
        // P(at least 2 of 3 live) with p = 0.99.
        let expected = 0.99f64.powi(3) + 3.0 * 0.99f64.powi(2) * 0.01;
        assert!((q.formation_probability_iid(0.99) - expected).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn supersets_of_quorums_are_quorums(n in 2usize..40, extra in 0usize..40) {
            let k = n / 2 + 1;
            let q = ThresholdQuorum::new(n, k);
            let base: Vec<usize> = (0..k).collect();
            let mut with_extra = base.clone();
            with_extra.push(extra % n);
            prop_assert!(q.is_quorum(&NodeSet::from_indices(n, &base)));
            prop_assert!(q.is_quorum(&NodeSet::from_indices(n, &with_extra)));
        }

        #[test]
        fn majority_thresholds_always_intersect(n in 1usize..100) {
            let q = ThresholdQuorum::new(n, n / 2 + 1);
            prop_assert!(q.always_intersects());
        }
    }
}
