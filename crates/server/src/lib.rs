//! Analysis-as-a-service: the long-running front end behind `repro serve`.
//!
//! The paper's pitch is operational — operators ask "what reliability does this
//! deployment give?" continuously as telemetry shifts, not once per offline run.
//! This crate keeps one [`AnalysisSession`] (and therefore one scratch cache of
//! converted correlation models, compiled packed kernels, selector pilots and
//! learned IS proposals) alive across requests and exposes it over a newline-
//! delimited JSON protocol on stdio or TCP.
//!
//! # Protocol
//!
//! One JSON object per line in each direction. Requests:
//!
//! ```text
//! {"id":"q1","op":"query","query":{"protocols":["raft"],"nodes":[5],"fault_probs":[0.02]}}
//! {"id":"q2","op":"query","query":{"protocols":["raft"],"nodes":[5],"fault_probs":[0.02],
//!                                  "posterior":{"draws":200,"alpha":8.5,"beta":191.5}}}
//! {"id":"o1","op":"optimize","space":{"instances":[{"name":"spot","fault_probability":0.08,
//!                                                   "hourly_cost":0.10}],
//!                                     "nodes":[3,5,7],"target":{"protocol":"raft"}},
//!                            "config":{"target_nines":3.0}}
//! {"id":"s1","op":"stats"}
//! {"id":"bye","op":"shutdown"}
//! ```
//!
//! A `posterior` member turns the query second-order: every cell re-runs under
//! `draws` deterministic Beta(`alpha`, `beta`) posterior draws and its record
//! gains an `epistemic` object separating the parameter-uncertainty credible
//! interval from the sampling interval (optional `level`, default 0.9; see
//! `prob_consensus::epistemic`). Malformed posterior payloads — zero draws,
//! non-positive hyperparameters, a level outside (0, 1) — draw an `error` event
//! at plan time and never take the connection down.
//!
//! Responses are events tagged with the request `id`. A query streams one
//! `cell` / `trajectory` event per record *as it completes* (unspecified order;
//! every event carries its query-order `index`), then a `done` summary:
//!
//! ```text
//! {"id":"q1","event":"cell","index":0,"cell":{...}}
//! {"id":"q1","event":"done","cells":1,"trajectories":0,"wall_ms":2.1}
//! {"id":"o1","event":"optimize","report":{"target_nines":3,"frontier":[...],...}}
//! {"id":"o1","event":"done","frontier":1,"evaluated":3,"wall_ms":1.4}
//! {"id":"s1","event":"stats","cache":{...},"queries_completed":1,...}
//! {"id":"bye","event":"shutdown"}
//! ```
//!
//! An `optimize` request runs the deployment optimizer
//! ([`prob_consensus::optimize::optimize`]) against the shared session — its
//! per-candidate scratch (pilots, IS proposals, packed kernels) lands in the
//! same cache queries use, under the optimizer's own key namespace. The
//! `space` object takes `instances` (name, `fault_probability`, optional
//! `byzantine_probability`, `hourly_cost`), `nodes`, an optional `domains`
//! object (`racks`, `shock_probability`) with `placements`
//! (`"same-rack"` / `"cross-rack"`), and a `target` (`{"protocol":...}` as in
//! queries, or `{"quorum_size":k}` for durability). The `config` object takes
//! `target_nines` plus optional `screen_samples`, `refine_samples`, `seed`,
//! `rare_event_threshold` and `repair` (`mttr_hours`, `mission_hours`). The
//! response is one `optimize` event carrying the full report (Pareto frontier
//! plus every evaluated candidate), then a `done` summary.
//!
//! Queries submitted before a previous one finishes run **concurrently** on the
//! shared worker pool (each plan is submitted as an owned task; its work items
//! interleave with every other plan's). `shutdown` drains in-flight queries
//! before the final event is written. Malformed lines and failed plans produce
//! an `error` event and never take the server down.
//!
//! The streamed cell records are produced by the same execution path as the
//! one-shot CLI (`QueryPlan::execute_streaming`), so a streamed report
//! re-assembled by index is byte-identical to a one-shot run of the same query
//! (modulo the measured `wall_ns` fields).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use fault_model::markov::RepairableGroup;
use fault_model::mode::FaultProfile;
use prob_consensus::deployment::Deployment;
use prob_consensus::durability::PersistenceQuorumModel;
use prob_consensus::engine::{Budget, EpistemicBudget, FaultEnvironment};
use prob_consensus::json::JsonValue;
use prob_consensus::optimize::{
    optimize, DeploymentSpace, FailureDomains, NodeType, OptimizerConfig, Placement, RepairPolicy,
    TargetSpec,
};
use prob_consensus::protocol::ProtocolModel;
use prob_consensus::query::{
    AnalysisSession, CellRecord, CorrelationSpec, FaultAxis, Metrics, ProtocolSpec, Query,
    StreamSink, TimeAxis, TrajectoryRecord,
};

/// The output side of a connection: every event line is rendered compact,
/// newline-terminated, and written + flushed under the lock, so concurrent
/// plans never interleave *within* a line.
pub type SharedWriter = Arc<Mutex<dyn Write + Send>>;

fn emit(writer: &SharedWriter, value: &JsonValue) {
    let mut line = value.to_compact_string();
    line.push('\n');
    let mut w = writer.lock().expect("writer lock");
    // A dead peer is not a server error: drop the event and keep serving.
    let _ = w.write_all(line.as_bytes());
    let _ = w.flush();
}

fn event(id: &JsonValue, kind: &str, rest: Vec<(String, JsonValue)>) -> JsonValue {
    let mut members = vec![
        ("id".to_string(), id.clone()),
        ("event".to_string(), JsonValue::string(kind)),
    ];
    members.extend(rest);
    JsonValue::Object(members)
}

fn error_event(id: &JsonValue, message: impl Into<String>) -> JsonValue {
    event(
        id,
        "error",
        vec![("message".to_string(), JsonValue::string(message.into()))],
    )
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "internal error".to_string()
    }
}

// ---------------------------------------------------------------------------
// Query JSON → `Query`
// ---------------------------------------------------------------------------

fn as_bool(v: &JsonValue) -> Option<bool> {
    match v {
        JsonValue::Bool(b) => Some(*b),
        _ => None,
    }
}

fn as_usize(v: &JsonValue) -> Option<usize> {
    let f = v.as_f64()?;
    (f >= 0.0 && f.fract() == 0.0 && f <= u32::MAX as f64).then_some(f as usize)
}

fn as_u64(v: &JsonValue) -> Option<u64> {
    let f = v.as_f64()?;
    (f >= 0.0 && f.fract() == 0.0 && f <= 2f64.powi(53)).then_some(f as u64)
}

fn field<'a>(obj: &'a JsonValue, key: &str, what: &str) -> Result<&'a JsonValue, String> {
    obj.get(key)
        .ok_or_else(|| format!("{what}: missing '{key}'"))
}

fn num_field(obj: &JsonValue, key: &str, what: &str) -> Result<f64, String> {
    field(obj, key, what)?
        .as_f64()
        .ok_or_else(|| format!("{what}: '{key}' must be a number"))
}

fn usize_field(obj: &JsonValue, key: &str, what: &str) -> Result<usize, String> {
    field(obj, key, what)?
        .as_usize()
        .ok_or_else(|| format!("{what}: '{key}' must be a non-negative integer"))
}

trait JsonExt {
    fn as_usize(&self) -> Option<usize>;
}

impl JsonExt for JsonValue {
    fn as_usize(&self) -> Option<usize> {
        as_usize(self)
    }
}

fn parse_protocol(v: &JsonValue) -> Result<ProtocolSpec, String> {
    match v.as_str() {
        Some("raft") => return Ok(ProtocolSpec::Raft),
        Some("pbft") => return Ok(ProtocolSpec::Pbft),
        Some(other) => return Err(format!("unknown protocol '{other}'")),
        None => {}
    }
    if let Some(flex) = v.get("raft_flexible") {
        return Ok(ProtocolSpec::RaftFlexible {
            q_per: usize_field(flex, "q_per", "raft_flexible")?,
            q_vc: usize_field(flex, "q_vc", "raft_flexible")?,
        });
    }
    Err("protocol must be \"raft\", \"pbft\" or {\"raft_flexible\":{...}}".to_string())
}

fn parse_faults(v: &JsonValue) -> Result<FaultAxis, String> {
    match v.as_str() {
        Some("crash") => return Ok(FaultAxis::Crash),
        Some("byzantine") => return Ok(FaultAxis::Byzantine),
        Some(other) => return Err(format!("unknown fault axis '{other}'")),
        None => {}
    }
    if let Some(mixed) = v.get("mixed") {
        return Ok(FaultAxis::Mixed {
            byzantine: num_field(mixed, "byzantine", "mixed faults")?,
        });
    }
    Err("faults must be \"crash\", \"byzantine\" or {\"mixed\":{\"byzantine\":p}}".to_string())
}

fn parse_correlation(v: &JsonValue) -> Result<CorrelationSpec, String> {
    match v.as_str() {
        Some("independent") => return Ok(CorrelationSpec::Independent),
        Some(other) => return Err(format!("unknown correlation '{other}'")),
        None => {}
    }
    if let Some(shock) = v.get("cluster_shock") {
        return Ok(CorrelationSpec::ClusterShock {
            probability: num_field(shock, "probability", "cluster_shock")?,
        });
    }
    if let Some(shock) = v.get("rack_shock") {
        return Ok(CorrelationSpec::RackShock {
            racks: usize_field(shock, "racks", "rack_shock")?,
            probability: num_field(shock, "probability", "rack_shock")?,
        });
    }
    Err(
        "correlation must be \"independent\", {\"cluster_shock\":{...}} or {\"rack_shock\":{...}}"
            .to_string(),
    )
}

fn parse_fault_probs(v: &JsonValue) -> Result<Vec<f64>, String> {
    if let Some(items) = v.as_array() {
        return items
            .iter()
            .map(|p| {
                p.as_f64()
                    .ok_or_else(|| "fault_probs: not a number".to_string())
            })
            .collect();
    }
    if let Some(spec) = v.get("logspace") {
        let lo = num_field(spec, "lo", "logspace")?;
        let hi = num_field(spec, "hi", "logspace")?;
        let count = usize_field(spec, "count", "logspace")?;
        if !(lo > 0.0 && hi >= lo && lo.is_finite() && hi.is_finite() && count >= 1) {
            return Err(format!(
                "logspace needs 0 < lo <= hi and count >= 1, got [{lo}, {hi}] x{count}"
            ));
        }
        return Ok(prob_consensus::query::logspace(lo, hi, count));
    }
    Err(
        "fault_probs must be an array of numbers or {\"logspace\":{\"lo\",\"hi\",\"count\"}}"
            .to_string(),
    )
}

fn parse_deployment(v: &JsonValue) -> Result<Deployment, String> {
    if let Some(spec) = v.get("uniform_crash") {
        let n = usize_field(spec, "n", "uniform_crash")?;
        let p = num_field(spec, "p", "uniform_crash")?;
        check_probability(p, "uniform_crash p")?;
        return Ok(Deployment::uniform_crash(n, p));
    }
    if let Some(spec) = v.get("uniform_byzantine") {
        let n = usize_field(spec, "n", "uniform_byzantine")?;
        let p = num_field(spec, "p", "uniform_byzantine")?;
        check_probability(p, "uniform_byzantine p")?;
        return Ok(Deployment::uniform_byzantine(n, p));
    }
    if let Some(spec) = v.get("uniform_mixed") {
        let n = usize_field(spec, "n", "uniform_mixed")?;
        let crash = num_field(spec, "crash", "uniform_mixed")?;
        let byzantine = num_field(spec, "byzantine", "uniform_mixed")?;
        check_probability(crash, "uniform_mixed crash")?;
        check_probability(byzantine, "uniform_mixed byzantine")?;
        return Ok(Deployment::uniform_mixed(n, crash, byzantine));
    }
    Err(
        "deployment must be {\"uniform_crash\"|\"uniform_byzantine\"|\"uniform_mixed\":{...}}"
            .to_string(),
    )
}

fn check_probability(p: f64, what: &str) -> Result<(), String> {
    if (0.0..=1.0).contains(&p) {
        Ok(())
    } else {
        Err(format!("{what} must be a probability in [0, 1], got {p}"))
    }
}

fn parse_cell_model(
    v: &JsonValue,
    n: usize,
) -> Result<Arc<dyn ProtocolModel + Send + Sync>, String> {
    if let Some(spec) = v.get("persistence_quorum") {
        let quorum: Vec<usize> = spec
            .get("quorum")
            .and_then(|q| q.as_array())
            .ok_or("persistence_quorum: 'quorum' must be an array of node indices")?
            .iter()
            .map(|m| as_usize(m).ok_or("persistence_quorum: bad member index".to_string()))
            .collect::<Result<_, _>>()?;
        if quorum.is_empty() {
            return Err("persistence_quorum: quorum cannot be empty".to_string());
        }
        let mut seen = vec![false; n];
        for &m in &quorum {
            if m >= n {
                return Err(format!(
                    "persistence_quorum: member {m} out of range for {n} nodes"
                ));
            }
            if std::mem::replace(&mut seen[m], true) {
                return Err(format!("persistence_quorum: member {m} repeated"));
            }
        }
        return Ok(Arc::new(PersistenceQuorumModel::new(n, quorum)));
    }
    // Everything else is a grid protocol spec instantiated at the cell's size.
    Ok(parse_protocol(v)?.build(n))
}

fn parse_time_axis(v: &JsonValue) -> Result<TimeAxis, String> {
    let horizon = num_field(v, "horizon_hours", "time_axis")?;
    let step = num_field(v, "step_hours", "time_axis")?;
    if !(horizon >= 0.0 && horizon.is_finite() && step > 0.0 && step.is_finite()) {
        return Err(format!(
            "time_axis needs horizon >= 0 and step > 0, got {horizon}/{step}"
        ));
    }
    let mut axis = TimeAxis::new(horizon, step);
    if let Some(window) = v.get("window_hours") {
        let w = window
            .as_f64()
            .ok_or("time_axis: 'window_hours' must be a number")?;
        if !(w > 0.0 && w.is_finite()) {
            return Err(format!("time_axis window must be positive, got {w}"));
        }
        axis = axis.with_window(w);
    }
    if let Some(target) = v.get("target_nines") {
        let t = target
            .as_f64()
            .ok_or("time_axis: 'target_nines' must be a number")?;
        axis = axis.with_target_nines(t);
    }
    Ok(axis)
}

/// A parsed `query` request body: the [`Query`] plus the metrics selection the
/// streaming sink needs to serialize cell records exactly as the report would.
pub struct ParsedQuery {
    /// The query, ready for [`AnalysisSession::plan`].
    pub query: Query,
    /// The report metrics selection (default: all three guarantees).
    pub metrics: Metrics,
}

/// Parses the `query` object of a `{"op":"query"}` request into a [`Query`].
///
/// Unknown keys are rejected — a misspelled axis silently defaulting would be
/// the worst possible failure mode for an operator tool.
pub fn parse_query(spec: &JsonValue) -> Result<ParsedQuery, String> {
    let JsonValue::Object(members) = spec else {
        return Err("query must be an object".to_string());
    };
    let mut query = Query::new();
    let mut budget = Budget::default();
    let mut metrics = Metrics::default();
    for (key, value) in members {
        match key.as_str() {
            "protocols" => {
                let specs: Vec<ProtocolSpec> = value
                    .as_array()
                    .ok_or("protocols must be an array")?
                    .iter()
                    .map(parse_protocol)
                    .collect::<Result<_, _>>()?;
                query = query.protocols(specs);
            }
            "nodes" => {
                let nodes: Vec<usize> = value
                    .as_array()
                    .ok_or("nodes must be an array")?
                    .iter()
                    .map(|n| as_usize(n).ok_or("nodes: not a non-negative integer".to_string()))
                    .collect::<Result<_, _>>()?;
                query = query.nodes(nodes);
            }
            "fault_probs" => query = query.fault_probs(parse_fault_probs(value)?),
            "faults" => query = query.faults(parse_faults(value)?),
            "correlations" => {
                let specs: Vec<CorrelationSpec> = value
                    .as_array()
                    .ok_or("correlations must be an array")?
                    .iter()
                    .map(parse_correlation)
                    .collect::<Result<_, _>>()?;
                query = query.correlations(specs);
            }
            "samples" => {
                budget = budget.with_samples(as_usize(value).ok_or("samples must be an integer")?);
            }
            "seed" => budget = budget.with_seed(as_u64(value).ok_or("seed must be an integer")?),
            "posterior" => {
                let JsonValue::Object(posterior_members) = value else {
                    return Err("posterior must be an object".to_string());
                };
                for (sub, _) in posterior_members {
                    if !matches!(sub.as_str(), "draws" | "alpha" | "beta" | "level") {
                        return Err(format!("unknown posterior key '{sub}'"));
                    }
                }
                let draws = usize_field(value, "draws", "posterior")?;
                let alpha = num_field(value, "alpha", "posterior")?;
                let beta = num_field(value, "beta", "posterior")?;
                // The builder is assert-free: hyperparameter/level sanity is
                // plan-time validation, so a hostile payload draws an `error`
                // event instead of panicking a worker.
                let mut epistemic = EpistemicBudget::new(draws, alpha, beta);
                if let Some(level) = value.get("level") {
                    epistemic = epistemic.with_level(
                        level
                            .as_f64()
                            .ok_or("posterior: 'level' must be a number")?,
                    );
                }
                budget = budget.with_epistemic(epistemic);
            }
            "samples_sweep" => {
                let sweep: Vec<usize> = value
                    .as_array()
                    .ok_or("samples_sweep must be an array")?
                    .iter()
                    .map(|s| as_usize(s).ok_or("samples_sweep: not an integer".to_string()))
                    .collect::<Result<_, _>>()?;
                query = query.samples_sweep(sweep);
            }
            "validate" => {
                if as_bool(value).ok_or("validate must be a boolean")? {
                    query = query.validate_with_simulation();
                }
            }
            "environments" => {
                let environments: Vec<FaultEnvironment> = value
                    .as_array()
                    .ok_or("environments must be an array")?
                    .iter()
                    .map(|e| {
                        let label = e
                            .as_str()
                            .ok_or_else(|| "environments: entries must be strings".to_string())?;
                        FaultEnvironment::from_label(label).ok_or_else(|| {
                            format!(
                                "environments: unknown environment '{label}' (one of: clean, \
                                 gray-primary, partition-heal, wan-lossy)"
                            )
                        })
                    })
                    .collect::<Result<_, _>>()?;
                query = query.fault_environments(environments);
            }
            "metrics" => {
                let m = Metrics {
                    safe: value.get("safe").map_or(Ok(true), |v| {
                        as_bool(v).ok_or("metrics.safe must be a boolean")
                    })?,
                    live: value.get("live").map_or(Ok(true), |v| {
                        as_bool(v).ok_or("metrics.live must be a boolean")
                    })?,
                    safe_and_live: value.get("safe_and_live").map_or(Ok(true), |v| {
                        as_bool(v).ok_or("metrics.safe_and_live must be a boolean")
                    })?,
                };
                metrics = m;
                query = query.metrics(m);
            }
            "time_axis" => query = query.time_horizon(parse_time_axis(value)?),
            "cells" => {
                for cell in value.as_array().ok_or("cells must be an array")? {
                    let label = field(cell, "label", "cell")?
                        .as_str()
                        .ok_or("cell: 'label' must be a string")?
                        .to_string();
                    let deployment = parse_deployment(field(cell, "deployment", "cell")?)?;
                    let model = parse_cell_model(field(cell, "model", "cell")?, deployment.len())?;
                    query = query.cell(label, model, deployment);
                }
            }
            "repairable_cells" => {
                for cell in value
                    .as_array()
                    .ok_or("repairable_cells must be an array")?
                {
                    let label = field(cell, "label", "repairable cell")?
                        .as_str()
                        .ok_or("repairable cell: 'label' must be a string")?
                        .to_string();
                    let n = usize_field(cell, "n", "repairable cell")?;
                    let lambda = num_field(cell, "lambda", "repairable cell")?;
                    let mu = num_field(cell, "mu", "repairable cell")?;
                    let tolerated = usize_field(cell, "tolerated_failures", "repairable cell")?;
                    if n == 0 || tolerated >= n {
                        return Err(format!(
                            "repairable cell needs 0 <= tolerated_failures < n, got {tolerated}/{n}"
                        ));
                    }
                    if !(lambda > 0.0 && lambda.is_finite() && mu >= 0.0 && mu.is_finite()) {
                        return Err(format!(
                            "repairable cell needs lambda > 0 and mu >= 0, got {lambda}/{mu}"
                        ));
                    }
                    query = query
                        .repairable_cell(label, RepairableGroup::new(n, lambda, mu, tolerated));
                }
            }
            other => return Err(format!("unknown query key '{other}'")),
        }
    }
    query = query.budget(budget);
    if query.cell_count() == 0 && query.trajectory_count() == 0 {
        return Err("query expands to zero cells".to_string());
    }
    Ok(ParsedQuery { query, metrics })
}

// ---------------------------------------------------------------------------
// Optimize JSON → `DeploymentSpace` + `OptimizerConfig`
// ---------------------------------------------------------------------------

/// A parsed `optimize` request body, ready for
/// [`prob_consensus::optimize::optimize`].
pub struct ParsedOptimize {
    /// The deployment search space.
    pub space: DeploymentSpace,
    /// The search configuration (target nines, tier budgets, seeds).
    pub config: OptimizerConfig,
}

fn parse_space(v: &JsonValue) -> Result<DeploymentSpace, String> {
    let JsonValue::Object(members) = v else {
        return Err("space must be an object".to_string());
    };
    let mut instances = Vec::new();
    let mut nodes = Vec::new();
    let mut domains = None;
    let mut placements = Vec::new();
    let mut target = None;
    for (key, value) in members {
        match key.as_str() {
            "instances" => {
                for instance in value.as_array().ok_or("instances must be an array")? {
                    if let JsonValue::Object(fields) = instance {
                        for (sub, _) in fields {
                            if !matches!(
                                sub.as_str(),
                                "name"
                                    | "fault_probability"
                                    | "byzantine_probability"
                                    | "hourly_cost"
                            ) {
                                return Err(format!("unknown instance key '{sub}'"));
                            }
                        }
                    }
                    let name = field(instance, "name", "instance")?
                        .as_str()
                        .ok_or("instance: 'name' must be a string")?
                        .to_string();
                    let crash = num_field(instance, "fault_probability", "instance")?;
                    let byzantine = match instance.get("byzantine_probability") {
                        Some(b) => b
                            .as_f64()
                            .ok_or("instance: 'byzantine_probability' must be a number")?,
                        None => 0.0,
                    };
                    let cost = num_field(instance, "hourly_cost", "instance")?;
                    if !((0.0..=1.0).contains(&crash)
                        && (0.0..=1.0).contains(&byzantine)
                        && crash + byzantine <= 1.0)
                    {
                        return Err(format!(
                            "instance '{name}': fault probabilities must lie in [0, 1] and sum \
                             to at most 1"
                        ));
                    }
                    if !(cost.is_finite() && cost >= 0.0) {
                        return Err(format!(
                            "instance '{name}': hourly_cost must be finite and non-negative"
                        ));
                    }
                    instances.push(NodeType::from_profile(
                        name,
                        FaultProfile::new(crash, byzantine),
                        cost,
                    ));
                }
            }
            "nodes" => {
                nodes = value
                    .as_array()
                    .ok_or("nodes must be an array")?
                    .iter()
                    .map(|n| as_usize(n).ok_or("nodes: not a non-negative integer".to_string()))
                    .collect::<Result<_, _>>()?;
            }
            "domains" => {
                if let JsonValue::Object(fields) = value {
                    for (sub, _) in fields {
                        if !matches!(sub.as_str(), "racks" | "shock_probability") {
                            return Err(format!("unknown domains key '{sub}'"));
                        }
                    }
                }
                let shock = num_field(value, "shock_probability", "domains")?;
                if !(0.0..=1.0).contains(&shock) {
                    return Err("domains: shock_probability must lie in [0, 1]".to_string());
                }
                domains = Some(FailureDomains {
                    racks: usize_field(value, "racks", "domains")?,
                    shock_probability: shock,
                });
            }
            "placements" => {
                placements = value
                    .as_array()
                    .ok_or("placements must be an array")?
                    .iter()
                    .map(|p| match p.as_str() {
                        Some("same-rack") => Ok(Placement::SameRack),
                        Some("cross-rack") => Ok(Placement::CrossRack),
                        _ => Err(
                            "placements: entries must be \"same-rack\" or \"cross-rack\""
                                .to_string(),
                        ),
                    })
                    .collect::<Result<_, _>>()?;
            }
            "target" => {
                target = Some(if value.get("quorum_size").is_some() {
                    TargetSpec::PersistenceQuorum {
                        quorum_size: usize_field(value, "quorum_size", "target")?,
                    }
                } else if let Some(protocol) = value.get("protocol") {
                    TargetSpec::Protocol(parse_protocol(protocol)?)
                } else {
                    return Err("target must carry 'protocol' or 'quorum_size'".to_string());
                });
            }
            other => return Err(format!("unknown space key '{other}'")),
        }
    }
    Ok(DeploymentSpace {
        instances,
        nodes,
        domains,
        placements,
        target: target.ok_or("space: missing 'target'")?,
    })
}

fn parse_optimizer_config(v: &JsonValue) -> Result<OptimizerConfig, String> {
    let JsonValue::Object(members) = v else {
        return Err("config must be an object".to_string());
    };
    let target = num_field(v, "target_nines", "config")?;
    // The builder asserts on junk targets; a hostile payload must draw an
    // `error` event instead of panicking a worker.
    if !(target.is_finite() && target >= 0.0) {
        return Err("config: target_nines must be finite and non-negative".to_string());
    }
    let mut config = OptimizerConfig::new(target);
    for (key, value) in members {
        match key.as_str() {
            "target_nines" => {}
            "screen_samples" => {
                config = config.with_screen_samples(
                    as_usize(value)
                        .ok_or("config: 'screen_samples' must be a non-negative integer")?,
                );
            }
            "refine_samples" => {
                config = config.with_refine_samples(
                    as_usize(value)
                        .ok_or("config: 'refine_samples' must be a non-negative integer")?,
                );
            }
            "seed" => {
                config =
                    config.with_seed(as_u64(value).ok_or("config: 'seed' must be an integer")?);
            }
            "rare_event_threshold" => {
                let threshold = value
                    .as_f64()
                    .ok_or("config: 'rare_event_threshold' must be a number")?;
                if !(threshold > 0.0 && threshold < 1.0) {
                    return Err(
                        "config: rare_event_threshold must lie strictly in (0, 1)".to_string()
                    );
                }
                config = config.with_rare_event_threshold(threshold);
            }
            "repair" => {
                if let JsonValue::Object(fields) = value {
                    for (sub, _) in fields {
                        if !matches!(sub.as_str(), "mttr_hours" | "mission_hours") {
                            return Err(format!("unknown repair key '{sub}'"));
                        }
                    }
                }
                let mttr_hours = num_field(value, "mttr_hours", "repair")?;
                let mission_hours = num_field(value, "mission_hours", "repair")?;
                if !(mttr_hours > 0.0
                    && mttr_hours.is_finite()
                    && mission_hours > 0.0
                    && mission_hours.is_finite())
                {
                    return Err("repair: hours must be positive and finite".to_string());
                }
                config = config.with_repair(RepairPolicy {
                    mttr_hours,
                    mission_hours,
                });
            }
            other => return Err(format!("unknown config key '{other}'")),
        }
    }
    Ok(config)
}

/// Parses the `space` and `config` members of an `{"op":"optimize"}` request.
///
/// Like [`parse_query`], unknown keys anywhere in the payload are rejected: a
/// misspelled knob silently falling back to its default would hand an operator
/// a confidently wrong frontier.
pub fn parse_optimize(request: &JsonValue) -> Result<ParsedOptimize, String> {
    Ok(ParsedOptimize {
        space: parse_space(field(request, "space", "optimize request")?)?,
        config: parse_optimizer_config(field(request, "config", "optimize request")?)?,
    })
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// Running totals behind the protocol's `stats` request — the first
/// observability hook for the service.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    /// Query requests that ran to completion (a `done` event was emitted).
    pub queries_completed: u64,
    /// Wall time of the most recently completed plan, in milliseconds.
    pub last_plan_wall_ms: f64,
    /// Total wall time across all completed plans, in milliseconds.
    pub total_plan_wall_ms: f64,
    /// Second-order cells served (cells that carried an epistemic report).
    pub epistemic_cells: u64,
    /// Posterior draws executed across all second-order cells.
    pub posterior_draws: u64,
    /// Deployment-optimizer searches that ran to completion.
    pub optimizations_completed: u64,
}

/// The service: one shared [`AnalysisSession`] (scratch cache + worker pool)
/// serving any number of concurrent NDJSON connections and queries.
pub struct Server {
    session: Arc<AnalysisSession>,
    stats: Mutex<ServerStats>,
}

impl Default for Server {
    fn default() -> Self {
        Self::new()
    }
}

/// How a handled request line affects the connection loop.
enum Action {
    /// Fully handled inline (stats, errors).
    Handled,
    /// A query was submitted; the connection tracks it for draining.
    Spawned(rayon::TaskSet),
    /// Drain in-flight queries, acknowledge, and close the connection.
    Shutdown(JsonValue),
}

/// The streaming sink of one in-flight query: every completed record becomes
/// one NDJSON event on the shared writer the moment it is final.
struct NdjsonSink {
    id: JsonValue,
    metrics: Metrics,
    writer: SharedWriter,
}

impl StreamSink for NdjsonSink {
    fn on_cell(&self, index: usize, record: &CellRecord) {
        emit(
            &self.writer,
            &event(
                &self.id,
                "cell",
                vec![
                    ("index".to_string(), JsonValue::number(index as f64)),
                    ("cell".to_string(), record.to_json_value(self.metrics)),
                ],
            ),
        );
    }

    fn on_trajectory(&self, index: usize, record: &TrajectoryRecord) {
        emit(
            &self.writer,
            &event(
                &self.id,
                "trajectory",
                vec![
                    ("index".to_string(), JsonValue::number(index as f64)),
                    ("trajectory".to_string(), record.to_json_value()),
                ],
            ),
        );
    }
}

impl Server {
    /// A server over a fresh session with the default cache capacity.
    pub fn new() -> Self {
        Self::with_session(Arc::new(AnalysisSession::new()))
    }

    /// A server over an existing session (shared cache across front ends).
    pub fn with_session(session: Arc<AnalysisSession>) -> Self {
        Self {
            session,
            stats: Mutex::new(ServerStats::default()),
        }
    }

    /// The shared session behind every request.
    pub fn session(&self) -> &Arc<AnalysisSession> {
        &self.session
    }

    /// A snapshot of the per-plan wall-time counters.
    pub fn stats(&self) -> ServerStats {
        *self.stats.lock().expect("stats lock")
    }

    fn stats_event(&self, id: &JsonValue) -> JsonValue {
        let cache = self.session.cache_stats();
        let stats = self.stats();
        event(
            id,
            "stats",
            vec![
                (
                    "cache".to_string(),
                    JsonValue::Object(vec![
                        ("hits".to_string(), JsonValue::number(cache.hits as f64)),
                        ("misses".to_string(), JsonValue::number(cache.misses as f64)),
                        (
                            "evictions".to_string(),
                            JsonValue::number(cache.evictions as f64),
                        ),
                        (
                            "entries".to_string(),
                            JsonValue::number(cache.entries as f64),
                        ),
                        ("hit_rate".to_string(), JsonValue::number(cache.hit_rate())),
                    ]),
                ),
                (
                    "queries_completed".to_string(),
                    JsonValue::number(stats.queries_completed as f64),
                ),
                (
                    "epistemic_cells".to_string(),
                    JsonValue::number(stats.epistemic_cells as f64),
                ),
                (
                    "posterior_draws".to_string(),
                    JsonValue::number(stats.posterior_draws as f64),
                ),
                (
                    "optimizations_completed".to_string(),
                    JsonValue::number(stats.optimizations_completed as f64),
                ),
                (
                    "plan_wall_ms".to_string(),
                    JsonValue::Object(vec![
                        (
                            "last".to_string(),
                            JsonValue::number(stats.last_plan_wall_ms),
                        ),
                        (
                            "total".to_string(),
                            JsonValue::number(stats.total_plan_wall_ms),
                        ),
                    ]),
                ),
            ],
        )
    }
}

/// Handles one request line: plans and submits queries (returning the
/// [`rayon::TaskSet`] handle so the connection can drain it), answers
/// `stats` inline, and turns every failure into an `error` event.
fn handle_line(server: &Arc<Server>, line: &str, writer: &SharedWriter) -> Action {
    let request = match JsonValue::parse(line) {
        Ok(v) => v,
        Err(err) => {
            emit(
                writer,
                &error_event(&JsonValue::Null, format!("bad JSON: {err}")),
            );
            return Action::Handled;
        }
    };
    let id = request.get("id").cloned().unwrap_or(JsonValue::Null);
    match request.get("op").and_then(|op| op.as_str()) {
        Some("query") => {
            let Some(spec) = request.get("query") else {
                emit(writer, &error_event(&id, "query request missing 'query'"));
                return Action::Handled;
            };
            let parsed = match parse_query(spec) {
                Ok(parsed) => parsed,
                Err(err) => {
                    emit(writer, &error_event(&id, err));
                    return Action::Handled;
                }
            };
            // Planning validates budgets and may panic deep in model
            // constructors on adversarial input; neither may kill the
            // connection.
            let plan = match catch_unwind(AssertUnwindSafe(|| server.session.plan(&parsed.query))) {
                Ok(Ok(plan)) => plan,
                Ok(Err(err)) => {
                    emit(writer, &error_event(&id, format!("plan failed: {err}")));
                    return Action::Handled;
                }
                Err(payload) => {
                    emit(
                        writer,
                        &error_event(&id, format!("plan failed: {}", panic_message(payload))),
                    );
                    return Action::Handled;
                }
            };
            let server = Arc::clone(server);
            let writer = Arc::clone(writer);
            let metrics = parsed.metrics;
            // One owned task per plan: many plans' work-item DAGs interleave
            // on the one persistent pool (nested `for_each_task` inside the
            // plan is deadlock-free by the pool's caller-helps design).
            let task: Arc<dyn Fn(usize) + Send + Sync> = Arc::new(move |_| {
                let sink = NdjsonSink {
                    id: id.clone(),
                    metrics,
                    writer: Arc::clone(&writer),
                };
                let start = Instant::now();
                match catch_unwind(AssertUnwindSafe(|| plan.execute_streaming(&sink))) {
                    Ok(report) => {
                        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                        let epistemic_cells = report
                            .cells()
                            .iter()
                            .filter(|c| c.epistemic.is_some())
                            .count() as u64;
                        let posterior_draws: u64 = report
                            .cells()
                            .iter()
                            .filter_map(|c| c.epistemic.as_ref())
                            .map(|e| e.draws.len() as u64)
                            .sum();
                        {
                            let mut stats = server.stats.lock().expect("stats lock");
                            stats.queries_completed += 1;
                            stats.last_plan_wall_ms = wall_ms;
                            stats.total_plan_wall_ms += wall_ms;
                            stats.epistemic_cells += epistemic_cells;
                            stats.posterior_draws += posterior_draws;
                        }
                        emit(
                            &writer,
                            &event(
                                &id,
                                "done",
                                vec![
                                    (
                                        "cells".to_string(),
                                        JsonValue::number(report.cells().len() as f64),
                                    ),
                                    (
                                        "trajectories".to_string(),
                                        JsonValue::number(report.trajectories().len() as f64),
                                    ),
                                    ("wall_ms".to_string(), JsonValue::number(wall_ms)),
                                ],
                            ),
                        );
                    }
                    Err(payload) => {
                        emit(
                            &writer,
                            &error_event(
                                &id,
                                format!("execution failed: {}", panic_message(payload)),
                            ),
                        );
                    }
                }
            });
            Action::Spawned(rayon::submit_tasks(1, task))
        }
        Some("optimize") => {
            let parsed = match parse_optimize(&request) {
                Ok(parsed) => parsed,
                Err(err) => {
                    emit(writer, &error_event(&id, err));
                    return Action::Handled;
                }
            };
            let server = Arc::clone(server);
            let writer = Arc::clone(writer);
            // Like queries, the search runs as one owned task on the shared
            // pool: its per-candidate cells are work-stealing items that
            // interleave with concurrent plans, and its scratch lands in the
            // shared cache (optimizer namespace).
            let task: Arc<dyn Fn(usize) + Send + Sync> = Arc::new(move |_| {
                let start = Instant::now();
                match catch_unwind(AssertUnwindSafe(|| {
                    optimize(server.session(), &parsed.space, &parsed.config)
                })) {
                    Ok(Ok(report)) => {
                        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
                        {
                            let mut stats = server.stats.lock().expect("stats lock");
                            stats.optimizations_completed += 1;
                            stats.last_plan_wall_ms = wall_ms;
                            stats.total_plan_wall_ms += wall_ms;
                        }
                        emit(
                            &writer,
                            &event(
                                &id,
                                "optimize",
                                vec![("report".to_string(), report.to_json_value())],
                            ),
                        );
                        emit(
                            &writer,
                            &event(
                                &id,
                                "done",
                                vec![
                                    (
                                        "frontier".to_string(),
                                        JsonValue::number(report.frontier.len() as f64),
                                    ),
                                    (
                                        "evaluated".to_string(),
                                        JsonValue::number(report.evaluated.len() as f64),
                                    ),
                                    ("wall_ms".to_string(), JsonValue::number(wall_ms)),
                                ],
                            ),
                        );
                    }
                    Ok(Err(err)) => {
                        emit(
                            &writer,
                            &error_event(&id, format!("optimize failed: {err}")),
                        );
                    }
                    Err(payload) => {
                        emit(
                            &writer,
                            &error_event(
                                &id,
                                format!("optimize failed: {}", panic_message(payload)),
                            ),
                        );
                    }
                }
            });
            Action::Spawned(rayon::submit_tasks(1, task))
        }
        Some("stats") => {
            emit(writer, &server.stats_event(&id));
            Action::Handled
        }
        Some("shutdown") => Action::Shutdown(id),
        Some(other) => {
            emit(writer, &error_event(&id, format!("unknown op '{other}'")));
            Action::Handled
        }
        None => {
            emit(writer, &error_event(&id, "request missing 'op'"));
            Action::Handled
        }
    }
}

/// Upper bound on one request line, in bytes. A line longer than this is not a
/// plausible query — it is a runaway or hostile client — and buffering it
/// unbounded would let one connection exhaust server memory. Oversized lines
/// produce an `error` event and a clean close (in-flight queries still drain).
pub const MAX_REQUEST_LINE_BYTES: usize = 1 << 20;

/// Per-connection read timeout for TCP connections. A peer that goes silent
/// mid-session (half-open connection, wedged client) would otherwise pin its
/// connection thread forever; after this long with no bytes, the connection
/// gets an `error` event and a clean close.
pub const TCP_READ_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(300);

/// Reads one newline-terminated request line of at most
/// [`MAX_REQUEST_LINE_BYTES`], without buffering more than that.
///
/// Returns `Ok(None)` on EOF, `Ok(Some(Err(())))` when the line exceeds the
/// bound, and propagates IO errors (including read timeouts) to the caller.
fn read_request_line(
    reader: &mut impl BufRead,
    buf: &mut Vec<u8>,
) -> std::io::Result<Option<Result<(), ()>>> {
    buf.clear();
    loop {
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(err),
        };
        if available.is_empty() {
            // EOF: a final unterminated line is still served if non-empty.
            return Ok(if buf.is_empty() { None } else { Some(Ok(())) });
        }
        let room = MAX_REQUEST_LINE_BYTES - buf.len();
        match available.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                let over = newline > room;
                buf.extend_from_slice(&available[..newline.min(room)]);
                reader.consume(newline + 1);
                return Ok(Some(if over { Err(()) } else { Ok(()) }));
            }
            None if available.len() > room => {
                // Over the cap with no line end in sight: stop buffering — the
                // connection is about to close, so nothing needs resyncing.
                let consumed = available.len();
                reader.consume(consumed);
                return Ok(Some(Err(())));
            }
            None => {
                let consumed = available.len();
                buf.extend_from_slice(available);
                reader.consume(consumed);
            }
        }
    }
}

/// Serves one connection: reads request lines until EOF or a `shutdown`
/// request, then drains every in-flight query before returning. Returns `true`
/// when the connection asked the server to shut down.
///
/// The read side is hardened against misbehaving peers: request lines are
/// bounded by [`MAX_REQUEST_LINE_BYTES`], and a read timeout on the underlying
/// stream (see [`TCP_READ_TIMEOUT`]) is treated as a protocol event, not an IO
/// failure — both emit an `error` event, drain in-flight queries, and close the
/// connection cleanly.
pub fn serve_connection(
    server: &Arc<Server>,
    mut reader: impl BufRead,
    writer: SharedWriter,
) -> std::io::Result<bool> {
    let mut in_flight: Vec<rayon::TaskSet> = Vec::new();
    let mut shutdown_id = None;
    let mut buf = Vec::new();
    loop {
        match read_request_line(&mut reader, &mut buf) {
            Ok(None) => break,
            Ok(Some(Err(()))) => {
                emit(
                    &writer,
                    &error_event(
                        &JsonValue::Null,
                        format!(
                            "request line exceeds {MAX_REQUEST_LINE_BYTES} bytes; closing \
                             connection"
                        ),
                    ),
                );
                break;
            }
            Ok(Some(Ok(()))) => {}
            Err(err)
                if matches!(
                    err.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                emit(
                    &writer,
                    &error_event(&JsonValue::Null, "read timed out; closing connection"),
                );
                break;
            }
            Err(err) => return Err(err),
        }
        let Ok(line) = std::str::from_utf8(&buf) else {
            emit(
                &writer,
                &error_event(
                    &JsonValue::Null,
                    "request line is not UTF-8; closing connection",
                ),
            );
            break;
        };
        if line.trim().is_empty() {
            continue;
        }
        match handle_line(server, line, &writer) {
            Action::Handled => {}
            Action::Spawned(set) => {
                // Opportunistically shed finished handles so a long-lived
                // connection's drain list stays proportional to in-flight work.
                in_flight.retain(|s| !s.is_complete());
                in_flight.push(set);
            }
            Action::Shutdown(id) => {
                shutdown_id = Some(id);
                break;
            }
        }
    }
    // Graceful drain: in-flight plans stream out completely (the submitting
    // side helps execute them rather than just blocking).
    for set in in_flight {
        set.join();
    }
    match shutdown_id {
        Some(id) => {
            emit(&writer, &event(&id, "shutdown", Vec::new()));
            Ok(true)
        }
        None => Ok(false),
    }
}

/// `repro serve`: the stdio front end — NDJSON requests on stdin, events on
/// stdout. Returns after EOF or a `shutdown` request, with all work drained.
pub fn serve_stdio(server: &Arc<Server>) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let writer: SharedWriter = Arc::new(Mutex::new(std::io::stdout()));
    serve_connection(server, stdin.lock(), writer).map(|_| ())
}

/// `repro serve --tcp ADDR`: the TCP front end. Every connection speaks the
/// same line protocol against the same shared session; a `shutdown` request on
/// any connection drains that connection, then stops accepting and waits for
/// the remaining connections to finish.
pub fn serve_tcp(server: &Arc<Server>, addr: impl ToSocketAddrs) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    // Polling accept: a blocking accept could not observe a shutdown requested
    // on an already-open connection.
    listener.set_nonblocking(true)?;
    eprintln!("repro serve: listening on {}", listener.local_addr()?);
    let stop = Arc::new(AtomicBool::new(false));
    let mut connections = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let server = Arc::clone(server);
                let stop = Arc::clone(&stop);
                connections.push(std::thread::spawn(move || {
                    if let Ok(true) = handle_tcp_connection(&server, stream) {
                        stop.store(true, Ordering::Release);
                    }
                }));
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                connections.retain(|c| !c.is_finished());
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            Err(err) => return Err(err),
        }
    }
    for connection in connections {
        let _ = connection.join();
    }
    Ok(())
}

fn handle_tcp_connection(server: &Arc<Server>, stream: TcpStream) -> std::io::Result<bool> {
    // A silent peer must not pin this connection thread forever; the timeout
    // surfaces in `serve_connection` as an `error` event plus a clean close.
    stream.set_read_timeout(Some(TCP_READ_TIMEOUT))?;
    let reader = BufReader::new(stream.try_clone()?);
    let writer: SharedWriter = Arc::new(Mutex::new(stream));
    serve_connection(server, reader, writer)
}

/// Runs one complete in-memory exchange against `server`: feeds `input` (one
/// request per line) through [`serve_connection`] and returns the emitted
/// NDJSON output. The backbone of the smoke tests and the `server-throughput`
/// bench.
pub fn run_exchange(server: &Arc<Server>, input: &str) -> String {
    let out = Arc::new(Mutex::new(Vec::<u8>::new()));
    let writer: SharedWriter = Arc::clone(&out) as SharedWriter;
    serve_connection(server, std::io::Cursor::new(input.to_string()), writer)
        .expect("in-memory exchange cannot fail on IO");
    let bytes = out.lock().expect("output lock").clone();
    String::from_utf8(bytes).expect("server output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Events of one exchange, parsed line by line.
    fn events(output: &str) -> Vec<JsonValue> {
        output
            .lines()
            .map(|line| JsonValue::parse(line).expect("every output line is one JSON object"))
            .collect()
    }

    fn events_for<'a>(events: &'a [JsonValue], id: &str, kind: &str) -> Vec<&'a JsonValue> {
        events
            .iter()
            .filter(|e| {
                e.get("id").and_then(|v| v.as_str()) == Some(id)
                    && e.get("event").and_then(|v| v.as_str()) == Some(kind)
            })
            .collect()
    }

    /// Recursively zeroes every measured `wall_ns` member so two runs of the
    /// same query compare byte-identically.
    fn zero_wall_ns(value: &mut JsonValue) {
        match value {
            JsonValue::Object(members) => {
                for (key, member) in members {
                    if key == "wall_ns" {
                        *member = JsonValue::number(0.0);
                    } else {
                        zero_wall_ns(member);
                    }
                }
            }
            JsonValue::Array(items) => items.iter_mut().for_each(zero_wall_ns),
            _ => {}
        }
    }

    const MIXED_QUERY: &str = r#"{"protocols":["raft","pbft"],"nodes":[4,7],"fault_probs":[0.01,0.05],"samples":20000,"seed":7,"cells":[{"label":"pq","model":{"persistence_quorum":{"quorum":[0,1,2]}},"deployment":{"uniform_crash":{"n":8,"p":0.02}}}],"repairable_cells":[{"label":"repairable-5","n":5,"lambda":1e-4,"mu":0.1,"tolerated_failures":2}]}"#;

    /// Builds the same query through the library front door.
    fn mixed_query_library() -> ParsedQuery {
        parse_query(&JsonValue::parse(MIXED_QUERY).unwrap()).expect("fixture parses")
    }

    #[test]
    fn streamed_cells_reassemble_into_the_one_shot_report() {
        let server = Arc::new(Server::new());
        let input = format!(
            "{{\"id\":\"q1\",\"op\":\"query\",\"query\":{MIXED_QUERY}}}\n{{\"id\":\"bye\",\"op\":\"shutdown\"}}\n"
        );
        let output = run_exchange(&server, &input);
        let events = events(&output);

        // One-shot reference run of the identical query on a fresh session.
        let reference = AnalysisSession::new()
            .run(&mixed_query_library().query)
            .expect("reference run succeeds");
        let expected = reference.to_json_value();
        let expected_cells = expected.get("cells").unwrap().as_array().unwrap();
        let expected_trajectories = expected.get("trajectories").unwrap().as_array().unwrap();

        let done = events_for(&events, "q1", "done");
        assert_eq!(done.len(), 1, "exactly one done event: {output}");
        assert_eq!(
            done[0].get("cells").unwrap().as_f64().unwrap() as usize,
            expected_cells.len()
        );
        assert!(done[0].get("wall_ms").unwrap().as_f64().unwrap() > 0.0);

        let cell_events = events_for(&events, "q1", "cell");
        assert_eq!(cell_events.len(), expected_cells.len());
        let mut seen = vec![false; expected_cells.len()];
        for event in cell_events {
            let index = event.get("index").unwrap().as_f64().unwrap() as usize;
            assert!(
                !std::mem::replace(&mut seen[index], true),
                "index {index} emitted twice"
            );
            let mut streamed = event.get("cell").unwrap().clone();
            let mut expected_cell = expected_cells[index].clone();
            zero_wall_ns(&mut streamed);
            zero_wall_ns(&mut expected_cell);
            // Byte-identical serialization, not just structural equality.
            assert_eq!(
                streamed.to_compact_string(),
                expected_cell.to_compact_string(),
                "cell {index} differs from the one-shot run"
            );
        }

        let trajectory_events = events_for(&events, "q1", "trajectory");
        assert_eq!(trajectory_events.len(), expected_trajectories.len());
        for event in trajectory_events {
            let index = event.get("index").unwrap().as_f64().unwrap() as usize;
            assert_eq!(
                event.get("trajectory").unwrap().to_compact_string(),
                expected_trajectories[index].to_compact_string()
            );
        }

        // The shutdown acknowledgment is the last line (drain before ack).
        let last = events.last().unwrap();
        assert_eq!(last.get("event").unwrap().as_str(), Some("shutdown"));
        assert_eq!(last.get("id").unwrap().as_str(), Some("bye"));
    }

    #[test]
    fn concurrent_queries_all_complete_and_match() {
        let server = Arc::new(Server::new());
        // Two copies of the same plan plus a distinct one, all submitted before
        // any finishes; the shared cache must not corrupt either result.
        let other =
            r#"{"protocols":["raft"],"nodes":[9],"fault_probs":[0.02],"samples":30000,"seed":11}"#;
        let input = format!(
            "{{\"id\":\"a\",\"op\":\"query\",\"query\":{MIXED_QUERY}}}\n\
             {{\"id\":\"b\",\"op\":\"query\",\"query\":{other}}}\n\
             {{\"id\":\"c\",\"op\":\"query\",\"query\":{MIXED_QUERY}}}\n\
             {{\"id\":\"bye\",\"op\":\"shutdown\"}}\n"
        );
        let output = run_exchange(&server, &input);
        let events = events(&output);
        for id in ["a", "b", "c"] {
            assert_eq!(
                events_for(&events, id, "done").len(),
                1,
                "query {id}: {output}"
            );
            assert!(
                events_for(&events, id, "error").is_empty(),
                "query {id} errored"
            );
        }
        // The identical plans a and c stream byte-identical cells (the cache
        // shares their scratch; determinism survives the interleaving).
        let collect = |id: &str| -> Vec<String> {
            let mut cells: Vec<(usize, String)> = events_for(&events, id, "cell")
                .iter()
                .map(|e| {
                    let mut cell = e.get("cell").unwrap().clone();
                    zero_wall_ns(&mut cell);
                    (
                        e.get("index").unwrap().as_f64().unwrap() as usize,
                        cell.to_compact_string(),
                    )
                })
                .collect();
            cells.sort();
            cells.into_iter().map(|(_, cell)| cell).collect()
        };
        assert_eq!(collect("a"), collect("c"));
    }

    #[test]
    fn stats_request_reports_cache_counters_and_wall_time() {
        let server = Arc::new(Server::new());
        let input = format!(
            "{{\"id\":\"q\",\"op\":\"query\",\"query\":{MIXED_QUERY}}}\n\
             {{\"id\":\"bye\",\"op\":\"shutdown\"}}\n"
        );
        run_exchange(&server, &input);
        // The connection drained before returning, so stats on a second
        // connection see the completed plan.
        let output = run_exchange(&server, "{\"id\":\"s\",\"op\":\"stats\"}\n");
        let events = events(&output);
        let stats = events_for(&events, "s", "stats");
        assert_eq!(stats.len(), 1);
        let cache = stats[0].get("cache").unwrap();
        assert!(cache.get("misses").unwrap().as_f64().unwrap() > 0.0);
        assert!(cache.get("entries").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(
            stats[0].get("queries_completed").unwrap().as_f64().unwrap(),
            1.0
        );
        assert!(
            stats[0]
                .get("plan_wall_ms")
                .unwrap()
                .get("total")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
        // A repeated identical query is the dominant server workload: it must
        // hit the warm cache.
        run_exchange(
            &server,
            &format!("{{\"id\":\"q2\",\"op\":\"query\",\"query\":{MIXED_QUERY}}}\n"),
        );
        assert!(server.session().cache_stats().hits > 0);
    }

    #[test]
    fn oversized_request_lines_error_and_close_cleanly() {
        let server = Arc::new(Server::new());
        // A request line one byte over the cap, with a well-formed query queued
        // behind it: the oversized line produces an `error` event and closes the
        // connection — the trailing request is never read.
        let mut input = String::new();
        input.push_str("{\"id\":\"big\",\"op\":\"query\",\"query\":{\"pad\":\"");
        input.push_str(&"x".repeat(MAX_REQUEST_LINE_BYTES + 1 - input.len()));
        input.push_str("\nafter-the-close not json\n");
        let output = run_exchange(&server, &input);
        let emitted = events(&output);
        assert_eq!(emitted.len(), 1, "exactly one event, got: {output}");
        assert_eq!(
            emitted[0].get("event").and_then(|v| v.as_str()),
            Some("error")
        );
        let message = emitted[0]
            .get("message")
            .and_then(|v| v.as_str())
            .expect("error events carry a message");
        assert!(message.contains("exceeds"), "{message}");
        // A line at exactly the cap is still served (the error it draws is the
        // parser's, not the reader's — proving the read path let it through).
        let mut exact = String::from("{\"id\":\"fits\",\"op\":\"nope\"");
        exact.push_str(&" ".repeat(MAX_REQUEST_LINE_BYTES - exact.len() - 1));
        exact.push('}');
        assert_eq!(exact.len(), MAX_REQUEST_LINE_BYTES);
        exact.push('\n');
        let output = run_exchange(&server, &exact);
        let emitted = events(&output);
        assert_eq!(emitted.len(), 1);
        assert_eq!(
            emitted[0].get("id").and_then(|v| v.as_str()),
            Some("fits"),
            "{output}"
        );
    }

    /// A reader that yields some lines, then fails like a TCP read timeout.
    struct TimingOutReader {
        data: std::io::Cursor<Vec<u8>>,
        timed_out: bool,
    }

    impl std::io::Read for TimingOutReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.data.read(buf)?;
            if n == 0 {
                if self.timed_out {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WouldBlock,
                        "simulated read timeout",
                    ));
                }
                self.timed_out = true;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "simulated read timeout",
                ));
            }
            Ok(n)
        }
    }

    #[test]
    fn read_timeouts_error_and_close_cleanly() {
        // A connection that answers one request and then goes silent past the
        // read timeout: the timeout becomes an `error` event and a clean close
        // (Ok(false) — not an IO failure, not a shutdown), after the completed
        // query's events have all streamed.
        let server = Arc::new(Server::new());
        let reader = BufReader::new(TimingOutReader {
            data: std::io::Cursor::new(
                b"{\"id\":\"q\",\"op\":\"query\",\"query\":{\"protocols\":[\"raft\"],\"nodes\":[3],\"fault_probs\":[0.01]}}\n"
                    .to_vec(),
            ),
            timed_out: false,
        });
        let out = Arc::new(Mutex::new(Vec::<u8>::new()));
        let writer: SharedWriter = Arc::clone(&out) as SharedWriter;
        let shutdown =
            serve_connection(&server, reader, writer).expect("a read timeout is not an IO failure");
        assert!(!shutdown);
        let bytes = out.lock().expect("output lock").clone();
        let output = String::from_utf8(bytes).expect("UTF-8 output");
        let events = events(&output);
        assert_eq!(events_for(&events, "q", "done").len(), 1, "{output}");
        let timeouts: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("event").and_then(|v| v.as_str()) == Some("error")
                    && e.get("message")
                        .and_then(|v| v.as_str())
                        .is_some_and(|m| m.contains("timed out"))
            })
            .collect();
        assert_eq!(timeouts.len(), 1, "{output}");
    }

    #[test]
    fn malformed_requests_produce_error_events_not_crashes() {
        let server = Arc::new(Server::new());
        let input = "not json at all\n\
                     {\"id\":\"x\",\"op\":\"frobnicate\"}\n\
                     {\"id\":\"y\",\"op\":\"query\"}\n\
                     {\"id\":\"z\",\"op\":\"query\",\"query\":{\"protocols\":[\"raft\"],\"nodes\":[3],\"fault_probs\":[0.01],\"unknown_axis\":1}}\n\
                     {\"id\":\"w\",\"op\":\"query\",\"query\":{\"protocols\":[{\"raft_flexible\":{\"q_per\":9,\"q_vc\":9}}],\"nodes\":[3],\"fault_probs\":[0.01]}}\n\
                     {\"id\":\"p\",\"op\":\"query\",\"query\":{\"protocols\":[\"raft\"],\"nodes\":[3],\"fault_probs\":[0.01],\"posterior\":{\"draws\":0,\"alpha\":3.5,\"beta\":60}}}\n\
                     {\"id\":\"h\",\"op\":\"query\",\"query\":{\"protocols\":[\"raft\"],\"nodes\":[3],\"fault_probs\":[0.01],\"posterior\":{\"draws\":8,\"alpha\":-1,\"beta\":60}}}\n\
                     {\"id\":\"ok\",\"op\":\"query\",\"query\":{\"protocols\":[\"raft\"],\"nodes\":[3],\"fault_probs\":[0.01]}}\n\
                     {\"id\":\"bye\",\"op\":\"shutdown\"}\n";
        let output = run_exchange(&server, input);
        let events = events(&output);
        // Six failures, each its own error event...
        assert_eq!(events_for(&events, "x", "error").len(), 1);
        assert_eq!(events_for(&events, "y", "error").len(), 1);
        assert_eq!(events_for(&events, "z", "error").len(), 1);
        assert_eq!(events_for(&events, "w", "error").len(), 1, "{output}");
        // Malformed posterior budgets reach plan-time validation instead of
        // panicking a worker: zero draws and bad hyperparameters each draw a
        // diagnosable error event.
        for (id, needle) in [("p", "draws"), ("h", "hyperparameters")] {
            let errors = events_for(&events, id, "error");
            assert_eq!(errors.len(), 1, "{output}");
            let message = errors[0].get("message").unwrap().as_str().unwrap();
            assert!(message.contains(needle), "{message}");
        }
        // ...and the well-formed query after them still runs to completion.
        assert_eq!(events_for(&events, "ok", "done").len(), 1);
        assert_eq!(events_for(&events, "ok", "cell").len(), 1);
    }

    #[test]
    fn posterior_queries_stream_epistemic_cells() {
        let server = Arc::new(Server::new());
        let query = r#"{"protocols":["raft"],"nodes":[5],"fault_probs":[0.05],"seed":5,"posterior":{"draws":16,"alpha":3.5,"beta":60.0,"level":0.9}}"#;
        let input = format!(
            "{{\"id\":\"q\",\"op\":\"query\",\"query\":{query}}}\n{{\"id\":\"bye\",\"op\":\"shutdown\"}}\n"
        );
        let output = run_exchange(&server, &input);
        let emitted = events(&output);
        let cells = events_for(&emitted, "q", "cell");
        assert_eq!(cells.len(), 1, "{output}");
        let streamed = cells[0].get("cell").unwrap();
        let epistemic = streamed
            .get("epistemic")
            .expect("second-order cells carry an epistemic member");
        let lower = epistemic.get("epistemic_lower").unwrap().as_f64().unwrap();
        let upper = epistemic.get("epistemic_upper").unwrap().as_f64().unwrap();
        assert!(lower < upper, "epistemic interval must be non-degenerate");
        assert_eq!(
            epistemic.get("draws").unwrap().as_array().unwrap().len(),
            16
        );
        // Byte-identical to the one-shot library run of the same query.
        let reference = AnalysisSession::new()
            .run(
                &parse_query(&JsonValue::parse(query).unwrap())
                    .expect("fixture parses")
                    .query,
            )
            .expect("reference run succeeds")
            .to_json_value();
        let mut expected = reference.get("cells").unwrap().as_array().unwrap()[0].clone();
        let mut streamed = streamed.clone();
        zero_wall_ns(&mut streamed);
        zero_wall_ns(&mut expected);
        assert_eq!(
            streamed.to_compact_string(),
            expected.to_compact_string(),
            "streamed second-order cell differs from the one-shot run"
        );
        // The stats surface counts the second-order work.
        let stats_output = run_exchange(&server, "{\"id\":\"s\",\"op\":\"stats\"}\n");
        let stats_events = events(&stats_output);
        let stats = events_for(&stats_events, "s", "stats");
        assert_eq!(stats.len(), 1);
        assert_eq!(
            stats[0].get("epistemic_cells").unwrap().as_f64().unwrap(),
            1.0
        );
        assert_eq!(
            stats[0].get("posterior_draws").unwrap().as_f64().unwrap(),
            16.0
        );
    }

    #[test]
    fn tcp_front_end_speaks_the_same_protocol() {
        use std::io::{BufRead, BufReader, Write};
        let server = Arc::new(Server::new());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let addr = listener.local_addr().unwrap();
        let serve = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let (stream, _) = listener.accept().expect("client connects");
                handle_tcp_connection(&server, stream).expect("connection serves")
            })
        };
        let mut client = TcpStream::connect(addr).expect("connect");
        client
            .write_all(
                b"{\"id\":\"q\",\"op\":\"query\",\"query\":{\"protocols\":[\"raft\"],\"nodes\":[5],\"fault_probs\":[0.02]}}\n{\"id\":\"bye\",\"op\":\"shutdown\"}\n",
            )
            .unwrap();
        let mut lines = Vec::new();
        for line in BufReader::new(client.try_clone().unwrap()).lines() {
            lines.push(line.unwrap());
        }
        assert!(serve.join().unwrap(), "connection reported shutdown");
        let events: Vec<JsonValue> = lines.iter().map(|l| JsonValue::parse(l).unwrap()).collect();
        assert_eq!(events_for(&events, "q", "cell").len(), 1);
        assert_eq!(events_for(&events, "q", "done").len(), 1);
        assert_eq!(
            events.last().unwrap().get("event").unwrap().as_str(),
            Some("shutdown")
        );
    }

    #[test]
    fn parse_query_covers_every_axis() {
        let spec = JsonValue::parse(
            r#"{"protocols":["raft",{"raft_flexible":{"q_per":4,"q_vc":3}},"pbft"],
                "nodes":[4,7],
                "fault_probs":{"logspace":{"lo":1e-4,"hi":1e-1,"count":4}},
                "faults":{"mixed":{"byzantine":0.001}},
                "correlations":["independent",{"cluster_shock":{"probability":0.01}},{"rack_shock":{"racks":3,"probability":0.02}}],
                "samples":5000,"seed":9,"samples_sweep":[1000,5000],
                "validate":false,
                "environments":["clean","gray-primary"],
                "metrics":{"safe":true,"live":false,"safe_and_live":true},
                "time_axis":{"horizon_hours":20000,"step_hours":5000,"target_nines":3.0},
                "repairable_cells":[{"label":"r","n":5,"lambda":1e-4,"mu":0.1,"tolerated_failures":2}]}"#,
        )
        .unwrap();
        let parsed = parse_query(&spec).expect("full-axis query parses");
        // 3 protocols x 2 nodes x 4 probs x 3 correlations x 2 sample budgets
        // x 2 fault environments.
        assert_eq!(parsed.query.cell_count(), 288);
        assert_eq!(parsed.query.trajectory_count(), 1);
        assert!(!parsed.metrics.live && parsed.metrics.safe);
    }

    #[test]
    fn parse_query_rejects_unknown_keys_and_bad_values() {
        for (bad, needle) in [
            (
                r#"{"protocols":["raft"],"nodes":[3],"fault_probs":[0.01],"typo":1}"#,
                "unknown query key",
            ),
            (
                r#"{"protocols":["paxos"],"nodes":[3],"fault_probs":[0.01]}"#,
                "unknown protocol",
            ),
            (
                r#"{"protocols":["raft"],"nodes":[3],"fault_probs":[0.01],"faults":"gamma-ray"}"#,
                "unknown fault axis",
            ),
            (r#"{"protocols":["raft"],"nodes":[3]}"#, "zero cells"),
            (
                r#"{"protocols":["raft"],"nodes":[3],"fault_probs":{"logspace":{"lo":0.1,"hi":0.001,"count":3}}}"#,
                "logspace",
            ),
            (
                r#"{"cells":[{"label":"pq","model":{"persistence_quorum":{"quorum":[0,0]}},"deployment":{"uniform_crash":{"n":4,"p":0.1}}}]}"#,
                "repeated",
            ),
            (
                r#"{"cells":[{"label":"pq","model":{"persistence_quorum":{"quorum":[9]}},"deployment":{"uniform_crash":{"n":4,"p":0.1}}}]}"#,
                "out of range",
            ),
            (
                r#"{"cells":[{"label":"c","model":"raft","deployment":{"uniform_crash":{"n":4,"p":1.5}}}]}"#,
                "probability",
            ),
            (
                r#"{"repairable_cells":[{"label":"r","n":3,"lambda":1e-4,"mu":0.1,"tolerated_failures":3}]}"#,
                "tolerated_failures",
            ),
            (
                r#"{"protocols":["raft"],"nodes":[3],"fault_probs":[0.01],"environments":["solar-flare"]}"#,
                "unknown environment",
            ),
            (
                r#"{"protocols":["raft"],"nodes":[3],"fault_probs":[0.01],"environments":[7]}"#,
                "must be strings",
            ),
            (
                r#"{"protocols":["raft"],"nodes":[3],"fault_probs":[0.01],"posterior":5}"#,
                "must be an object",
            ),
            (
                r#"{"protocols":["raft"],"nodes":[3],"fault_probs":[0.01],"posterior":{"draws":8,"alpha":3.5}}"#,
                "missing 'beta'",
            ),
            (
                r#"{"protocols":["raft"],"nodes":[3],"fault_probs":[0.01],"posterior":{"draws":8,"alpha":3.5,"beta":60,"typo":1}}"#,
                "unknown posterior key",
            ),
            (
                r#"{"protocols":["raft"],"nodes":[3],"fault_probs":[0.01],"posterior":{"draws":8,"alpha":3.5,"beta":60,"level":"high"}}"#,
                "must be a number",
            ),
        ] {
            let err = parse_query(&JsonValue::parse(bad).unwrap())
                .err()
                .unwrap_or_else(|| panic!("{bad} should be rejected"));
            assert!(err.contains(needle), "error for {bad} was '{err}'");
        }
    }

    #[test]
    fn parse_optimize_covers_every_knob() {
        let request = JsonValue::parse(
            r#"{"space":{"instances":[{"name":"spot","fault_probability":0.08,"byzantine_probability":0.001,"hourly_cost":0.10}],
                         "nodes":[3,5],
                         "domains":{"racks":4,"shock_probability":0.02},
                         "placements":["same-rack","cross-rack"],
                         "target":{"quorum_size":2}},
                "config":{"target_nines":3.5,"screen_samples":5000,"refine_samples":20000,"seed":9,
                          "rare_event_threshold":1e-7,
                          "repair":{"mttr_hours":12.0,"mission_hours":8766.0}}}"#,
        )
        .expect("fixture parses");
        let parsed = parse_optimize(&request).expect("fixture is a valid request");
        assert_eq!(parsed.space.instances.len(), 1);
        assert_eq!(parsed.space.nodes, vec![3, 5]);
        assert_eq!(parsed.space.placements.len(), 2);
        assert!(matches!(
            parsed.space.target,
            TargetSpec::PersistenceQuorum { quorum_size: 2 }
        ));
        assert!((parsed.config.target_nines - 3.5).abs() < 1e-12);
        assert_eq!(parsed.config.screen_samples, 5_000);
        assert_eq!(parsed.config.refine_samples, 20_000);
        assert!(parsed.config.repair.is_some());
        // A protocol target parses through the query-side protocol grammar.
        let request = JsonValue::parse(
            r#"{"space":{"instances":[{"name":"a","fault_probability":0.01,"hourly_cost":1.0}],
                         "nodes":[5],"target":{"protocol":{"raft_flexible":{"q_per":2,"q_vc":4}}}},
                "config":{"target_nines":2.0}}"#,
        )
        .unwrap();
        let parsed = parse_optimize(&request).expect("flexible-quorum target parses");
        assert!(matches!(
            parsed.space.target,
            TargetSpec::Protocol(ProtocolSpec::RaftFlexible { q_per: 2, q_vc: 4 })
        ));
    }

    #[test]
    fn parse_optimize_rejects_unknown_keys_and_bad_values() {
        let valid_space = r#"{"instances":[{"name":"a","fault_probability":0.01,"hourly_cost":1.0}],"nodes":[3],"target":{"protocol":"raft"}}"#;
        for (bad, needle) in [
            (
                format!(r#"{{"space":{valid_space}}}"#),
                "missing 'config'".to_string(),
            ),
            (
                format!(r#"{{"space":{valid_space},"config":{{"target_nines":3.0,"scren_samples":1}}}}"#),
                "unknown config key 'scren_samples'".to_string(),
            ),
            (
                format!(r#"{{"space":{valid_space},"config":{{"target_nines":-1.0}}}}"#),
                "target_nines".to_string(),
            ),
            (
                format!(r#"{{"space":{valid_space},"config":{{"target_nines":3.0,"rare_event_threshold":0.0}}}}"#),
                "rare_event_threshold".to_string(),
            ),
            (
                format!(r#"{{"space":{valid_space},"config":{{"target_nines":3.0,"repair":{{"mttr_hours":12.0,"mission_hours":0.0}}}}}}"#),
                "positive".to_string(),
            ),
            (
                r#"{"space":{"instances":[{"name":"a","fault_probability":1.5,"hourly_cost":1.0}],"nodes":[3],"target":{"protocol":"raft"}},"config":{"target_nines":3.0}}"#.to_string(),
                "[0, 1]".to_string(),
            ),
            (
                r#"{"space":{"instances":[{"name":"a","fault_probability":0.01,"hourly_cost":1.0,"color":"red"}],"nodes":[3],"target":{"protocol":"raft"}},"config":{"target_nines":3.0}}"#.to_string(),
                "unknown instance key 'color'".to_string(),
            ),
            (
                r#"{"space":{"instances":[],"nodes":[3],"racks":4,"target":{"protocol":"raft"}},"config":{"target_nines":3.0}}"#.to_string(),
                "unknown space key 'racks'".to_string(),
            ),
            (
                r#"{"space":{"instances":[],"nodes":[3],"placements":["diagonal"],"target":{"protocol":"raft"}},"config":{"target_nines":3.0}}"#.to_string(),
                "same-rack".to_string(),
            ),
            (
                r#"{"space":{"instances":[],"nodes":[3],"target":{"tier":"gold"}},"config":{"target_nines":3.0}}"#.to_string(),
                "'protocol' or 'quorum_size'".to_string(),
            ),
            (
                r#"{"space":{"instances":[],"nodes":[3]},"config":{"target_nines":3.0}}"#.to_string(),
                "missing 'target'".to_string(),
            ),
        ] {
            let err = parse_optimize(&JsonValue::parse(&bad).unwrap())
                .err()
                .unwrap_or_else(|| panic!("{bad} should be rejected"));
            assert!(err.contains(&needle), "error for {bad} was '{err}'");
        }
    }
}
