//! The network model: latency distributions, loss, partitions, and per-link overrides.

use rand::rngs::StdRng;
use rand::Rng;

use crate::time::SimTime;

/// How one-way message latencies are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayDistribution {
    /// Uniform on `[min_latency, max_latency]` — the LAN-style default.
    Uniform,
    /// Bounded Pareto, the WAN-style heavy tail: latencies start at `min_latency`
    /// (the scale), decay with shape `alpha`, and are capped at `cap`. Smaller
    /// `alpha` means a heavier tail; `alpha` around 1–2 matches measured wide-area
    /// RTT tails where the odd message takes 10–50x the median. `max_latency` is
    /// ignored under this distribution.
    Pareto {
        /// Tail shape (> 0); smaller is heavier.
        alpha: f64,
        /// Hard cap on a single latency sample.
        cap: SimTime,
    },
}

/// Directed link quality override: extra loss and delay applied to one `from → to`
/// direction only, on top of the base network. This is how asymmetric degradation —
/// a link lossy one way, clean the other — is expressed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkQuality {
    /// Probability of losing each message on this directed link (replaces the base
    /// `drop_probability` for the link).
    pub drop_probability: f64,
    /// Extra one-way delay added to every surviving message on this directed link.
    pub extra_delay: SimTime,
}

impl LinkQuality {
    /// A lossy link: the given drop probability, no extra delay.
    pub fn lossy(drop_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_probability),
            "drop probability must be in [0,1]"
        );
        Self {
            drop_probability,
            extra_delay: SimTime::from_micros(0),
        }
    }

    /// A slow link: the given extra delay, no added loss.
    pub fn delayed(extra_delay: SimTime) -> Self {
        Self {
            drop_probability: 0.0,
            extra_delay,
        }
    }
}

/// Configuration of the simulated network.
///
/// Latency is drawn from `delay` (uniform `[min_latency, max_latency]` by default, or
/// a heavy-tailed bounded Pareto) per message; messages are dropped independently with
/// `drop_probability`; when partition groups are set, messages only flow between nodes
/// in the same group; directed per-link overrides replace the drop probability and add
/// delay for individual `from → to` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Minimum one-way latency.
    pub min_latency: SimTime,
    /// Maximum one-way latency.
    pub max_latency: SimTime,
    /// Independent probability of losing each message.
    pub drop_probability: f64,
    /// Latency distribution.
    pub delay: DelayDistribution,
    /// Partition groups; `None` means fully connected.
    partition_groups: Option<Vec<Vec<usize>>>,
    /// Directed per-link overrides, keyed by `(from, to)`; last write per key wins.
    link_overrides: Vec<(usize, usize, LinkQuality)>,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            min_latency: SimTime::from_micros(100),
            max_latency: SimTime::from_micros(1_000),
            drop_probability: 0.0,
            delay: DelayDistribution::Uniform,
            partition_groups: None,
            link_overrides: Vec::new(),
        }
    }
}

impl NetworkConfig {
    /// A LAN-like network: 0.1–1 ms latency, no loss.
    pub fn lan() -> Self {
        Self::default()
    }

    /// A WAN-like network: 20–80 ms latency, light loss.
    pub fn wan() -> Self {
        Self {
            min_latency: SimTime::from_millis(20),
            max_latency: SimTime::from_millis(80),
            drop_probability: 0.001,
            ..Self::default()
        }
    }

    /// A WAN with a heavy-tailed delay distribution: bounded Pareto starting at
    /// 20 ms with shape 1.5, capped at 2 s, and light loss. The median latency is
    /// close to [`NetworkConfig::wan`]'s floor, but the tail routinely produces
    /// 10–50x stragglers — the regime where timeout-based failure detectors
    /// misclassify slow nodes as dead.
    pub fn wan_heavy_tailed() -> Self {
        Self {
            min_latency: SimTime::from_millis(20),
            max_latency: SimTime::from_millis(80),
            drop_probability: 0.001,
            delay: DelayDistribution::Pareto {
                alpha: 1.5,
                cap: SimTime::from_secs(2),
            },
            ..Self::default()
        }
    }

    /// Sets the latency range.
    pub fn with_latency(mut self, min: SimTime, max: SimTime) -> Self {
        assert!(max >= min, "max latency must be >= min latency");
        self.min_latency = min;
        self.max_latency = max;
        self
    }

    /// Sets the message-drop probability.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0,1]"
        );
        self.drop_probability = p;
        self
    }

    /// Sets the latency distribution.
    pub fn with_delay_distribution(mut self, delay: DelayDistribution) -> Self {
        if let DelayDistribution::Pareto { alpha, cap } = delay {
            assert!(
                alpha > 0.0 && alpha.is_finite(),
                "Pareto shape must be positive and finite"
            );
            assert!(cap >= self.min_latency, "Pareto cap must be >= min latency");
        }
        self.delay = delay;
        self
    }

    /// Partitions the network into the given groups: messages are only delivered between
    /// nodes of the same group. Nodes not listed in any group are isolated.
    pub fn with_partition(mut self, groups: Vec<Vec<usize>>) -> Self {
        self.partition_groups = Some(groups);
        self
    }

    /// Heals any partition.
    pub fn healed(mut self) -> Self {
        self.partition_groups = None;
        self
    }

    /// Installs (or replaces) a directed `from → to` link override.
    pub fn with_link_override(mut self, from: usize, to: usize, quality: LinkQuality) -> Self {
        self.set_link_override(from, to, quality);
        self
    }

    /// In-place form of [`NetworkConfig::with_link_override`].
    pub fn set_link_override(&mut self, from: usize, to: usize, quality: LinkQuality) {
        if let Some(slot) = self
            .link_overrides
            .iter_mut()
            .find(|(f, t, _)| *f == from && *t == to)
        {
            slot.2 = quality;
        } else {
            self.link_overrides.push((from, to, quality));
        }
    }

    /// Removes every per-link override.
    pub fn clear_link_overrides(&mut self) {
        self.link_overrides.clear();
    }

    /// The directed override for `from → to`, if any.
    pub fn link_override(&self, from: usize, to: usize) -> Option<LinkQuality> {
        self.link_overrides
            .iter()
            .find(|(f, t, _)| *f == from && *t == to)
            .map(|(_, _, q)| *q)
    }

    /// Whether a message from `from` to `to` can currently be delivered.
    pub fn connected(&self, from: usize, to: usize) -> bool {
        match &self.partition_groups {
            None => true,
            Some(groups) => groups.iter().any(|g| g.contains(&from) && g.contains(&to)),
        }
    }

    /// Samples a one-way latency for a message from the base distribution.
    pub fn sample_latency(&self, rng: &mut StdRng) -> SimTime {
        match self.delay {
            DelayDistribution::Uniform => {
                let lo = self.min_latency.as_micros();
                let hi = self.max_latency.as_micros();
                if hi == lo {
                    return self.min_latency;
                }
                SimTime::from_micros(rng.gen_range(lo..=hi))
            }
            DelayDistribution::Pareto { alpha, cap } => {
                // Bounded Pareto: scale / (1-u)^(1/alpha), clamped to the cap. The
                // scale is the minimum latency (floored at 1 µs so a zero-latency
                // config still produces positive samples).
                let scale = self.min_latency.as_micros().max(1) as f64;
                let u: f64 = rng.gen();
                let raw = scale * (1.0 - u).powf(-1.0 / alpha);
                let capped = raw.min(cap.as_micros() as f64);
                SimTime::from_micros(capped as u64)
            }
        }
    }

    /// Samples a one-way latency for a message on the directed link `from → to`:
    /// the base distribution plus any override's extra delay.
    pub fn sample_link_latency(&self, from: usize, to: usize, rng: &mut StdRng) -> SimTime {
        let base = self.sample_latency(rng);
        match self.link_override(from, to) {
            Some(q) => base + q.extra_delay,
            None => base,
        }
    }

    /// Samples whether a message is dropped (base drop probability).
    pub fn sample_drop(&self, rng: &mut StdRng) -> bool {
        self.drop_probability > 0.0 && rng.gen::<f64>() < self.drop_probability
    }

    /// Samples whether a message on the directed link `from → to` is dropped: an
    /// override's drop probability replaces the base one for that direction.
    pub fn sample_link_drop(&self, from: usize, to: usize, rng: &mut StdRng) -> bool {
        let p = self
            .link_override(from, to)
            .map_or(self.drop_probability, |q| q.drop_probability);
        p > 0.0 && rng.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_network_is_fully_connected_and_lossless() {
        let net = NetworkConfig::default();
        assert!(net.connected(0, 5));
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!net.sample_drop(&mut rng));
    }

    #[test]
    fn latency_samples_stay_in_range() {
        let net =
            NetworkConfig::default().with_latency(SimTime::from_millis(2), SimTime::from_millis(4));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let l = net.sample_latency(&mut rng);
            assert!(l >= SimTime::from_millis(2) && l <= SimTime::from_millis(4));
        }
    }

    #[test]
    fn degenerate_latency_range_is_constant() {
        let net =
            NetworkConfig::default().with_latency(SimTime::from_millis(3), SimTime::from_millis(3));
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(net.sample_latency(&mut rng), SimTime::from_millis(3));
    }

    #[test]
    fn drop_probability_is_respected_statistically() {
        let net = NetworkConfig::default().with_drop_probability(0.25);
        let mut rng = StdRng::seed_from_u64(4);
        let drops = (0..10_000).filter(|_| net.sample_drop(&mut rng)).count();
        let frac = drops as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "observed {frac}");
    }

    #[test]
    fn partitions_block_cross_group_traffic() {
        let net = NetworkConfig::default().with_partition(vec![vec![0, 1], vec![2, 3, 4]]);
        assert!(net.connected(0, 1));
        assert!(net.connected(3, 4));
        assert!(!net.connected(1, 2));
        // Unlisted nodes are isolated.
        assert!(!net.connected(0, 5));
        let healed = net.healed();
        assert!(healed.connected(1, 2));
    }

    #[test]
    fn wan_profile_has_higher_latency_than_lan() {
        assert!(NetworkConfig::wan().min_latency > NetworkConfig::lan().max_latency);
    }

    #[test]
    fn pareto_latencies_respect_scale_and_cap_and_have_a_heavy_tail() {
        let net = NetworkConfig::wan_heavy_tailed();
        let cap = SimTime::from_secs(2);
        let mut rng = StdRng::seed_from_u64(8);
        let mut over_10x = 0usize;
        let n = 20_000;
        for _ in 0..n {
            let l = net.sample_latency(&mut rng);
            assert!(
                l >= net.min_latency && l <= cap,
                "sample {l:?} out of range"
            );
            if l >= SimTime::from_millis(200) {
                over_10x += 1;
            }
        }
        // Pr[X > 10·scale] = 10^-1.5 ≈ 3.2% for alpha = 1.5 — a tail a uniform
        // [20,80] ms distribution produces exactly never.
        let frac = over_10x as f64 / n as f64;
        assert!(frac > 0.01 && frac < 0.08, "tail fraction {frac}");
    }

    #[test]
    fn link_overrides_are_directional_and_replace_base_loss() {
        let net = NetworkConfig::default()
            .with_drop_probability(0.5)
            .with_link_override(0, 1, LinkQuality::lossy(0.0));
        let mut rng = StdRng::seed_from_u64(9);
        // Overridden direction never drops; the reverse keeps the base rate.
        assert!((0..1000).all(|_| !net.sample_link_drop(0, 1, &mut rng)));
        let reverse = (0..1000)
            .filter(|_| net.sample_link_drop(1, 0, &mut rng))
            .count();
        assert!(reverse > 400 && reverse < 600, "observed {reverse}");
    }

    #[test]
    fn link_override_extra_delay_is_added_one_way() {
        let extra = SimTime::from_millis(10);
        let net = NetworkConfig::default()
            .with_latency(SimTime::from_millis(1), SimTime::from_millis(1))
            .with_link_override(2, 3, LinkQuality::delayed(extra));
        let mut rng = StdRng::seed_from_u64(10);
        assert_eq!(
            net.sample_link_latency(2, 3, &mut rng),
            SimTime::from_millis(11)
        );
        assert_eq!(
            net.sample_link_latency(3, 2, &mut rng),
            SimTime::from_millis(1)
        );
    }

    #[test]
    fn link_override_replacement_keeps_last_write() {
        let mut net = NetworkConfig::default().with_link_override(0, 1, LinkQuality::lossy(0.9));
        net.set_link_override(0, 1, LinkQuality::lossy(0.1));
        assert_eq!(net.link_override(0, 1).unwrap().drop_probability, 0.1);
        net.clear_link_overrides();
        assert!(net.link_override(0, 1).is_none());
    }
}
