//! The network model: latency, loss and partitions.

use rand::rngs::StdRng;
use rand::Rng;

use crate::time::SimTime;

/// Configuration of the simulated network.
///
/// Latency is sampled uniformly from `[min_latency, max_latency]` per message; messages
/// are dropped independently with `drop_probability`; when partition groups are set,
/// messages only flow between nodes in the same group.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Minimum one-way latency.
    pub min_latency: SimTime,
    /// Maximum one-way latency.
    pub max_latency: SimTime,
    /// Independent probability of losing each message.
    pub drop_probability: f64,
    /// Partition groups; `None` means fully connected.
    partition_groups: Option<Vec<Vec<usize>>>,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            min_latency: SimTime::from_micros(100),
            max_latency: SimTime::from_micros(1_000),
            drop_probability: 0.0,
            partition_groups: None,
        }
    }
}

impl NetworkConfig {
    /// A LAN-like network: 0.1–1 ms latency, no loss.
    pub fn lan() -> Self {
        Self::default()
    }

    /// A WAN-like network: 20–80 ms latency, light loss.
    pub fn wan() -> Self {
        Self {
            min_latency: SimTime::from_millis(20),
            max_latency: SimTime::from_millis(80),
            drop_probability: 0.001,
            partition_groups: None,
        }
    }

    /// Sets the latency range.
    pub fn with_latency(mut self, min: SimTime, max: SimTime) -> Self {
        assert!(max >= min, "max latency must be >= min latency");
        self.min_latency = min;
        self.max_latency = max;
        self
    }

    /// Sets the message-drop probability.
    pub fn with_drop_probability(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0,1]"
        );
        self.drop_probability = p;
        self
    }

    /// Partitions the network into the given groups: messages are only delivered between
    /// nodes of the same group. Nodes not listed in any group are isolated.
    pub fn with_partition(mut self, groups: Vec<Vec<usize>>) -> Self {
        self.partition_groups = Some(groups);
        self
    }

    /// Heals any partition.
    pub fn healed(mut self) -> Self {
        self.partition_groups = None;
        self
    }

    /// Whether a message from `from` to `to` can currently be delivered.
    pub fn connected(&self, from: usize, to: usize) -> bool {
        match &self.partition_groups {
            None => true,
            Some(groups) => groups.iter().any(|g| g.contains(&from) && g.contains(&to)),
        }
    }

    /// Samples a one-way latency for a message.
    pub fn sample_latency(&self, rng: &mut StdRng) -> SimTime {
        let lo = self.min_latency.as_micros();
        let hi = self.max_latency.as_micros();
        if hi == lo {
            return self.min_latency;
        }
        SimTime::from_micros(rng.gen_range(lo..=hi))
    }

    /// Samples whether a message is dropped.
    pub fn sample_drop(&self, rng: &mut StdRng) -> bool {
        self.drop_probability > 0.0 && rng.gen::<f64>() < self.drop_probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_network_is_fully_connected_and_lossless() {
        let net = NetworkConfig::default();
        assert!(net.connected(0, 5));
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!net.sample_drop(&mut rng));
    }

    #[test]
    fn latency_samples_stay_in_range() {
        let net =
            NetworkConfig::default().with_latency(SimTime::from_millis(2), SimTime::from_millis(4));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let l = net.sample_latency(&mut rng);
            assert!(l >= SimTime::from_millis(2) && l <= SimTime::from_millis(4));
        }
    }

    #[test]
    fn degenerate_latency_range_is_constant() {
        let net =
            NetworkConfig::default().with_latency(SimTime::from_millis(3), SimTime::from_millis(3));
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(net.sample_latency(&mut rng), SimTime::from_millis(3));
    }

    #[test]
    fn drop_probability_is_respected_statistically() {
        let net = NetworkConfig::default().with_drop_probability(0.25);
        let mut rng = StdRng::seed_from_u64(4);
        let drops = (0..10_000).filter(|_| net.sample_drop(&mut rng)).count();
        let frac = drops as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "observed {frac}");
    }

    #[test]
    fn partitions_block_cross_group_traffic() {
        let net = NetworkConfig::default().with_partition(vec![vec![0, 1], vec![2, 3, 4]]);
        assert!(net.connected(0, 1));
        assert!(net.connected(3, 4));
        assert!(!net.connected(1, 2));
        // Unlisted nodes are isolated.
        assert!(!net.connected(0, 5));
        let healed = net.healed();
        assert!(healed.connected(1, 2));
    }

    #[test]
    fn wan_profile_has_higher_latency_than_lan() {
        assert!(NetworkConfig::wan().min_latency > NetworkConfig::lan().max_latency);
    }
}
