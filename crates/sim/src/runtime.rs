//! The simulation event loop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::actor::{Actor, Context};
use crate::fault::{FaultKind, FaultSchedule, NetEventKind};
use crate::network::NetworkConfig;
use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent, TraceStats};

/// What a queued event does when its time comes.
#[derive(Debug)]
enum Payload<M> {
    Deliver { from: usize, to: usize, msg: M },
    Timer { node: usize, tag: u64 },
    Fault { node: usize, kind: FaultKind },
    Net { kind: NetEventKind },
}

/// Stretches a duration by a gray-failure factor. The identity factor is the common
/// case and must stay bit-exact, so it short-circuits before any float arithmetic.
fn stretch(t: SimTime, factor: f64) -> SimTime {
    if factor == 1.0 {
        return t;
    }
    SimTime::from_micros((t.as_micros() as f64 * factor).round() as u64)
}

/// A deterministic discrete-event simulation of `A` actors exchanging messages of type
/// `M` over a configurable network, with optional fault injection.
pub struct Simulation<M, A> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    payloads: Vec<Option<Payload<M>>>,
    nodes: Vec<A>,
    crashed: Vec<bool>,
    byzantine: Vec<bool>,
    slow_factor: Vec<f64>,
    network: NetworkConfig,
    net_rng: StdRng,
    node_rngs: Vec<StdRng>,
    stats: TraceStats,
    trace: Trace,
}

impl<M: Clone, A: Actor<M>> Simulation<M, A> {
    /// Creates a simulation over the given actors and network, seeded for determinism,
    /// and invokes every actor's `on_start`.
    pub fn new(actors: Vec<A>, network: NetworkConfig, seed: u64) -> Self {
        assert!(!actors.is_empty(), "simulation needs at least one node");
        let n = actors.len();
        let mut master = StdRng::seed_from_u64(seed);
        let node_rngs = (0..n)
            .map(|_| StdRng::seed_from_u64(master.gen()))
            .collect();
        let mut sim = Self {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            payloads: Vec::new(),
            nodes: actors,
            crashed: vec![false; n],
            byzantine: vec![false; n],
            slow_factor: vec![1.0; n],
            network,
            net_rng: StdRng::seed_from_u64(master.gen()),
            node_rngs,
            stats: TraceStats::default(),
            trace: Trace::disabled(),
        };
        for i in 0..n {
            sim.invoke(i, |actor, ctx| actor.on_start(ctx));
        }
        sim
    }

    /// Installs a fault schedule (typically before running). Both lanes are queued:
    /// per-node fault events and whole-network events (partitions, heals, link
    /// overrides), so a schedule alone can reconfigure the network mid-run without
    /// any out-of-band `set_network` calls.
    pub fn with_fault_schedule(mut self, schedule: &FaultSchedule) -> Self {
        for event in schedule.events() {
            assert!(
                event.node < self.nodes.len(),
                "fault event node out of range"
            );
            self.push_event(
                event.time,
                Payload::Fault {
                    node: event.node,
                    kind: event.kind,
                },
            );
        }
        for event in schedule.net_events() {
            self.push_event(
                event.time,
                Payload::Net {
                    kind: event.kind.clone(),
                },
            );
        }
        self
    }

    /// Enables event tracing with the given capacity.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace = Trace::bounded(capacity);
        self
    }

    /// Replaces the network configuration (e.g. to create or heal a partition mid-run).
    pub fn set_network(&mut self, network: NetworkConfig) {
        self.network = network;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to a node's actor state.
    pub fn node(&self, id: usize) -> &A {
        &self.nodes[id]
    }

    /// Mutable access to a node's actor state (for test instrumentation).
    pub fn node_mut(&mut self, id: usize) -> &mut A {
        &mut self.nodes[id]
    }

    /// Whether a node is currently crashed.
    pub fn is_crashed(&self, id: usize) -> bool {
        self.crashed[id]
    }

    /// Whether a node has been turned Byzantine by the fault injector.
    pub fn is_byzantine(&self, id: usize) -> bool {
        self.byzantine[id]
    }

    /// The node's current gray-failure stretch factor (1.0 when healthy).
    pub fn slow_factor(&self, id: usize) -> f64 {
        self.slow_factor[id]
    }

    /// Whether a node is currently gray-failed (slowed). Note this is deliberately
    /// *not* part of [`Simulation::correct_nodes`]: a slow node is correct, which is
    /// the whole point of gray failures.
    pub fn is_slowed(&self, id: usize) -> bool {
        self.slow_factor[id] != 1.0
    }

    /// Ids of nodes that are neither crashed nor Byzantine.
    pub fn correct_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| !self.crashed[i] && !self.byzantine[i])
            .collect()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// The recorded event trace (empty unless tracing was enabled).
    pub fn trace_events(&self) -> &[TraceEvent] {
        self.trace.events()
    }

    /// Injects a message from the outside world (e.g. a client) into a node, delivered
    /// after normal network latency.
    pub fn inject(&mut self, to: usize, msg: M) {
        assert!(to < self.nodes.len(), "destination out of range");
        let latency = self.network.sample_latency(&mut self.net_rng);
        self.stats.messages_sent += 1;
        // A gray-failed destination receives late, like every message it handles.
        let at = self.now + stretch(latency, self.slow_factor[to]);
        // External clients are node-less; use the destination as the nominal sender.
        self.push_event(at, Payload::Deliver { from: to, to, msg });
    }

    /// Processes a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse((time, _, idx))) = self.queue.pop() else {
            return false;
        };
        let payload = self.payloads[idx].take().expect("payload already consumed");
        debug_assert!(time >= self.now, "event queue went backwards");
        self.now = time;
        match payload {
            Payload::Deliver { from, to, msg } => {
                if self.crashed[to] {
                    self.stats.messages_to_crashed += 1;
                } else {
                    self.stats.messages_delivered += 1;
                    self.trace
                        .record(TraceEvent::Delivered { at: time, from, to });
                    self.invoke(to, |actor, ctx| actor.on_message(from, msg, ctx));
                }
            }
            Payload::Timer { node, tag } => {
                if !self.crashed[node] {
                    self.stats.timers_fired += 1;
                    self.trace.record(TraceEvent::TimerFired {
                        at: time,
                        node,
                        tag,
                    });
                    self.invoke(node, |actor, ctx| actor.on_timer(tag, ctx));
                }
            }
            Payload::Fault { node, kind } => self.apply_fault(node, kind),
            Payload::Net { kind } => self.apply_net(kind),
        }
        true
    }

    /// Runs the simulation until the event queue is exhausted or virtual time would pass
    /// `deadline`; afterwards `now()` is exactly `deadline` (unless already past it).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse((time, _, _))) = self.queue.peek() {
            if *time > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs until the event queue is completely drained (use with care: protocols with
    /// periodic timers never drain).
    pub fn run_to_completion(&mut self, max_events: u64) -> u64 {
        let mut processed = 0;
        while processed < max_events && self.step() {
            processed += 1;
        }
        processed
    }

    fn push_event(&mut self, at: SimTime, payload: Payload<M>) {
        let idx = self.payloads.len();
        self.payloads.push(Some(payload));
        self.seq += 1;
        self.queue.push(Reverse((at, self.seq, idx)));
    }

    fn apply_fault(&mut self, node: usize, kind: FaultKind) {
        self.trace.record(TraceEvent::Fault {
            at: self.now,
            node,
            kind: match kind {
                FaultKind::Crash => "crash",
                FaultKind::Recover => "recover",
                FaultKind::TurnByzantine => "byzantine",
                FaultKind::SlowDown { .. } => "slow-down",
                FaultKind::SpeedUp => "speed-up",
            },
        });
        match kind {
            FaultKind::Crash => {
                if !self.crashed[node] {
                    self.crashed[node] = true;
                    self.stats.crashes += 1;
                    self.nodes[node].on_crash();
                }
            }
            FaultKind::Recover => {
                if self.crashed[node] {
                    self.crashed[node] = false;
                    self.stats.recoveries += 1;
                    self.invoke(node, |actor, ctx| actor.on_recover(ctx));
                }
            }
            FaultKind::TurnByzantine => {
                if !self.byzantine[node] {
                    self.byzantine[node] = true;
                    self.stats.byzantine_turns += 1;
                    self.nodes[node].on_turn_byzantine();
                }
            }
            // Gray failures: the node is never told — there is no actor callback,
            // because a real gray-failed node does not know it is slow. Only the
            // environment (latencies, timer delays) changes.
            FaultKind::SlowDown { factor } => {
                assert!(
                    factor > 0.0 && factor.is_finite(),
                    "slow-down factor must be positive and finite"
                );
                self.slow_factor[node] = factor;
                self.stats.slow_downs += 1;
            }
            FaultKind::SpeedUp => {
                if self.slow_factor[node] != 1.0 {
                    self.slow_factor[node] = 1.0;
                    self.stats.speed_ups += 1;
                }
            }
        }
    }

    fn apply_net(&mut self, kind: NetEventKind) {
        match kind {
            NetEventKind::PartitionStart { groups } => {
                self.network = std::mem::take(&mut self.network).with_partition(groups);
                self.stats.partitions_started += 1;
                self.trace.record(TraceEvent::Network {
                    at: self.now,
                    kind: "partition",
                });
            }
            NetEventKind::PartitionHeal => {
                self.network = std::mem::take(&mut self.network).healed();
                self.stats.partitions_healed += 1;
                self.trace.record(TraceEvent::Network {
                    at: self.now,
                    kind: "heal",
                });
            }
            NetEventKind::LinkOverride { from, to, quality } => {
                self.network.set_link_override(from, to, quality);
                self.stats.link_overrides += 1;
                self.trace.record(TraceEvent::Network {
                    at: self.now,
                    kind: "link-override",
                });
            }
            NetEventKind::ClearLinkOverrides => {
                self.network.clear_link_overrides();
                self.trace.record(TraceEvent::Network {
                    at: self.now,
                    kind: "clear-link-overrides",
                });
            }
        }
    }

    /// Runs `f` against node `id` with a fresh context, then applies the buffered
    /// effects (messages through the network model, timers into the queue).
    fn invoke(&mut self, id: usize, f: impl FnOnce(&mut A, &mut Context<M>)) {
        let n = self.nodes.len();
        let now = self.now;
        let mut ctx = Context::new(id, now, n, &mut self.node_rngs[id]);
        f(&mut self.nodes[id], &mut ctx);
        let outbox = std::mem::take(&mut ctx.outbox);
        let timers = std::mem::take(&mut ctx.timers);
        drop(ctx);
        for (to, msg) in outbox {
            self.stats.messages_sent += 1;
            if !self.network.connected(id, to) {
                self.stats.messages_partitioned += 1;
                continue;
            }
            if self.network.sample_link_drop(id, to, &mut self.net_rng) {
                self.stats.messages_dropped += 1;
                continue;
            }
            let latency = self.network.sample_link_latency(id, to, &mut self.net_rng);
            // A gray failure on either endpoint stretches the exchange: a slow
            // sender flushes late, a slow receiver processes late.
            let factor = self.slow_factor[id].max(self.slow_factor[to]);
            self.push_event(
                now + stretch(latency, factor),
                Payload::Deliver { from: id, to, msg },
            );
        }
        for (delay, tag) in timers {
            // A gray-failed node's clock effectively runs slow: its timers fire late.
            let delay = stretch(delay, self.slow_factor[id]);
            self.push_event(now + delay, Payload::Timer { node: id, tag });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A node that counts everything it sees and gossips a token around a ring.
    struct Counter {
        received: u64,
        timer_fired: bool,
        crashes_seen: u64,
        recovered: bool,
        byzantine: bool,
    }

    impl Counter {
        fn new() -> Self {
            Self {
                received: 0,
                timer_fired: false,
                crashes_seen: 0,
                recovered: false,
                byzantine: false,
            }
        }
    }

    #[derive(Clone, Debug)]
    struct Token(u64);

    impl Actor<Token> for Counter {
        fn on_start(&mut self, ctx: &mut Context<Token>) {
            if ctx.id() == 0 {
                let next = (ctx.id() + 1) % ctx.num_nodes();
                ctx.send(next, Token(1));
            }
            ctx.set_timer(SimTime::from_millis(5), 7);
        }

        fn on_message(&mut self, _from: usize, msg: Token, ctx: &mut Context<Token>) {
            self.received += 1;
            if msg.0 < 20 {
                let next = (ctx.id() + 1) % ctx.num_nodes();
                ctx.send(next, Token(msg.0 + 1));
            }
        }

        fn on_timer(&mut self, tag: u64, _ctx: &mut Context<Token>) {
            assert_eq!(tag, 7);
            self.timer_fired = true;
        }

        fn on_crash(&mut self) {
            self.crashes_seen += 1;
        }

        fn on_recover(&mut self, _ctx: &mut Context<Token>) {
            self.recovered = true;
        }

        fn on_turn_byzantine(&mut self) {
            self.byzantine = true;
        }
    }

    fn cluster(n: usize) -> Vec<Counter> {
        (0..n).map(|_| Counter::new()).collect()
    }

    #[test]
    fn ring_token_passes_through_all_nodes() {
        let mut sim = Simulation::new(cluster(4), NetworkConfig::default(), 1);
        sim.run_until(SimTime::from_secs(1));
        let total: u64 = (0..4).map(|i| sim.node(i).received).sum();
        assert_eq!(total, 20, "token hops 20 times");
        assert!((0..4).all(|i| sim.node(i).timer_fired));
        assert_eq!(sim.stats().timers_fired, 4);
        assert!(sim.stats().delivery_ratio() > 0.99);
    }

    #[test]
    fn deterministic_given_a_seed() {
        let run = |seed| {
            let mut sim = Simulation::new(cluster(5), NetworkConfig::default(), seed);
            sim.run_until(SimTime::from_secs(1));
            (sim.stats(), sim.now())
        };
        assert_eq!(run(42), run(42));
        assert_eq!(run(42).0.messages_delivered, 20);
    }

    #[test]
    fn crashed_nodes_stop_participating() {
        let schedule = FaultSchedule::none().crash_at(1, SimTime::ZERO);
        let mut sim =
            Simulation::new(cluster(4), NetworkConfig::default(), 3).with_fault_schedule(&schedule);
        sim.run_until(SimTime::from_secs(1));
        // The token dies when it reaches node 1.
        assert_eq!(sim.node(1).received, 0);
        assert!(sim.is_crashed(1));
        assert_eq!(sim.node(1).crashes_seen, 1);
        assert!(sim.stats().messages_to_crashed >= 1);
        assert_eq!(sim.correct_nodes(), vec![0, 2, 3]);
    }

    #[test]
    fn recovery_reinvokes_the_actor() {
        let schedule = FaultSchedule::none()
            .crash_at(2, SimTime::from_millis(1))
            .recover_at(2, SimTime::from_millis(50));
        let mut sim =
            Simulation::new(cluster(3), NetworkConfig::default(), 4).with_fault_schedule(&schedule);
        sim.run_until(SimTime::from_secs(1));
        assert!(!sim.is_crashed(2));
        assert!(sim.node(2).recovered);
        assert_eq!(sim.stats().recoveries, 1);
    }

    #[test]
    fn byzantine_turns_are_reported_to_the_actor() {
        let schedule = FaultSchedule::none().byzantine_at(0, SimTime::from_millis(1));
        let mut sim =
            Simulation::new(cluster(2), NetworkConfig::default(), 5).with_fault_schedule(&schedule);
        sim.run_until(SimTime::from_millis(10));
        assert!(sim.is_byzantine(0));
        assert!(sim.node(0).byzantine);
        assert_eq!(sim.correct_nodes(), vec![1]);
    }

    #[test]
    fn partitions_block_progress_until_healed() {
        let net = NetworkConfig::default().with_partition(vec![vec![0], vec![1, 2, 3]]);
        let mut sim = Simulation::new(cluster(4), net, 6);
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(sim.node(1).received, 0, "token blocked at the partition");
        assert!(sim.stats().messages_partitioned >= 1);
        // Heal and re-inject.
        sim.set_network(NetworkConfig::default());
        sim.inject(0, Token(1));
        sim.run_until(SimTime::from_secs(1));
        let total: u64 = (0..4).map(|i| sim.node(i).received).sum();
        assert!(total >= 20);
    }

    #[test]
    fn drops_reduce_delivery_ratio() {
        let net = NetworkConfig::default().with_drop_probability(0.5);
        let mut sim = Simulation::new(cluster(4), net, 7);
        for _ in 0..50 {
            // Fresh tokens keep hopping (and getting dropped) around the ring.
            sim.inject(0, Token(1));
        }
        sim.run_until(SimTime::from_secs(1));
        assert!(sim.stats().messages_dropped > 0);
        assert!(sim.stats().delivery_ratio() < 0.95);
    }

    #[test]
    fn tracing_records_events_when_enabled() {
        let mut sim =
            Simulation::new(cluster(3), NetworkConfig::default(), 8).with_trace_capacity(100);
        sim.run_until(SimTime::from_secs(1));
        assert!(!sim.trace_events().is_empty());
    }

    #[test]
    fn run_to_completion_processes_remaining_events() {
        let mut sim = Simulation::new(cluster(3), NetworkConfig::default(), 9);
        let processed = sim.run_to_completion(10_000);
        assert!(processed > 0);
        assert!(!sim.step(), "queue should be drained");
    }

    #[test]
    fn slow_nodes_stay_alive_but_fall_behind() {
        // Slow node 1 by 100x from the start: the ring token keeps circulating (no
        // message is lost — gray nodes are alive), it just takes far longer, so at a
        // deadline that comfortably finishes a healthy run the slowed ring has made
        // less progress.
        let schedule = FaultSchedule::none().slow_down_at(1, 100.0, SimTime::ZERO);
        let mut sim = Simulation::new(cluster(4), NetworkConfig::default(), 11)
            .with_fault_schedule(&schedule);
        sim.run_until(SimTime::from_millis(20));
        let slowed: u64 = (0..4).map(|i| sim.node(i).received).sum();
        assert!(sim.is_slowed(1));
        assert_eq!(sim.slow_factor(1), 100.0);
        assert_eq!(sim.stats().slow_downs, 1);
        assert!(slowed < 20, "slowed ring should not finish, saw {slowed}");
        // The node still counts as correct: gray is not faulty.
        assert_eq!(sim.correct_nodes(), vec![0, 1, 2, 3]);
        // Let it run long enough and every hop completes — nothing was lost.
        sim.run_until(SimTime::from_secs(5));
        let total: u64 = (0..4).map(|i| sim.node(i).received).sum();
        assert_eq!(total, 20, "gray failure delays but never loses the token");
    }

    #[test]
    fn speed_up_restores_normal_timing() {
        let schedule = FaultSchedule::none()
            .slow_down_at(0, 50.0, SimTime::ZERO)
            .speed_up_at(0, SimTime::from_millis(10));
        let mut sim = Simulation::new(cluster(3), NetworkConfig::default(), 12)
            .with_fault_schedule(&schedule);
        sim.run_until(SimTime::from_millis(5));
        assert!(sim.is_slowed(0));
        sim.run_until(SimTime::from_secs(2));
        assert!(!sim.is_slowed(0));
        assert_eq!(sim.stats().speed_ups, 1);
        let total: u64 = (0..3).map(|i| sim.node(i).received).sum();
        assert_eq!(total, 20);
    }

    /// Sets a 5 ms timer whenever a message arrives; records whether it fired.
    struct Pinger {
        received: bool,
        timer_fired: bool,
    }

    impl Actor<Token> for Pinger {
        fn on_start(&mut self, _ctx: &mut Context<Token>) {}

        fn on_message(&mut self, _from: usize, _msg: Token, ctx: &mut Context<Token>) {
            self.received = true;
            ctx.set_timer(SimTime::from_millis(5), 1);
        }

        fn on_timer(&mut self, _tag: u64, _ctx: &mut Context<Token>) {
            self.timer_fired = true;
        }
    }

    #[test]
    fn slow_timers_fire_late() {
        // A 100x slow-down on node 0, then a message whose handler arms a 5 ms timer:
        // the timer is stretched to 500 ms (and the inject latency to 10–100 ms).
        let actors = (0..2)
            .map(|_| Pinger {
                received: false,
                timer_fired: false,
            })
            .collect();
        let schedule = FaultSchedule::none().slow_down_at(0, 100.0, SimTime::ZERO);
        let mut sim: Simulation<Token, Pinger> =
            Simulation::new(actors, NetworkConfig::default(), 13).with_fault_schedule(&schedule);
        sim.run_until(SimTime::from_millis(1));
        sim.inject(0, Token(0));
        sim.run_until(SimTime::from_millis(300));
        assert!(sim.node(0).received, "message arrives (late, not lost)");
        assert!(
            !sim.node(0).timer_fired,
            "stretched timer must not fire yet"
        );
        sim.run_until(SimTime::from_millis(700));
        assert!(sim.node(0).timer_fired);
    }

    #[test]
    fn scheduled_partition_blocks_and_heal_restores() {
        // No manual set_network: the schedule itself drives the partition lifecycle.
        // The start-of-run token hop 0→1 is already in flight when the partition
        // lands, so it delivers; the ring then runs 1→2→3 inside the majority group
        // and dies at the 3→0 group boundary.
        let schedule = FaultSchedule::none()
            .partition_at(vec![vec![0], vec![1, 2, 3]], SimTime::ZERO)
            .heal_at(SimTime::from_millis(100));
        let mut sim = Simulation::new(cluster(4), NetworkConfig::default(), 14)
            .with_fault_schedule(&schedule);
        sim.run_until(SimTime::from_millis(50));
        assert_eq!(sim.node(0).received, 0, "token blocked at the partition");
        assert!(sim.stats().messages_partitioned >= 1);
        assert_eq!(sim.stats().partitions_started, 1);
        // After the scheduled heal, a fresh token makes the full circuit.
        sim.run_until(SimTime::from_millis(150));
        assert_eq!(sim.stats().partitions_healed, 1);
        sim.inject(0, Token(1));
        sim.run_until(SimTime::from_secs(1));
        let total: u64 = (0..4).map(|i| sim.node(i).received).sum();
        assert!(total >= 20);
    }

    #[test]
    fn scheduled_link_override_drops_one_direction() {
        use crate::network::LinkQuality;
        // Node 0 → 1 becomes fully lossy at t=0. The start-of-run hop 0→1 is already
        // in flight so it delivers; the token circles once and the second 0→1 send
        // is dropped, stalling the ring — while the 1→0-free path kept working.
        let schedule =
            FaultSchedule::none().link_override_at(0, 1, LinkQuality::lossy(1.0), SimTime::ZERO);
        let mut sim = Simulation::new(cluster(3), NetworkConfig::default(), 15)
            .with_fault_schedule(&schedule);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.node(1).received, 1, "only the pre-override hop lands");
        assert!(sim.stats().messages_dropped >= 1);
        assert_eq!(sim.stats().link_overrides, 1);
    }

    #[test]
    fn gray_failures_and_net_events_are_deterministic() {
        let run = |seed| {
            let schedule = FaultSchedule::none()
                .slow_down_at(2, 7.5, SimTime::from_millis(1))
                .partition_at(vec![vec![0, 1], vec![2, 3]], SimTime::from_millis(5))
                .heal_at(SimTime::from_millis(40))
                .speed_up_at(2, SimTime::from_millis(60));
            let mut sim = Simulation::new(cluster(4), NetworkConfig::wan_heavy_tailed(), seed)
                .with_fault_schedule(&schedule);
            sim.run_until(SimTime::from_secs(2));
            (sim.stats(), sim.now())
        };
        assert_eq!(run(99), run(99));
    }
}
