//! The actor abstraction protocols implement.

use rand::rngs::StdRng;
use rand::Rng;

use crate::time::SimTime;

/// Buffered side effects a protocol step can produce: outgoing messages and timer
/// requests. The runtime applies them after the callback returns, which keeps protocol
/// code free of borrow gymnastics and keeps the simulation deterministic.
pub struct Context<'a, M> {
    id: usize,
    now: SimTime,
    num_nodes: usize,
    rng: &'a mut StdRng,
    pub(crate) outbox: Vec<(usize, M)>,
    pub(crate) timers: Vec<(SimTime, u64)>,
}

impl<'a, M: Clone> Context<'a, M> {
    /// Creates a detached context.
    ///
    /// The runtime builds contexts internally; this constructor is public so protocol
    /// crates can unit-test actor callbacks without spinning up a full simulation.
    pub fn new(id: usize, now: SimTime, num_nodes: usize, rng: &'a mut StdRng) -> Self {
        Self {
            id,
            now,
            num_nodes,
            rng,
            outbox: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// This node's identifier (`0..num_nodes`).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of nodes in the simulation.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Sends a message to another node (or to self, which is delivered like any other
    /// message after network latency).
    pub fn send(&mut self, to: usize, msg: M) {
        assert!(to < self.num_nodes, "destination {to} out of range");
        self.outbox.push((to, msg));
    }

    /// Sends a message to every *other* node.
    pub fn broadcast(&mut self, msg: M) {
        for to in 0..self.num_nodes {
            if to != self.id {
                self.outbox.push((to, msg.clone()));
            }
        }
    }

    /// Arms a one-shot timer that fires after `delay` with the given tag. Timers cannot
    /// be cancelled; actors should ignore stale tags.
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) {
        self.timers.push((delay, tag));
    }

    /// Deterministic per-node randomness.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Samples a uniform value in `[lo, hi)` — convenience over [`Context::rng`].
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo);
        self.rng.gen_range(lo..hi)
    }
}

/// A protocol node running inside the simulation.
///
/// All callbacks receive a [`Context`] used to send messages and arm timers; effects are
/// applied by the runtime after the callback returns.
pub trait Actor<M>: Send {
    /// Called once when the simulation starts.
    fn on_start(&mut self, ctx: &mut Context<M>);

    /// Called when a message from `from` is delivered.
    fn on_message(&mut self, from: usize, msg: M, ctx: &mut Context<M>);

    /// Called when a timer armed with [`Context::set_timer`] fires.
    fn on_timer(&mut self, tag: u64, ctx: &mut Context<M>);

    /// Called when the fault injector crashes this node. Default: no-op.
    fn on_crash(&mut self) {}

    /// Called when the fault injector recovers this node; volatile state should be reset
    /// and timers re-armed here. Default: no-op.
    fn on_recover(&mut self, ctx: &mut Context<M>) {
        let _ = ctx;
    }

    /// Called when the fault injector turns this node Byzantine. Actors that can emulate
    /// malicious behaviour flip their strategy here. Default: no-op.
    fn on_turn_byzantine(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn context_buffers_sends_and_timers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ctx: Context<u32> = Context::new(1, SimTime::from_millis(5), 4, &mut rng);
        assert_eq!(ctx.id(), 1);
        assert_eq!(ctx.num_nodes(), 4);
        assert_eq!(ctx.now(), SimTime::from_millis(5));
        ctx.send(2, 7);
        ctx.broadcast(9);
        ctx.set_timer(SimTime::from_millis(10), 3);
        assert_eq!(ctx.outbox.len(), 1 + 3);
        assert!(ctx
            .outbox
            .iter()
            .all(|(to, _)| *to != 1 || ctx.outbox[0].0 == 2));
        assert_eq!(ctx.timers, vec![(SimTime::from_millis(10), 3)]);
    }

    #[test]
    fn broadcast_skips_self() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ctx: Context<u32> = Context::new(0, SimTime::ZERO, 3, &mut rng);
        ctx.broadcast(1);
        let targets: Vec<usize> = ctx.outbox.iter().map(|(to, _)| *to).collect();
        assert_eq!(targets, vec![1, 2]);
    }

    #[test]
    fn gen_range_is_deterministic_per_seed() {
        let mut rng1 = StdRng::seed_from_u64(3);
        let mut rng2 = StdRng::seed_from_u64(3);
        let mut a: Context<u32> = Context::new(0, SimTime::ZERO, 1, &mut rng1);
        let va = a.gen_range(0, 100);
        let mut b: Context<u32> = Context::new(0, SimTime::ZERO, 1, &mut rng2);
        let vb = b.gen_range(0, 100);
        assert_eq!(va, vb);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_checks_destination() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ctx: Context<u32> = Context::new(0, SimTime::ZERO, 2, &mut rng);
        ctx.send(5, 1);
    }
}
