//! Deterministic discrete-event simulator for consensus protocols.
//!
//! The paper's analysis predicts *probabilities* of safety and liveness; this crate
//! provides the substrate on which the executable protocols (`consensus-protocols`) run
//! so those predictions can be validated empirically: a virtual clock, a message network
//! with configurable latency, loss and partitions, per-node deterministic randomness, and
//! fault injection driven by the fault curves of the `fault-model` crate.
//!
//! * [`time`] — virtual time ([`time::SimTime`]), microsecond granularity.
//! * [`actor`] — the [`actor::Actor`] trait protocols implement, and the
//!   [`actor::Context`] handed to them for sending messages and arming timers.
//! * [`network`] — latency / loss / partition model.
//! * [`fault`] — fault schedules: explicit crash/recover/Byzantine events, or schedules
//!   sampled from fault curves.
//! * [`runtime`] — the event loop: [`runtime::Simulation`].
//! * [`trace`] — counters and an event trace for debugging and statistics.
//!
//! # Examples
//!
//! A two-node ping/pong protocol:
//!
//! ```
//! use consensus_sim::actor::{Actor, Context};
//! use consensus_sim::network::NetworkConfig;
//! use consensus_sim::runtime::Simulation;
//! use consensus_sim::time::SimTime;
//!
//! #[derive(Clone, Debug)]
//! enum Msg { Ping, Pong }
//!
//! struct Node { got_pong: bool }
//!
//! impl Actor<Msg> for Node {
//!     fn on_start(&mut self, ctx: &mut Context<Msg>) {
//!         if ctx.id() == 0 {
//!             ctx.send(1, Msg::Ping);
//!         }
//!     }
//!     fn on_message(&mut self, from: usize, msg: Msg, ctx: &mut Context<Msg>) {
//!         match msg {
//!             Msg::Ping => ctx.send(from, Msg::Pong),
//!             Msg::Pong => self.got_pong = true,
//!         }
//!     }
//!     fn on_timer(&mut self, _tag: u64, _ctx: &mut Context<Msg>) {}
//! }
//!
//! let mut sim = Simulation::new(
//!     vec![Node { got_pong: false }, Node { got_pong: false }],
//!     NetworkConfig::default(),
//!     42,
//! );
//! sim.run_until(SimTime::from_millis(10));
//! assert!(sim.node(0).got_pong);
//! ```

// Documentation is part of this crate's contract: every public item is
// documented, and CI builds rustdoc with `-D warnings` (see the `docs` job).
#![warn(missing_docs)]
pub mod actor;
pub mod fault;
pub mod network;
pub mod runtime;
pub mod time;
pub mod trace;

pub use actor::{Actor, Context};
pub use fault::{FaultEvent, FaultKind, FaultSchedule, NetEvent, NetEventKind};
pub use network::{DelayDistribution, LinkQuality, NetworkConfig};
pub use runtime::Simulation;
pub use time::SimTime;
pub use trace::TraceStats;
