//! Execution statistics and (optional) event tracing.

use crate::time::SimTime;

/// Counters accumulated while a simulation runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Messages handed to the network by actors.
    pub messages_sent: u64,
    /// Messages delivered to actors.
    pub messages_delivered: u64,
    /// Messages lost to random drops.
    pub messages_dropped: u64,
    /// Messages blocked by a partition.
    pub messages_partitioned: u64,
    /// Messages discarded because the destination (or source) was crashed.
    pub messages_to_crashed: u64,
    /// Timers that fired.
    pub timers_fired: u64,
    /// Crash events applied.
    pub crashes: u64,
    /// Recovery events applied.
    pub recoveries: u64,
    /// Byzantine-turn events applied.
    pub byzantine_turns: u64,
    /// Gray slow-down events applied.
    pub slow_downs: u64,
    /// Gray speed-up (recovery-from-slow) events applied.
    pub speed_ups: u64,
    /// Scheduled partitions started.
    pub partitions_started: u64,
    /// Scheduled partition heals applied.
    pub partitions_healed: u64,
    /// Per-link quality overrides installed by scheduled events.
    pub link_overrides: u64,
}

impl TraceStats {
    /// Fraction of sent messages that were delivered.
    pub fn delivery_ratio(&self) -> f64 {
        if self.messages_sent == 0 {
            1.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }
}

/// One recorded event (only kept when tracing is enabled).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A message was delivered.
    Delivered {
        /// Delivery time.
        at: SimTime,
        /// Sender.
        from: usize,
        /// Receiver.
        to: usize,
    },
    /// A timer fired.
    TimerFired {
        /// Fire time.
        at: SimTime,
        /// Owning node.
        node: usize,
        /// Timer tag.
        tag: u64,
    },
    /// A fault event was applied.
    Fault {
        /// Application time.
        at: SimTime,
        /// Affected node.
        node: usize,
        /// Description of the fault ("crash", "recover", "byzantine", "slow-down",
        /// "speed-up").
        kind: &'static str,
    },
    /// A scheduled network event was applied (whole-network, no single node).
    Network {
        /// Application time.
        at: SimTime,
        /// Description of the change ("partition", "heal", "link-override",
        /// "clear-link-overrides").
        kind: &'static str,
    },
}

/// A bounded event trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    enabled: bool,
    capacity: usize,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// A disabled trace (the default; only counters are kept).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled trace keeping at most `capacity` events (oldest dropped first).
    pub fn bounded(capacity: usize) -> Self {
        Self {
            enabled: true,
            capacity,
            events: Vec::new(),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if enabled.
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.remove(0);
        }
        self.events.push(event);
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_ratio_handles_zero_sends() {
        let stats = TraceStats::default();
        assert_eq!(stats.delivery_ratio(), 1.0);
        let stats = TraceStats {
            messages_sent: 10,
            messages_delivered: 7,
            ..Default::default()
        };
        assert!((stats.delivery_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(TraceEvent::TimerFired {
            at: SimTime::ZERO,
            node: 0,
            tag: 1,
        });
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn bounded_trace_evicts_oldest() {
        let mut t = Trace::bounded(2);
        for i in 0..3 {
            t.record(TraceEvent::TimerFired {
                at: SimTime::from_millis(i),
                node: 0,
                tag: i,
            });
        }
        assert_eq!(t.events().len(), 2);
        match &t.events()[0] {
            TraceEvent::TimerFired { tag, .. } => assert_eq!(*tag, 1),
            other => panic!("unexpected event {other:?}"),
        }
    }
}
