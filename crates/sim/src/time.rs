//! Virtual simulation time.

use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, with microsecond granularity.
///
/// Simulation time starts at zero and only moves forward as events are processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from microseconds.
    pub fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Builds a time from milliseconds.
    pub fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Builds a time from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// This time as microseconds since the epoch.
    pub fn as_micros(&self) -> u64 {
        self.0
    }

    /// This time as (fractional) milliseconds since the epoch.
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time as (fractional) seconds since the epoch.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(&self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("time went backwards"))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert!((SimTime::from_micros(1_500).as_millis_f64() - 1.5).abs() < 1e-12);
        assert!((SimTime::from_millis(500).as_secs_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_millis(3);
        let b = SimTime::from_millis(5);
        assert!(a < b);
        assert_eq!(a + SimTime::from_millis(2), b);
        assert_eq!(b - a, SimTime::from_millis(2));
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        let mut c = a;
        c += SimTime::from_millis(7);
        assert_eq!(c, SimTime::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn display_shows_milliseconds() {
        assert_eq!(format!("{}", SimTime::from_micros(1_234)), "1.234ms");
    }
}
