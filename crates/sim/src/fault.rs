//! Fault schedules: when nodes crash, recover, turn Byzantine, or go gray — and when
//! the network itself partitions, heals, or degrades per link.
//!
//! A schedule can be written explicitly (for targeted tests), sampled from per-node fault
//! profiles (matching the analysis window semantics of the `prob-consensus` crate), or
//! sampled from full fault curves (hazard-rate driven failure times). Besides per-node
//! fault events, a schedule carries a second lane of [`NetEvent`]s that reconfigure the
//! network mid-run: partitions that later heal, and asymmetric per-link loss/delay
//! overrides — the fault classes a fixed-`f` model cannot express.

use fault_model::correlation::CorrelationModel;
use fault_model::curve::FaultCurve;
use fault_model::mode::{FaultProfile, NodeState};
use rand::Rng;

use crate::network::LinkQuality;
use crate::time::SimTime;

/// What happens to a node at a scheduled time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node stops: no messages sent or received, timers do not fire.
    Crash,
    /// The node resumes from a crash (volatile state is the actor's responsibility).
    Recover,
    /// The node starts behaving maliciously (actors decide what that means).
    TurnByzantine,
    /// Gray failure: the node stays alive and correct, but everything it does is
    /// stretched by `factor` — outgoing and incoming message latencies and its own
    /// timer delays. The node itself has no idea it is slow; nothing in the actor API
    /// reports it. This is the slow-but-alive case fixed-`f` fault models miss.
    SlowDown {
        /// Multiplier (> 0) applied to the node's message latencies and timer delays.
        /// Values above 1 slow the node down; the identity factor 1.0 is a no-op.
        factor: f64,
    },
    /// Ends a gray failure: the node's timing returns to normal (factor 1.0).
    SpeedUp,
}

impl FaultKind {
    /// Whether this event leaves the node faulty in the boolean sense used by the
    /// analytic layer. Gray events do not: a slow node is still correct and live,
    /// which is exactly why analytic and empirical estimates diverge under gray
    /// failure.
    pub fn counts_as_faulty(&self) -> Option<bool> {
        match self {
            FaultKind::Crash | FaultKind::TurnByzantine => Some(true),
            FaultKind::Recover => Some(false),
            FaultKind::SlowDown { .. } | FaultKind::SpeedUp => None,
        }
    }
}

/// One scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the event takes effect.
    pub time: SimTime,
    /// Which node it affects.
    pub node: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A scheduled change to the network as a whole (as opposed to a single node).
#[derive(Debug, Clone, PartialEq)]
pub enum NetEventKind {
    /// Partition the network into the given groups: messages flow only within a
    /// group, and nodes not listed in any group are isolated.
    PartitionStart {
        /// The partition groups.
        groups: Vec<Vec<usize>>,
    },
    /// Heal any partition: the network becomes fully connected again.
    PartitionHeal,
    /// Install (or replace) a directed per-link quality override from `from` to
    /// `to`. Overrides are asymmetric: the reverse direction is unaffected unless
    /// it is overridden separately.
    LinkOverride {
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// Loss/extra-delay parameters for the link.
        quality: LinkQuality,
    },
    /// Remove every per-link override installed so far.
    ClearLinkOverrides,
}

/// One scheduled network event.
#[derive(Debug, Clone, PartialEq)]
pub struct NetEvent {
    /// When the event takes effect.
    pub time: SimTime,
    /// What changes.
    pub kind: NetEventKind,
}

/// An ordered list of fault and network events to inject into a simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    net_events: Vec<NetEvent>,
}

impl FaultSchedule {
    /// An empty schedule (no injected faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds an event, keeping the vector time-ordered.
    ///
    /// Insertion is ordered (binary search for the slot, one `Vec::insert`) rather
    /// than push-then-sort, so building an `n`-event schedule costs O(n log n)
    /// comparisons instead of the O(n² log n) of re-sorting per insertion. Events
    /// with equal timestamps keep their insertion order — the same guarantee the
    /// previous stable sort gave — so iteration order never depends on how a
    /// schedule was built.
    pub fn add(&mut self, event: FaultEvent) {
        let at = self.events.partition_point(|e| e.time <= event.time);
        self.events.insert(at, event);
    }

    /// Adds a network event, keeping the network lane time-ordered with the same
    /// equal-timestamp insertion-order guarantee as [`FaultSchedule::add`].
    pub fn add_net(&mut self, event: NetEvent) {
        let at = self.net_events.partition_point(|e| e.time <= event.time);
        self.net_events.insert(at, event);
    }

    /// Convenience: crash `node` at `time`.
    pub fn crash_at(mut self, node: usize, time: SimTime) -> Self {
        self.add(FaultEvent {
            time,
            node,
            kind: FaultKind::Crash,
        });
        self
    }

    /// Convenience: recover `node` at `time`.
    pub fn recover_at(mut self, node: usize, time: SimTime) -> Self {
        self.add(FaultEvent {
            time,
            node,
            kind: FaultKind::Recover,
        });
        self
    }

    /// Convenience: turn `node` Byzantine at `time`.
    pub fn byzantine_at(mut self, node: usize, time: SimTime) -> Self {
        self.add(FaultEvent {
            time,
            node,
            kind: FaultKind::TurnByzantine,
        });
        self
    }

    /// Convenience: gray-fail `node` at `time`, stretching its latencies and timer
    /// delays by `factor`.
    pub fn slow_down_at(mut self, node: usize, factor: f64, time: SimTime) -> Self {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "slow-down factor must be positive and finite"
        );
        self.add(FaultEvent {
            time,
            node,
            kind: FaultKind::SlowDown { factor },
        });
        self
    }

    /// Convenience: end a gray failure on `node` at `time`.
    pub fn speed_up_at(mut self, node: usize, time: SimTime) -> Self {
        self.add(FaultEvent {
            time,
            node,
            kind: FaultKind::SpeedUp,
        });
        self
    }

    /// Convenience: partition the network into `groups` at `time`.
    pub fn partition_at(mut self, groups: Vec<Vec<usize>>, time: SimTime) -> Self {
        self.add_net(NetEvent {
            time,
            kind: NetEventKind::PartitionStart { groups },
        });
        self
    }

    /// Convenience: heal any partition at `time`.
    pub fn heal_at(mut self, time: SimTime) -> Self {
        self.add_net(NetEvent {
            time,
            kind: NetEventKind::PartitionHeal,
        });
        self
    }

    /// Convenience: install a directed link-quality override at `time`.
    pub fn link_override_at(
        mut self,
        from: usize,
        to: usize,
        quality: LinkQuality,
        time: SimTime,
    ) -> Self {
        self.add_net(NetEvent {
            time,
            kind: NetEventKind::LinkOverride { from, to, quality },
        });
        self
    }

    /// The scheduled per-node fault events in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The scheduled network events in time order.
    pub fn net_events(&self) -> &[NetEvent] {
        &self.net_events
    }

    /// Number of scheduled per-node fault events (network events not included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty (no fault events and no network events).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.net_events.is_empty()
    }

    /// Nodes that are scheduled to crash (and never recover) or turn Byzantine at some
    /// point — i.e. the failure configuration this schedule realizes by the end of the
    /// horizon. Gray events ([`FaultKind::SlowDown`]/[`FaultKind::SpeedUp`]) never
    /// count: a slow node is alive and correct, merely late.
    pub fn eventually_faulty(&self, num_nodes: usize) -> Vec<usize> {
        (0..num_nodes)
            .filter(|&n| {
                let mut faulty = false;
                for e in &self.events {
                    if e.node != n {
                        continue;
                    }
                    if let Some(now_faulty) = e.kind.counts_as_faulty() {
                        faulty = now_faulty;
                    }
                }
                faulty
            })
            .collect()
    }

    /// Samples a schedule from per-node fault profiles over a horizon: each node crashes
    /// (respectively turns Byzantine) with its profile's probability, at a uniformly
    /// random time within the horizon, and never recovers. This mirrors the analysis
    /// window semantics used by the `prob-consensus` crate, so empirical safety/liveness
    /// rates measured under this schedule are directly comparable with the analytic
    /// probabilities.
    pub fn sample_from_profiles<R: Rng + ?Sized>(
        profiles: &[FaultProfile],
        horizon: SimTime,
        rng: &mut R,
    ) -> Self {
        let mut schedule = Self::none();
        for (node, profile) in profiles.iter().enumerate() {
            let u: f64 = rng.gen();
            let kind = if u < profile.byzantine_probability() {
                Some(FaultKind::TurnByzantine)
            } else if u < profile.fault_probability() {
                Some(FaultKind::Crash)
            } else {
                None
            };
            if let Some(kind) = kind {
                let at = SimTime::from_micros(rng.gen_range(0..=horizon.as_micros()));
                schedule.add(FaultEvent {
                    time: at,
                    node,
                    kind,
                });
            }
        }
        schedule
    }

    /// Samples a schedule from a joint (possibly correlated) failure model over a
    /// horizon: one failure configuration is drawn from the model — independent
    /// per-node outcomes plus any common-cause correlation-group shocks — and every
    /// faulty node receives its fault (crash, or Byzantine turn) at a uniformly
    /// random time within the horizon, never recovering.
    ///
    /// This is the correlated generalization of
    /// [`FaultSchedule::sample_from_profiles`]: for a groupless model the two draw
    /// from the same marginal distribution, and either way the realized
    /// end-of-horizon configuration is distributed exactly as the analysis layer's
    /// Monte Carlo samples, so empirical safety/liveness rates measured under these
    /// schedules are directly comparable with analytic (and sampled) probabilities
    /// — including under rack- or cluster-level shocks no independent sampler can
    /// express.
    pub fn sample_from_correlation<R: Rng + ?Sized>(
        model: &CorrelationModel,
        horizon: SimTime,
        rng: &mut R,
    ) -> Self {
        let mut schedule = Self::none();
        for (node, state) in model.sample(rng).into_iter().enumerate() {
            let kind = match state {
                NodeState::Correct => continue,
                NodeState::Crashed => FaultKind::Crash,
                NodeState::Byzantine => FaultKind::TurnByzantine,
            };
            let at = SimTime::from_micros(rng.gen_range(0..=horizon.as_micros()));
            schedule.add(FaultEvent {
                time: at,
                node,
                kind,
            });
        }
        schedule
    }

    /// Samples crash times from full fault curves: node `i` crashes at the first failure
    /// time drawn from `curves[i]` (starting from `ages[i]`), scaled so that
    /// `hours_per_sim_second` hours of wall-clock hazard map onto one simulated second.
    pub fn sample_from_curves<C: FaultCurve, R: Rng + ?Sized>(
        curves: &[C],
        ages: &[f64],
        horizon: SimTime,
        hours_per_sim_second: f64,
        rng: &mut R,
    ) -> Self {
        assert_eq!(curves.len(), ages.len(), "need one age per curve");
        assert!(hours_per_sim_second > 0.0);
        let horizon_hours = horizon.as_secs_f64() * hours_per_sim_second;
        let mut schedule = Self::none();
        for (node, (curve, &age)) in curves.iter().zip(ages).enumerate() {
            if let Some(dt_hours) = curve.sample_failure_time(age, horizon_hours, rng) {
                let secs = dt_hours / hours_per_sim_second;
                schedule.add(FaultEvent {
                    time: SimTime::from_micros((secs * 1e6) as u64),
                    node,
                    kind: FaultKind::Crash,
                });
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_model::curve::ConstantCurve;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builder_orders_events_by_time() {
        let s = FaultSchedule::none()
            .crash_at(2, SimTime::from_millis(50))
            .crash_at(0, SimTime::from_millis(10))
            .recover_at(0, SimTime::from_millis(30));
        let times: Vec<u64> = s.events().iter().map(|e| e.time.as_micros()).collect();
        assert_eq!(times, vec![10_000, 30_000, 50_000]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn same_timestamp_events_keep_insertion_order() {
        // Three events at the same instant plus one earlier and one later, inserted in
        // a scrambled order: the equal-timestamp trio must come back in insertion
        // order (crash 0, recover 1, byzantine 2), pinned so iteration order can
        // never depend on how the sort/insert is implemented.
        let t = SimTime::from_millis(20);
        let s = FaultSchedule::none()
            .crash_at(9, SimTime::from_millis(90))
            .crash_at(0, t)
            .recover_at(1, t)
            .byzantine_at(2, t)
            .crash_at(8, SimTime::from_millis(1));
        let order: Vec<(u64, usize)> = s
            .events()
            .iter()
            .map(|e| (e.time.as_micros(), e.node))
            .collect();
        assert_eq!(
            order,
            vec![
                (1_000, 8),
                (20_000, 0),
                (20_000, 1),
                (20_000, 2),
                (90_000, 9)
            ]
        );
    }

    #[test]
    fn same_timestamp_net_events_keep_insertion_order() {
        let t = SimTime::from_millis(5);
        let s = FaultSchedule::none()
            .heal_at(SimTime::from_millis(50))
            .partition_at(vec![vec![0], vec![1, 2]], t)
            .heal_at(t);
        assert_eq!(s.net_events().len(), 3);
        assert!(matches!(
            s.net_events()[0].kind,
            NetEventKind::PartitionStart { .. }
        ));
        assert!(matches!(
            s.net_events()[1].kind,
            NetEventKind::PartitionHeal
        ));
        assert_eq!(s.net_events()[2].time, SimTime::from_millis(50));
    }

    #[test]
    fn eventually_faulty_accounts_for_recovery() {
        let s = FaultSchedule::none()
            .crash_at(0, SimTime::from_millis(10))
            .recover_at(0, SimTime::from_millis(20))
            .crash_at(1, SimTime::from_millis(10))
            .byzantine_at(2, SimTime::from_millis(5));
        assert_eq!(s.eventually_faulty(4), vec![1, 2]);
    }

    #[test]
    fn eventually_faulty_crash_recover_crash_is_faulty() {
        let s = FaultSchedule::none()
            .crash_at(0, SimTime::from_millis(10))
            .recover_at(0, SimTime::from_millis(20))
            .crash_at(0, SimTime::from_millis(30));
        assert_eq!(s.eventually_faulty(2), vec![0]);
    }

    #[test]
    fn eventually_faulty_recover_without_prior_crash_is_correct() {
        let s = FaultSchedule::none().recover_at(1, SimTime::from_millis(10));
        assert!(s.eventually_faulty(3).is_empty());
    }

    #[test]
    fn gray_events_do_not_count_as_eventually_faulty() {
        let s = FaultSchedule::none()
            .slow_down_at(0, 16.0, SimTime::from_millis(10))
            .slow_down_at(1, 4.0, SimTime::from_millis(5))
            .speed_up_at(1, SimTime::from_millis(50))
            .partition_at(vec![vec![0], vec![1, 2]], SimTime::from_millis(1))
            .heal_at(SimTime::from_millis(40));
        assert!(s.eventually_faulty(3).is_empty());
        // ... even interleaved with real faults the gray events change nothing.
        let s = s.crash_at(2, SimTime::from_millis(20));
        assert_eq!(s.eventually_faulty(3), vec![2]);
    }

    #[test]
    fn profile_sampling_matches_probabilities() {
        let profiles = vec![FaultProfile::crash_only(0.3); 4];
        let mut rng = StdRng::seed_from_u64(9);
        let mut crashes = 0usize;
        let trials = 5_000;
        for _ in 0..trials {
            let s =
                FaultSchedule::sample_from_profiles(&profiles, SimTime::from_secs(10), &mut rng);
            crashes += s.len();
        }
        let rate = crashes as f64 / (trials * 4) as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn profile_sampling_distinguishes_byzantine_from_crash() {
        let profiles = vec![FaultProfile::new(0.0, 1.0)];
        let mut rng = StdRng::seed_from_u64(2);
        let s = FaultSchedule::sample_from_profiles(&profiles, SimTime::from_secs(1), &mut rng);
        assert_eq!(s.events()[0].kind, FaultKind::TurnByzantine);
    }

    #[test]
    fn correlation_sampling_reflects_shock_probability() {
        use fault_model::correlation::CorrelationGroup;
        // Nodes never fail independently; a 30% whole-group crash shock is the only
        // fault source, so schedules are either empty or crash every member.
        let model = CorrelationModel::independent(vec![FaultProfile::crash_only(0.0); 4])
            .with_group(CorrelationGroup::crash_shock((0..4).collect(), 0.3));
        let mut rng = StdRng::seed_from_u64(5);
        let horizon = SimTime::from_secs(10);
        let trials = 4_000;
        let mut shocked = 0usize;
        for _ in 0..trials {
            let s = FaultSchedule::sample_from_correlation(&model, horizon, &mut rng);
            assert!(s.is_empty() || s.len() == 4, "shock is all-or-nothing");
            assert!(s.events().iter().all(|e| e.kind == FaultKind::Crash));
            assert!(s.events().iter().all(|e| e.time <= horizon));
            if !s.is_empty() {
                shocked += 1;
            }
        }
        let rate = shocked as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed shock rate {rate}");
    }

    #[test]
    fn correlation_sampling_preserves_byzantine_outcomes() {
        use fault_model::correlation::CorrelationGroup;
        let model = CorrelationModel::independent(vec![FaultProfile::byzantine_only(1.0); 2])
            .with_group(CorrelationGroup::crash_shock(vec![0, 1], 1.0));
        let mut rng = StdRng::seed_from_u64(6);
        let s = FaultSchedule::sample_from_correlation(&model, SimTime::from_secs(1), &mut rng);
        // Byzantine dominates the crash shock, exactly as in the analysis sampler.
        assert_eq!(s.len(), 2);
        assert!(s
            .events()
            .iter()
            .all(|e| e.kind == FaultKind::TurnByzantine));
    }

    #[test]
    fn groupless_correlation_sampling_matches_profile_marginals() {
        let profiles = vec![FaultProfile::crash_only(0.25); 5];
        let model = CorrelationModel::independent(profiles);
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 4_000;
        let mut crashes = 0usize;
        for _ in 0..trials {
            crashes +=
                FaultSchedule::sample_from_correlation(&model, SimTime::from_secs(1), &mut rng)
                    .len();
        }
        let rate = crashes as f64 / (trials * 5) as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn curve_sampling_produces_crashes_within_horizon() {
        // A rate so high that failure within the horizon is essentially certain.
        let curves = vec![ConstantCurve::new(1.0); 3];
        let ages = vec![0.0; 3];
        let mut rng = StdRng::seed_from_u64(3);
        let horizon = SimTime::from_secs(100);
        let s = FaultSchedule::sample_from_curves(&curves, &ages, horizon, 1.0, &mut rng);
        assert_eq!(s.len(), 3);
        assert!(s.events().iter().all(|e| e.time <= horizon));
        assert!(s.events().iter().all(|e| e.kind == FaultKind::Crash));
    }
}
