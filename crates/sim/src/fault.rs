//! Fault schedules: when nodes crash, recover, or turn Byzantine.
//!
//! A schedule can be written explicitly (for targeted tests), sampled from per-node fault
//! profiles (matching the analysis window semantics of the `prob-consensus` crate), or
//! sampled from full fault curves (hazard-rate driven failure times).

use fault_model::correlation::CorrelationModel;
use fault_model::curve::FaultCurve;
use fault_model::mode::{FaultProfile, NodeState};
use rand::Rng;

use crate::time::SimTime;

/// What happens to a node at a scheduled time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The node stops: no messages sent or received, timers do not fire.
    Crash,
    /// The node resumes from a crash (volatile state is the actor's responsibility).
    Recover,
    /// The node starts behaving maliciously (actors decide what that means).
    TurnByzantine,
}

/// One scheduled fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the event takes effect.
    pub time: SimTime,
    /// Which node it affects.
    pub node: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// An ordered list of fault events to inject into a simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (no injected faults).
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds an event.
    pub fn add(&mut self, event: FaultEvent) {
        self.events.push(event);
        self.events.sort_by_key(|e| e.time);
    }

    /// Convenience: crash `node` at `time`.
    pub fn crash_at(mut self, node: usize, time: SimTime) -> Self {
        self.add(FaultEvent {
            time,
            node,
            kind: FaultKind::Crash,
        });
        self
    }

    /// Convenience: recover `node` at `time`.
    pub fn recover_at(mut self, node: usize, time: SimTime) -> Self {
        self.add(FaultEvent {
            time,
            node,
            kind: FaultKind::Recover,
        });
        self
    }

    /// Convenience: turn `node` Byzantine at `time`.
    pub fn byzantine_at(mut self, node: usize, time: SimTime) -> Self {
        self.add(FaultEvent {
            time,
            node,
            kind: FaultKind::TurnByzantine,
        });
        self
    }

    /// The scheduled events in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Nodes that are scheduled to crash (and never recover) or turn Byzantine at some
    /// point — i.e. the failure configuration this schedule realizes by the end of the
    /// horizon.
    pub fn eventually_faulty(&self, num_nodes: usize) -> Vec<usize> {
        (0..num_nodes)
            .filter(|&n| {
                let mut faulty = false;
                for e in &self.events {
                    if e.node != n {
                        continue;
                    }
                    match e.kind {
                        FaultKind::Crash | FaultKind::TurnByzantine => faulty = true,
                        FaultKind::Recover => faulty = false,
                    }
                }
                faulty
            })
            .collect()
    }

    /// Samples a schedule from per-node fault profiles over a horizon: each node crashes
    /// (respectively turns Byzantine) with its profile's probability, at a uniformly
    /// random time within the horizon, and never recovers. This mirrors the analysis
    /// window semantics used by the `prob-consensus` crate, so empirical safety/liveness
    /// rates measured under this schedule are directly comparable with the analytic
    /// probabilities.
    pub fn sample_from_profiles<R: Rng + ?Sized>(
        profiles: &[FaultProfile],
        horizon: SimTime,
        rng: &mut R,
    ) -> Self {
        let mut schedule = Self::none();
        for (node, profile) in profiles.iter().enumerate() {
            let u: f64 = rng.gen();
            let kind = if u < profile.byzantine_probability() {
                Some(FaultKind::TurnByzantine)
            } else if u < profile.fault_probability() {
                Some(FaultKind::Crash)
            } else {
                None
            };
            if let Some(kind) = kind {
                let at = SimTime::from_micros(rng.gen_range(0..=horizon.as_micros()));
                schedule.add(FaultEvent {
                    time: at,
                    node,
                    kind,
                });
            }
        }
        schedule
    }

    /// Samples a schedule from a joint (possibly correlated) failure model over a
    /// horizon: one failure configuration is drawn from the model — independent
    /// per-node outcomes plus any common-cause correlation-group shocks — and every
    /// faulty node receives its fault (crash, or Byzantine turn) at a uniformly
    /// random time within the horizon, never recovering.
    ///
    /// This is the correlated generalization of
    /// [`FaultSchedule::sample_from_profiles`]: for a groupless model the two draw
    /// from the same marginal distribution, and either way the realized
    /// end-of-horizon configuration is distributed exactly as the analysis layer's
    /// Monte Carlo samples, so empirical safety/liveness rates measured under these
    /// schedules are directly comparable with analytic (and sampled) probabilities
    /// — including under rack- or cluster-level shocks no independent sampler can
    /// express.
    pub fn sample_from_correlation<R: Rng + ?Sized>(
        model: &CorrelationModel,
        horizon: SimTime,
        rng: &mut R,
    ) -> Self {
        let mut schedule = Self::none();
        for (node, state) in model.sample(rng).into_iter().enumerate() {
            let kind = match state {
                NodeState::Correct => continue,
                NodeState::Crashed => FaultKind::Crash,
                NodeState::Byzantine => FaultKind::TurnByzantine,
            };
            let at = SimTime::from_micros(rng.gen_range(0..=horizon.as_micros()));
            schedule.add(FaultEvent {
                time: at,
                node,
                kind,
            });
        }
        schedule
    }

    /// Samples crash times from full fault curves: node `i` crashes at the first failure
    /// time drawn from `curves[i]` (starting from `ages[i]`), scaled so that
    /// `hours_per_sim_second` hours of wall-clock hazard map onto one simulated second.
    pub fn sample_from_curves<C: FaultCurve, R: Rng + ?Sized>(
        curves: &[C],
        ages: &[f64],
        horizon: SimTime,
        hours_per_sim_second: f64,
        rng: &mut R,
    ) -> Self {
        assert_eq!(curves.len(), ages.len(), "need one age per curve");
        assert!(hours_per_sim_second > 0.0);
        let horizon_hours = horizon.as_secs_f64() * hours_per_sim_second;
        let mut schedule = Self::none();
        for (node, (curve, &age)) in curves.iter().zip(ages).enumerate() {
            if let Some(dt_hours) = curve.sample_failure_time(age, horizon_hours, rng) {
                let secs = dt_hours / hours_per_sim_second;
                schedule.add(FaultEvent {
                    time: SimTime::from_micros((secs * 1e6) as u64),
                    node,
                    kind: FaultKind::Crash,
                });
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_model::curve::ConstantCurve;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builder_orders_events_by_time() {
        let s = FaultSchedule::none()
            .crash_at(2, SimTime::from_millis(50))
            .crash_at(0, SimTime::from_millis(10))
            .recover_at(0, SimTime::from_millis(30));
        let times: Vec<u64> = s.events().iter().map(|e| e.time.as_micros()).collect();
        assert_eq!(times, vec![10_000, 30_000, 50_000]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn eventually_faulty_accounts_for_recovery() {
        let s = FaultSchedule::none()
            .crash_at(0, SimTime::from_millis(10))
            .recover_at(0, SimTime::from_millis(20))
            .crash_at(1, SimTime::from_millis(10))
            .byzantine_at(2, SimTime::from_millis(5));
        assert_eq!(s.eventually_faulty(4), vec![1, 2]);
    }

    #[test]
    fn profile_sampling_matches_probabilities() {
        let profiles = vec![FaultProfile::crash_only(0.3); 4];
        let mut rng = StdRng::seed_from_u64(9);
        let mut crashes = 0usize;
        let trials = 5_000;
        for _ in 0..trials {
            let s =
                FaultSchedule::sample_from_profiles(&profiles, SimTime::from_secs(10), &mut rng);
            crashes += s.len();
        }
        let rate = crashes as f64 / (trials * 4) as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn profile_sampling_distinguishes_byzantine_from_crash() {
        let profiles = vec![FaultProfile::new(0.0, 1.0)];
        let mut rng = StdRng::seed_from_u64(2);
        let s = FaultSchedule::sample_from_profiles(&profiles, SimTime::from_secs(1), &mut rng);
        assert_eq!(s.events()[0].kind, FaultKind::TurnByzantine);
    }

    #[test]
    fn correlation_sampling_reflects_shock_probability() {
        use fault_model::correlation::CorrelationGroup;
        // Nodes never fail independently; a 30% whole-group crash shock is the only
        // fault source, so schedules are either empty or crash every member.
        let model = CorrelationModel::independent(vec![FaultProfile::crash_only(0.0); 4])
            .with_group(CorrelationGroup::crash_shock((0..4).collect(), 0.3));
        let mut rng = StdRng::seed_from_u64(5);
        let horizon = SimTime::from_secs(10);
        let trials = 4_000;
        let mut shocked = 0usize;
        for _ in 0..trials {
            let s = FaultSchedule::sample_from_correlation(&model, horizon, &mut rng);
            assert!(s.is_empty() || s.len() == 4, "shock is all-or-nothing");
            assert!(s.events().iter().all(|e| e.kind == FaultKind::Crash));
            assert!(s.events().iter().all(|e| e.time <= horizon));
            if !s.is_empty() {
                shocked += 1;
            }
        }
        let rate = shocked as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed shock rate {rate}");
    }

    #[test]
    fn correlation_sampling_preserves_byzantine_outcomes() {
        use fault_model::correlation::CorrelationGroup;
        let model = CorrelationModel::independent(vec![FaultProfile::byzantine_only(1.0); 2])
            .with_group(CorrelationGroup::crash_shock(vec![0, 1], 1.0));
        let mut rng = StdRng::seed_from_u64(6);
        let s = FaultSchedule::sample_from_correlation(&model, SimTime::from_secs(1), &mut rng);
        // Byzantine dominates the crash shock, exactly as in the analysis sampler.
        assert_eq!(s.len(), 2);
        assert!(s
            .events()
            .iter()
            .all(|e| e.kind == FaultKind::TurnByzantine));
    }

    #[test]
    fn groupless_correlation_sampling_matches_profile_marginals() {
        let profiles = vec![FaultProfile::crash_only(0.25); 5];
        let model = CorrelationModel::independent(profiles);
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 4_000;
        let mut crashes = 0usize;
        for _ in 0..trials {
            crashes +=
                FaultSchedule::sample_from_correlation(&model, SimTime::from_secs(1), &mut rng)
                    .len();
        }
        let rate = crashes as f64 / (trials * 5) as f64;
        assert!((rate - 0.25).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn curve_sampling_produces_crashes_within_horizon() {
        // A rate so high that failure within the horizon is essentially certain.
        let curves = vec![ConstantCurve::new(1.0); 3];
        let ages = vec![0.0; 3];
        let mut rng = StdRng::seed_from_u64(3);
        let horizon = SimTime::from_secs(100);
        let s = FaultSchedule::sample_from_curves(&curves, &ages, horizon, 1.0, &mut rng);
        assert_eq!(s.len(), 3);
        assert!(s.events().iter().all(|e| e.time <= horizon));
        assert!(s.events().iter().all(|e| e.kind == FaultKind::Crash));
    }
}
