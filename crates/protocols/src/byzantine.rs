//! Byzantine behaviours.
//!
//! §2(4) of the paper: most nodes crash, but from time to time a node "exhibits malicious
//! behavior" (mercurial cores, compromised TEEs). When the fault injector turns a node
//! Byzantine, the node adopts one of these strategies.

/// The strategy a Byzantine node follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ByzantineBehavior {
    /// Not Byzantine: follow the protocol.
    #[default]
    Honest,
    /// Stop responding entirely (indistinguishable from a crash to the others).
    Silent,
    /// Actively try to break agreement: as a leader/primary, propose conflicting values
    /// to different replicas; as a follower, vote for conflicting proposals.
    Equivocate,
}

impl ByzantineBehavior {
    /// Whether the node still emits (possibly malicious) messages.
    pub fn sends_messages(&self) -> bool {
        !matches!(self, ByzantineBehavior::Silent)
    }

    /// Whether the node deviates from the protocol at all.
    pub fn is_malicious(&self) -> bool {
        !matches!(self, ByzantineBehavior::Honest)
    }
}

impl std::fmt::Display for ByzantineBehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ByzantineBehavior::Honest => write!(f, "honest"),
            ByzantineBehavior::Silent => write!(f, "silent"),
            ByzantineBehavior::Equivocate => write!(f, "equivocate"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_honest() {
        assert_eq!(ByzantineBehavior::default(), ByzantineBehavior::Honest);
        assert!(!ByzantineBehavior::Honest.is_malicious());
    }

    #[test]
    fn silent_nodes_do_not_send() {
        assert!(!ByzantineBehavior::Silent.sends_messages());
        assert!(ByzantineBehavior::Silent.is_malicious());
        assert!(ByzantineBehavior::Equivocate.sends_messages());
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", ByzantineBehavior::Equivocate), "equivocate");
    }
}
