//! Types shared by the executable protocols.

/// An opaque client command (the payload being replicated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Command(pub u64);

impl std::fmt::Display for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cmd#{}", self.0)
    }
}

/// One replicated log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// The term (Raft) or view (PBFT) in which the entry was created.
    pub term: u64,
    /// The replicated command.
    pub command: Command,
}

/// A protocol node's view of what has been durably committed, used by the harness to
/// check agreement and progress without knowing which protocol produced it.
pub trait ReplicatedLog {
    /// The committed commands, in commit order.
    fn committed(&self) -> Vec<Command>;
}

/// Checks that every pair of committed logs agrees: one must be a prefix of the other
/// (same commands in the same positions up to the shorter length).
pub fn logs_agree(logs: &[Vec<Command>]) -> bool {
    for (i, a) in logs.iter().enumerate() {
        for b in logs.iter().skip(i + 1) {
            let shorter = a.len().min(b.len());
            if a[..shorter] != b[..shorter] {
                return false;
            }
        }
    }
    true
}

/// Checks whether every log contains every expected command (in any position).
pub fn all_contain(logs: &[Vec<Command>], expected: &[Command]) -> bool {
    logs.iter()
        .all(|log| expected.iter().all(|c| log.contains(c)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmds(xs: &[u64]) -> Vec<Command> {
        xs.iter().map(|&x| Command(x)).collect()
    }

    #[test]
    fn prefix_consistent_logs_agree() {
        let logs = vec![cmds(&[1, 2, 3]), cmds(&[1, 2]), cmds(&[1, 2, 3, 4])];
        assert!(logs_agree(&logs));
    }

    #[test]
    fn conflicting_logs_do_not_agree() {
        let logs = vec![cmds(&[1, 2, 3]), cmds(&[1, 5])];
        assert!(!logs_agree(&logs));
    }

    #[test]
    fn empty_logs_trivially_agree() {
        assert!(logs_agree(&[vec![], cmds(&[1])]));
        assert!(logs_agree(&[]));
    }

    #[test]
    fn all_contain_checks_every_log() {
        let logs = vec![cmds(&[1, 2, 3]), cmds(&[3, 2, 1])];
        assert!(all_contain(&logs, &cmds(&[1, 3])));
        assert!(!all_contain(&logs, &cmds(&[4])));
    }

    #[test]
    fn command_display() {
        assert_eq!(format!("{}", Command(7)), "cmd#7");
    }
}
