//! Probability-native deployment helpers (§4).
//!
//! These functions connect the analysis layer's fault-curve knowledge to the executable
//! protocols: derive reliability-aware election priorities from a deployment, restrict a
//! protocol to a committee of the most reliable nodes, and build fault schedules matching
//! an analysis deployment so that simulation results are directly comparable with the
//! analytic predictions.

use fault_model::mode::FaultProfile;

use crate::raft::RaftConfig;

/// Ranks nodes by fault probability (most reliable first) and converts the ranking into
/// the per-node priority vector [`RaftConfig::with_election_priority`] expects
/// (`priority[i]` = rank of node `i`, 0 = preferred leader).
pub fn election_priority_from_profiles(profiles: &[FaultProfile]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..profiles.len()).collect();
    order.sort_by(|&a, &b| {
        profiles[a]
            .fault_probability()
            .partial_cmp(&profiles[b].fault_probability())
            .unwrap()
            .then(a.cmp(&b))
    });
    let mut priority = vec![0usize; profiles.len()];
    for (rank, &node) in order.iter().enumerate() {
        priority[node] = rank;
    }
    priority
}

/// Builds a Raft configuration whose election priorities follow the deployment's
/// reliability ranking — the executable counterpart of the paper's "choose leaders among
/// the most reliable nodes".
pub fn reliability_aware_raft_config(profiles: &[FaultProfile]) -> RaftConfig {
    RaftConfig::standard(profiles.len())
        .with_election_priority(election_priority_from_profiles(profiles))
}

/// Selects a committee of the `size` most reliable nodes (indices into `profiles`),
/// for running the protocol on a subset of a larger fleet.
pub fn reliable_committee(profiles: &[FaultProfile], size: usize) -> Vec<usize> {
    assert!(size >= 1 && size <= profiles.len());
    let mut order: Vec<usize> = (0..profiles.len()).collect();
    order.sort_by(|&a, &b| {
        profiles[a]
            .fault_probability()
            .partial_cmp(&profiles[b].fault_probability())
            .unwrap()
            .then(a.cmp(&b))
    });
    let mut committee = order[..size].to_vec();
    committee.sort_unstable();
    committee
}

/// Extracts the profiles of a committee, preserving committee order — used to build the
/// committee's own fault schedule.
pub fn committee_profiles(profiles: &[FaultProfile], committee: &[usize]) -> Vec<FaultProfile> {
    committee
        .iter()
        .map(|&i| {
            assert!(i < profiles.len(), "committee member {i} out of range");
            profiles[i]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles() -> Vec<FaultProfile> {
        vec![
            FaultProfile::crash_only(0.08),
            FaultProfile::crash_only(0.01),
            FaultProfile::crash_only(0.04),
            FaultProfile::crash_only(0.02),
        ]
    }

    #[test]
    fn priorities_follow_reliability() {
        let priority = election_priority_from_profiles(&profiles());
        // Node 1 (1%) gets rank 0, node 3 (2%) rank 1, node 2 (4%) rank 2, node 0 rank 3.
        assert_eq!(priority, vec![3, 0, 2, 1]);
    }

    #[test]
    fn reliability_aware_config_embeds_priorities() {
        let config = reliability_aware_raft_config(&profiles());
        assert_eq!(config.election_priority, Some(vec![3, 0, 2, 1]));
        assert_eq!(config.n, 4);
    }

    #[test]
    fn committee_selects_most_reliable_members() {
        let committee = reliable_committee(&profiles(), 2);
        assert_eq!(committee, vec![1, 3]);
        let sub = committee_profiles(&profiles(), &committee);
        assert!((sub[0].fault_probability() - 0.01).abs() < 1e-12);
        assert!((sub[1].fault_probability() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn ties_are_broken_by_index_for_determinism() {
        let equal = vec![FaultProfile::crash_only(0.05); 3];
        assert_eq!(election_priority_from_profiles(&equal), vec![0, 1, 2]);
        assert_eq!(reliable_committee(&equal, 2), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn committee_profiles_checks_indices() {
        committee_profiles(&profiles(), &[9]);
    }
}
