//! Cluster harnesses: build a simulated cluster, drive a workload, check the outcome.
//!
//! The harness is what turns the executable protocols into *experiments*: it submits a
//! batch of client commands, runs the simulation under a fault schedule, and then checks
//! exactly the two properties the paper's probabilistic analysis quantifies — agreement
//! among correct nodes (safety) and commitment of every submitted command at every
//! correct node (liveness/progress).

use consensus_sim::fault::FaultSchedule;
use consensus_sim::network::NetworkConfig;
use consensus_sim::runtime::Simulation;
use consensus_sim::time::SimTime;
use consensus_sim::trace::TraceStats;

use crate::byzantine::ByzantineBehavior;
use crate::common::{all_contain, logs_agree, Command, ReplicatedLog};
use crate::pbft::{PbftConfig, PbftMessage, PbftNode};
use crate::raft::{RaftConfig, RaftMessage, RaftNode};

/// The verdict of one harness run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// Whether the committed logs of all correct nodes are prefix-consistent.
    pub agreement: bool,
    /// Whether every submitted command was committed at every correct node.
    pub all_committed: bool,
    /// Committed log length per correct node.
    pub committed_lengths: Vec<usize>,
    /// Ids of the nodes that were still correct at the end of the run.
    pub correct_nodes: Vec<usize>,
    /// Total messages delivered during the run (a cost proxy).
    pub messages_delivered: u64,
}

impl ClusterOutcome {
    /// Whether the run was both safe and live — the paper's "safe and live"
    /// configuration notion, observed empirically.
    pub fn safe_and_live(&self) -> bool {
        self.agreement && self.all_committed
    }
}

fn evaluate<M, A>(sim: &Simulation<M, A>, submitted: &[Command]) -> ClusterOutcome
where
    M: Clone,
    A: consensus_sim::actor::Actor<M> + ReplicatedLog,
{
    let correct = sim.correct_nodes();
    let logs: Vec<Vec<Command>> = correct.iter().map(|&i| sim.node(i).committed()).collect();
    ClusterOutcome {
        agreement: logs_agree(&logs),
        all_committed: !logs.is_empty() && all_contain(&logs, submitted),
        committed_lengths: logs.iter().map(Vec::len).collect(),
        correct_nodes: correct,
        messages_delivered: sim.stats().messages_delivered,
    }
}

/// A Raft cluster harness.
pub struct RaftHarness {
    sim: Simulation<RaftMessage, RaftNode>,
    submitted: Vec<Command>,
    next_command: u64,
}

impl RaftHarness {
    /// Builds a standard Raft cluster of `n` nodes.
    pub fn new(n: usize, network: NetworkConfig, seed: u64) -> Self {
        Self::with_config(RaftConfig::standard(n), network, seed)
    }

    /// Builds a Raft cluster with a custom per-node configuration.
    pub fn with_config(config: RaftConfig, network: NetworkConfig, seed: u64) -> Self {
        let nodes = (0..config.n)
            .map(|_| RaftNode::new(config.clone()))
            .collect();
        Self {
            sim: Simulation::new(nodes, network, seed),
            submitted: Vec::new(),
            next_command: 0,
        }
    }

    /// Builds a Raft cluster whose nodes adopt the given behaviour when turned Byzantine.
    pub fn with_byzantine_plan(
        config: RaftConfig,
        plan: ByzantineBehavior,
        network: NetworkConfig,
        seed: u64,
    ) -> Self {
        let nodes = (0..config.n)
            .map(|_| RaftNode::new(config.clone()).with_byzantine_plan(plan))
            .collect();
        Self {
            sim: Simulation::new(nodes, network, seed),
            submitted: Vec::new(),
            next_command: 0,
        }
    }

    /// Installs a fault schedule.
    pub fn with_faults(mut self, schedule: &FaultSchedule) -> Self {
        self.sim = self.sim.with_fault_schedule(schedule);
        self
    }

    /// Submits `count` fresh commands; clients broadcast each request to every node.
    pub fn submit_commands(&mut self, count: usize) {
        for _ in 0..count {
            self.next_command += 1;
            let command = Command(self.next_command);
            self.submitted.push(command);
            for node in 0..self.sim.num_nodes() {
                self.sim.inject(node, RaftMessage::ClientRequest(command));
            }
        }
    }

    /// Runs the cluster for `millis` of virtual time and evaluates the outcome.
    pub fn run_for_millis(&mut self, millis: u64) -> ClusterOutcome {
        let deadline = self.sim.now() + SimTime::from_millis(millis);
        self.sim.run_until(deadline);
        evaluate(&self.sim, &self.submitted)
    }

    /// The underlying simulation (for inspection in tests).
    pub fn sim(&self) -> &Simulation<RaftMessage, RaftNode> {
        &self.sim
    }

    /// The commands submitted so far.
    pub fn submitted(&self) -> &[Command] {
        &self.submitted
    }
}

/// Which executable protocol a batched simulation trial runs.
///
/// This is the unit of the batch-trial API ([`run_trial`]) that the analysis
/// layer's simulation engine fans out in parallel: a plain value describing the
/// protocol configuration, so thousands of independent trials can be spawned from
/// one spec without sharing any simulator state.
#[derive(Debug, Clone)]
pub enum TrialProtocol {
    /// Raft with the given configuration (quorum sizes, timeouts, priorities).
    Raft(RaftConfig),
    /// PBFT with the given configuration; injected Byzantine nodes stay silent.
    Pbft(PbftConfig),
}

/// One batched simulation trial: which protocol to run, over which network, with
/// how much workload and virtual time.
#[derive(Debug, Clone)]
pub struct TrialSpec {
    /// The protocol and its configuration.
    pub protocol: TrialProtocol,
    /// The network model every trial runs on.
    pub network: NetworkConfig,
    /// Number of client commands submitted at the start of the trial.
    pub commands: usize,
    /// Virtual time the trial runs for, in milliseconds.
    pub horizon_millis: u64,
}

impl TrialSpec {
    /// A standard-quorum Raft trial over a LAN: `commands` client commands with
    /// `horizon_millis` of virtual time to commit them.
    pub fn raft(n: usize, commands: usize, horizon_millis: u64) -> Self {
        Self {
            protocol: TrialProtocol::Raft(RaftConfig::standard(n)),
            network: NetworkConfig::lan(),
            commands,
            horizon_millis,
        }
    }

    /// A standard PBFT trial over a LAN.
    pub fn pbft(n: usize, commands: usize, horizon_millis: u64) -> Self {
        Self {
            protocol: TrialProtocol::Pbft(PbftConfig::standard(n)),
            network: NetworkConfig::lan(),
            commands,
            horizon_millis,
        }
    }

    /// Replaces the network model.
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Pins node 0 as the preferred leader: for Raft, installs the identity
    /// election priority so node 0 wins the first election (and re-elections
    /// prefer the lowest-ranked live node); PBFT already starts with node 0 as
    /// the view-0 primary, so this is a no-op there. Fault environments that
    /// target "the primary" use this so gray failures land on the node that
    /// actually leads.
    pub fn with_pinned_leader(mut self) -> Self {
        if let TrialProtocol::Raft(config) = self.protocol {
            let n = config.n;
            self.protocol = TrialProtocol::Raft(config.with_election_priority((0..n).collect()));
        }
        self
    }

    /// Cluster size of the trial.
    pub fn num_nodes(&self) -> usize {
        match &self.protocol {
            TrialProtocol::Raft(config) => config.n,
            TrialProtocol::Pbft(config) => config.n,
        }
    }
}

/// The verdict of one batched trial, with the trace-derived statistics the
/// time-domain analysis layer aggregates across a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialOutcome {
    /// The safety/liveness verdict and per-node commit state.
    pub outcome: ClusterOutcome,
    /// Leader elections (Raft: highest term reached; PBFT: highest view reached)
    /// among nodes still correct at the end of the run. Zero means the initial
    /// leader/primary was never displaced.
    pub leader_changes: u64,
    /// Commands decided at *every* correct node (the shortest committed log).
    pub decided_commands: usize,
    /// The simulator's counters (messages, drops, timer fires, fault events).
    pub stats: TraceStats,
}

/// Runs one deterministic simulation trial: builds the cluster described by
/// `spec`, installs `schedule`, submits the workload, runs the virtual clock out,
/// and evaluates the outcome. Identical `(spec, schedule, seed)` triples produce
/// identical outcomes, which is what lets a batch of trials be fanned out across
/// threads and still be reproducible.
pub fn run_trial(spec: &TrialSpec, schedule: &FaultSchedule, seed: u64) -> TrialOutcome {
    match &spec.protocol {
        TrialProtocol::Raft(config) => {
            let mut harness = RaftHarness::with_config(config.clone(), spec.network.clone(), seed)
                .with_faults(schedule);
            harness.submit_commands(spec.commands);
            let outcome = harness.run_for_millis(spec.horizon_millis);
            let leader_changes = outcome
                .correct_nodes
                .iter()
                .map(|&i| harness.sim().node(i).current_term())
                .max()
                .unwrap_or(0)
                .saturating_sub(1);
            let decided_commands = outcome.committed_lengths.iter().min().copied().unwrap_or(0);
            TrialOutcome {
                leader_changes,
                decided_commands,
                stats: harness.sim().stats(),
                outcome,
            }
        }
        TrialProtocol::Pbft(config) => {
            let mut harness = PbftHarness::with_config(
                config.clone(),
                ByzantineBehavior::Silent,
                spec.network.clone(),
                seed,
            )
            .with_faults(schedule);
            harness.submit_commands(spec.commands);
            let outcome = harness.run_for_millis(spec.horizon_millis);
            let leader_changes = outcome
                .correct_nodes
                .iter()
                .map(|&i| harness.sim().node(i).view())
                .max()
                .unwrap_or(0);
            let decided_commands = outcome.committed_lengths.iter().min().copied().unwrap_or(0);
            TrialOutcome {
                leader_changes,
                decided_commands,
                stats: harness.sim().stats(),
                outcome,
            }
        }
    }
}

/// A PBFT cluster harness.
pub struct PbftHarness {
    sim: Simulation<PbftMessage, PbftNode>,
    submitted: Vec<Command>,
    next_command: u64,
}

impl PbftHarness {
    /// Builds a standard PBFT cluster of `n` nodes.
    pub fn new(n: usize, network: NetworkConfig, seed: u64) -> Self {
        Self::with_config(
            PbftConfig::standard(n),
            ByzantineBehavior::Silent,
            network,
            seed,
        )
    }

    /// Builds a PBFT cluster with a custom configuration and Byzantine plan.
    pub fn with_config(
        config: PbftConfig,
        plan: ByzantineBehavior,
        network: NetworkConfig,
        seed: u64,
    ) -> Self {
        let nodes = (0..config.n)
            .map(|_| PbftNode::new(config.clone()).with_byzantine_plan(plan))
            .collect();
        Self {
            sim: Simulation::new(nodes, network, seed),
            submitted: Vec::new(),
            next_command: 0,
        }
    }

    /// Installs a fault schedule.
    pub fn with_faults(mut self, schedule: &FaultSchedule) -> Self {
        self.sim = self.sim.with_fault_schedule(schedule);
        self
    }

    /// Submits `count` fresh commands; clients broadcast each request to every replica.
    pub fn submit_commands(&mut self, count: usize) {
        for _ in 0..count {
            self.next_command += 1;
            let command = Command(self.next_command);
            self.submitted.push(command);
            for node in 0..self.sim.num_nodes() {
                self.sim.inject(node, PbftMessage::ClientRequest(command));
            }
        }
    }

    /// Runs the cluster for `millis` of virtual time and evaluates the outcome.
    pub fn run_for_millis(&mut self, millis: u64) -> ClusterOutcome {
        let deadline = self.sim.now() + SimTime::from_millis(millis);
        self.sim.run_until(deadline);
        evaluate(&self.sim, &self.submitted)
    }

    /// The underlying simulation (for inspection in tests).
    pub fn sim(&self) -> &Simulation<PbftMessage, PbftNode> {
        &self.sim
    }

    /// The commands submitted so far.
    pub fn submitted(&self) -> &[Command] {
        &self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_raft_cluster_commits_everything() {
        let mut h = RaftHarness::new(5, NetworkConfig::lan(), 1);
        h.submit_commands(20);
        let outcome = h.run_for_millis(3_000);
        assert!(outcome.agreement);
        assert!(
            outcome.all_committed,
            "lengths {:?}",
            outcome.committed_lengths
        );
        assert!(outcome.safe_and_live());
        assert_eq!(outcome.correct_nodes.len(), 5);
    }

    #[test]
    fn raft_survives_a_minority_of_crashes() {
        let schedule = FaultSchedule::none()
            .crash_at(3, SimTime::from_millis(10))
            .crash_at(4, SimTime::from_millis(400));
        let mut h = RaftHarness::new(5, NetworkConfig::lan(), 2).with_faults(&schedule);
        h.submit_commands(10);
        let outcome = h.run_for_millis(4_000);
        assert!(outcome.agreement);
        assert!(outcome.all_committed);
        assert_eq!(outcome.correct_nodes, vec![0, 1, 2]);
    }

    #[test]
    fn raft_loses_liveness_but_not_safety_under_majority_crashes() {
        let schedule = FaultSchedule::none()
            .crash_at(2, SimTime::from_millis(5))
            .crash_at(3, SimTime::from_millis(5))
            .crash_at(4, SimTime::from_millis(5));
        let mut h = RaftHarness::new(5, NetworkConfig::lan(), 3).with_faults(&schedule);
        h.submit_commands(5);
        let outcome = h.run_for_millis(3_000);
        assert!(outcome.agreement, "crashes must never break agreement");
        assert!(
            !outcome.all_committed,
            "a majority is gone; nothing can commit"
        );
    }

    #[test]
    fn raft_elects_a_new_leader_when_the_leader_crashes() {
        // Let a leader emerge and replicate, then kill it mid-run.
        let schedule = FaultSchedule::none().crash_at(0, SimTime::from_millis(1_000));
        let config = RaftConfig::standard(5).with_election_priority(vec![0, 1, 2, 3, 4]);
        let mut h =
            RaftHarness::with_config(config, NetworkConfig::lan(), 4).with_faults(&schedule);
        h.submit_commands(5);
        h.run_for_millis(900);
        h.submit_commands(5);
        let outcome = h.run_for_millis(5_000);
        assert!(outcome.agreement);
        assert!(
            outcome.all_committed,
            "lengths {:?}",
            outcome.committed_lengths
        );
        assert!(!outcome.correct_nodes.contains(&0));
    }

    #[test]
    fn healthy_pbft_cluster_commits_everything() {
        let mut h = PbftHarness::new(4, NetworkConfig::lan(), 5);
        h.submit_commands(10);
        let outcome = h.run_for_millis(4_000);
        assert!(outcome.agreement);
        assert!(
            outcome.all_committed,
            "lengths {:?}",
            outcome.committed_lengths
        );
    }

    #[test]
    fn pbft_survives_f_silent_byzantine_nodes() {
        let schedule = FaultSchedule::none().byzantine_at(3, SimTime::from_millis(1));
        let mut h = PbftHarness::with_config(
            PbftConfig::standard(4),
            ByzantineBehavior::Silent,
            NetworkConfig::lan(),
            6,
        )
        .with_faults(&schedule);
        h.submit_commands(8);
        let outcome = h.run_for_millis(5_000);
        assert!(outcome.agreement);
        assert!(
            outcome.all_committed,
            "lengths {:?}",
            outcome.committed_lengths
        );
        assert_eq!(outcome.correct_nodes, vec![0, 1, 2]);
    }

    #[test]
    fn pbft_changes_view_when_the_primary_crashes() {
        let schedule = FaultSchedule::none().crash_at(0, SimTime::from_millis(1));
        let mut h = PbftHarness::new(4, NetworkConfig::lan(), 7).with_faults(&schedule);
        h.submit_commands(5);
        let outcome = h.run_for_millis(8_000);
        assert!(outcome.agreement);
        assert!(
            outcome.all_committed,
            "lengths {:?}",
            outcome.committed_lengths
        );
        // Some correct node moved past view 0.
        assert!(outcome
            .correct_nodes
            .iter()
            .any(|&i| h.sim().node(i).view() > 0));
    }

    #[test]
    fn raft_reelects_away_from_a_gray_leader() {
        // Node 0 wins the first election (priority), replicates a batch, then goes
        // gray at t=1s: alive, correct, but 1000x slow. Its heartbeats stop arriving
        // within the followers' 150–300 ms election timeout, so the cluster must
        // re-elect — without ever marking node 0 faulty.
        let schedule = FaultSchedule::none().slow_down_at(0, 1_000.0, SimTime::from_millis(1_000));
        let config = RaftConfig::standard(5).with_election_priority(vec![0, 1, 2, 3, 4]);
        let mut h =
            RaftHarness::with_config(config, NetworkConfig::lan(), 21).with_faults(&schedule);
        h.submit_commands(5);
        h.run_for_millis(900);
        h.submit_commands(5);
        let outcome = h.run_for_millis(6_000);
        assert!(outcome.agreement, "gray failure must never break safety");
        assert_eq!(
            outcome.correct_nodes,
            vec![0, 1, 2, 3, 4],
            "a slow node is still correct"
        );
        let max_term = (0..5)
            .map(|i| h.sim().node(i).current_term())
            .max()
            .unwrap();
        assert!(
            max_term > 1,
            "followers must elect a new leader away from the gray one, term {max_term}"
        );
        // The healthy majority keeps committing; the gray node itself lags behind —
        // progress is made, just not by everyone.
        assert_eq!(*outcome.committed_lengths.iter().max().unwrap(), 10);
    }

    #[test]
    fn raft_partition_heal_restores_progress() {
        // A 2/3 split of a 5-node cluster with the pinned leader in the minority:
        // no quorum on the leader's side, so commits stall until the scheduled heal.
        let schedule = FaultSchedule::none()
            .partition_at(vec![vec![0, 1], vec![2, 3, 4]], SimTime::from_millis(700))
            .heal_at(SimTime::from_millis(2_500));
        let config = RaftConfig::standard(5).with_election_priority(vec![0, 1, 2, 3, 4]);
        let mut h =
            RaftHarness::with_config(config, NetworkConfig::lan(), 22).with_faults(&schedule);
        h.submit_commands(5);
        h.run_for_millis(800); // past the partition start
        h.submit_commands(5);
        let mid = h.run_for_millis(1_500); // now at 2.3s, partition still active
        assert!(
            !mid.all_committed,
            "the second batch cannot commit across the partition, lengths {:?}",
            mid.committed_lengths
        );
        let outcome = h.run_for_millis(6_000);
        assert!(outcome.agreement);
        assert!(
            outcome.all_committed,
            "after the heal every node catches up, lengths {:?}",
            outcome.committed_lengths
        );
    }

    #[test]
    fn pbft_gray_primary_trips_the_view_change_watchdog() {
        // The view-0 primary goes gray immediately: alive but 1000x slow, so its
        // pre-prepares arrive long after the replicas' 300 ms progress watchdog
        // fires. The watchdog path — not crash detection — must rotate the view.
        let schedule = FaultSchedule::none().slow_down_at(0, 1_000.0, SimTime::from_millis(1));
        let mut h = PbftHarness::new(4, NetworkConfig::lan(), 23).with_faults(&schedule);
        h.submit_commands(5);
        let outcome = h.run_for_millis(8_000);
        assert!(outcome.agreement, "gray primary must never break safety");
        assert_eq!(
            outcome.correct_nodes,
            vec![0, 1, 2, 3],
            "the gray primary is never marked faulty"
        );
        assert!(
            (1..4).any(|i| h.sim().node(i).view() > 0),
            "replicas must vote the gray primary out via the watchdog"
        );
        // The three healthy replicas form a quorum and keep deciding; given a long
        // enough horizon even the gray node's stretched deliveries land.
        assert!(
            outcome.all_committed,
            "view changes restore progress, lengths {:?}",
            outcome.committed_lengths
        );
    }

    #[test]
    fn pbft_partition_heal_restores_progress() {
        // Isolate the primary, then heal: the majority side changes view and
        // commits; after the heal the old primary rejoins without breaking safety.
        let schedule = FaultSchedule::none()
            .partition_at(vec![vec![0], vec![1, 2, 3]], SimTime::from_millis(1))
            .heal_at(SimTime::from_millis(3_000));
        let mut h = PbftHarness::new(4, NetworkConfig::lan(), 24).with_faults(&schedule);
        h.submit_commands(5);
        let outcome = h.run_for_millis(10_000);
        assert!(outcome.agreement);
        assert!(
            (1..4).any(|i| h.sim().node(i).view() > 0),
            "the majority side must move past the isolated primary's view"
        );
        assert!(
            outcome.committed_lengths.iter().any(|&l| l >= 5),
            "the healed cluster commits the workload, lengths {:?}",
            outcome.committed_lengths
        );
    }

    #[test]
    fn pbft_stays_safe_under_an_equivocating_primary() {
        let schedule = FaultSchedule::none().byzantine_at(0, SimTime::from_millis(1));
        let mut h = PbftHarness::with_config(
            PbftConfig::standard(4),
            ByzantineBehavior::Equivocate,
            NetworkConfig::lan(),
            8,
        )
        .with_faults(&schedule);
        h.submit_commands(5);
        let outcome = h.run_for_millis(10_000);
        assert!(outcome.agreement, "equivocation must not break agreement");
        assert!(outcome.all_committed, "view change should restore progress");
    }

    #[test]
    fn raft_agreement_breaks_with_a_byzantine_leader() {
        // Raft is a CFT protocol: a Byzantine (equivocating) leader violates agreement,
        // which is exactly why RaftModel::is_safe requires zero Byzantine nodes. Turn the
        // preferred leader Byzantine before anything commits.
        let schedule = FaultSchedule::none().byzantine_at(0, SimTime::from_millis(1));
        let config = RaftConfig::standard(3).with_election_priority(vec![0, 1, 2]);
        let mut h = RaftHarness::with_byzantine_plan(
            config,
            ByzantineBehavior::Equivocate,
            NetworkConfig::lan(),
            9,
        )
        .with_faults(&schedule);
        h.submit_commands(3);
        let outcome = h.run_for_millis(4_000);
        // The Byzantine node is excluded from the correct set; the remaining followers
        // were fed conflicting logs by the equivocating leader.
        assert!(
            !outcome.agreement || !outcome.all_committed,
            "a Byzantine leader must damage agreement or progress"
        );
    }

    #[test]
    fn outcome_reports_message_costs() {
        let mut h = RaftHarness::new(3, NetworkConfig::lan(), 10);
        h.submit_commands(2);
        let outcome = h.run_for_millis(1_000);
        assert!(outcome.messages_delivered > 0);
    }

    #[test]
    fn run_trial_is_deterministic_per_seed() {
        let spec = TrialSpec::raft(5, 4, 3_000);
        let schedule = FaultSchedule::none().crash_at(1, SimTime::from_millis(200));
        let a = run_trial(&spec, &schedule, 42);
        let b = run_trial(&spec, &schedule, 42);
        assert_eq!(a, b);
        assert!(a.outcome.safe_and_live());
        assert_eq!(a.decided_commands, 4);
        assert!(a.stats.messages_delivered > 0);
        assert_eq!(a.stats.crashes, 1);
    }

    #[test]
    fn raft_trial_counts_leader_displacements() {
        // A healthy run elects once (term 1) and never displaces: zero changes.
        let healthy = run_trial(&TrialSpec::raft(3, 2, 2_000), &FaultSchedule::none(), 11);
        assert_eq!(healthy.leader_changes, 0);
        // Killing the preferred leader mid-run forces a re-election (term >= 2).
        let config = RaftConfig::standard(5).with_election_priority(vec![0, 1, 2, 3, 4]);
        let spec = TrialSpec {
            protocol: TrialProtocol::Raft(config),
            network: NetworkConfig::lan(),
            commands: 3,
            horizon_millis: 5_000,
        };
        let schedule = FaultSchedule::none().crash_at(0, SimTime::from_millis(1_000));
        let displaced = run_trial(&spec, &schedule, 12);
        assert!(
            displaced.leader_changes >= 1,
            "a crashed leader must force an election: {displaced:?}"
        );
    }

    #[test]
    fn pbft_trial_reports_views_and_quorum_loss() {
        let spec = TrialSpec::pbft(4, 3, 6_000);
        // Crashing the primary forces at least one view change.
        let schedule = FaultSchedule::none().crash_at(0, SimTime::from_millis(1));
        let trial = run_trial(&spec, &schedule, 13);
        assert!(trial.outcome.agreement);
        assert!(
            trial.leader_changes >= 1,
            "primary crash forces a view change"
        );
        // 2f + 1 crashes kill liveness; the trial records the shortfall.
        let fatal = FaultSchedule::none()
            .crash_at(0, SimTime::from_millis(1))
            .crash_at(1, SimTime::from_millis(1));
        let stalled = run_trial(&spec, &fatal, 14);
        assert!(stalled.outcome.agreement);
        assert!(!stalled.outcome.all_committed);
        assert_eq!(stalled.decided_commands, 0);
    }

    #[test]
    fn trial_spec_reports_cluster_size() {
        assert_eq!(TrialSpec::raft(7, 1, 100).num_nodes(), 7);
        assert_eq!(TrialSpec::pbft(4, 1, 100).num_nodes(), 4);
    }
}
