//! A PBFT-style BFT replication protocol on the discrete-event simulator.
//!
//! The implementation follows the structure §3.1 of the paper describes: a
//! non-equivocation/prepare phase, a persistence/commit phase, and view changes with a
//! trigger quorum, each with configurable sizes (`|Q_eq|`, `|Q_per|`, `|Q_vc|`,
//! `|Q_vc_t|`). It is deliberately compact — no checkpoints, no watermarks, single-shot
//! sequence numbers — but preserves the quorum logic the paper's Theorem 3.1 reasons
//! about, which is what the simulation-validation experiments exercise.

use std::collections::{BTreeMap, HashMap, HashSet};

use consensus_sim::actor::{Actor, Context};
use consensus_sim::time::SimTime;

use crate::byzantine::ByzantineBehavior;
use crate::common::{Command, ReplicatedLog};

/// Timer tag used for the liveness / view-change watchdog.
const PROGRESS_TIMER: u64 = 11;

/// Static configuration of a PBFT replica.
#[derive(Debug, Clone, PartialEq)]
pub struct PbftConfig {
    /// Cluster size.
    pub n: usize,
    /// Prepare (non-equivocation) quorum size, `|Q_eq|`.
    pub prepare_quorum: usize,
    /// Commit (persistence) quorum size, `|Q_per|`.
    pub commit_quorum: usize,
    /// View-change quorum size, `|Q_vc|`.
    pub view_change_quorum: usize,
    /// View-change trigger quorum size, `|Q_vc_t|`.
    pub view_change_trigger: usize,
    /// How long a replica waits for progress before voting for a view change.
    pub view_timeout: SimTime,
}

impl PbftConfig {
    /// The standard PBFT configuration for `n = 3f + 1`-style clusters (the Table 1
    /// layout): `|Q_eq| = |Q_per| = |Q_vc| = N − f`, `|Q_vc_t| = f + 1`.
    pub fn standard(n: usize) -> Self {
        assert!(n >= 4, "PBFT needs at least 4 nodes");
        let f = (n - 1) / 3;
        Self {
            n,
            prepare_quorum: n - f,
            commit_quorum: n - f,
            view_change_quorum: n - f,
            view_change_trigger: f + 1,
            view_timeout: SimTime::from_millis(300),
        }
    }

    /// Overrides the quorum sizes.
    pub fn with_quorums(
        mut self,
        prepare: usize,
        commit: usize,
        view_change: usize,
        trigger: usize,
    ) -> Self {
        for q in [prepare, commit, view_change, trigger] {
            assert!((1..=self.n).contains(&q), "quorum sizes must be in 1..=N");
        }
        self.prepare_quorum = prepare;
        self.commit_quorum = commit;
        self.view_change_quorum = view_change;
        self.view_change_trigger = trigger;
        self
    }

    /// The nominal fault threshold implied by the commit quorum.
    pub fn nominal_f(&self) -> usize {
        self.n - self.commit_quorum
    }
}

/// Messages exchanged by PBFT replicas.
#[derive(Debug, Clone)]
pub enum PbftMessage {
    /// A client submits a command (injected to every replica).
    ClientRequest(Command),
    /// The primary assigns a sequence number to a command.
    PrePrepare {
        /// View in which the assignment was made.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// The command.
        command: Command,
    },
    /// A replica acknowledges a pre-prepare (the non-equivocation phase).
    Prepare {
        /// View.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// The command being prepared.
        command: Command,
    },
    /// A replica has collected a prepare quorum (the persistence phase).
    Commit {
        /// View.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// The command being committed.
        command: Command,
    },
    /// A replica votes to move to a new view, carrying its prepared entries.
    ViewChange {
        /// The proposed new view.
        new_view: u64,
        /// Entries this replica has prepared: `(seq, command, view)`.
        prepared: Vec<(u64, Command, u64)>,
    },
    /// The new primary announces the new view and the entries to re-propose.
    NewView {
        /// The new view.
        view: u64,
        /// Entries carried over from prepared certificates.
        proposals: Vec<(u64, Command)>,
    },
}

/// Per-sequence-number bookkeeping.
#[derive(Debug, Default, Clone)]
struct Slot {
    /// The command this replica accepted a pre-prepare for (per view).
    accepted: Option<(u64, Command)>,
    /// Prepare votes seen, keyed by command.
    prepares: HashMap<Command, HashSet<usize>>,
    /// Commit votes seen, keyed by command.
    commits: HashMap<Command, HashSet<usize>>,
    /// Whether this replica reached the prepared state, and for which command/view.
    prepared: Option<(u64, Command)>,
    /// Whether a commit quorum was observed, and for which command.
    committed: Option<Command>,
    /// Whether this replica already broadcast its commit vote.
    commit_sent: bool,
}

/// A PBFT replica.
#[derive(Debug)]
pub struct PbftNode {
    config: PbftConfig,
    view: u64,
    next_seq: u64,
    slots: BTreeMap<u64, Slot>,
    /// Commands waiting to be assigned a sequence number.
    pending: Vec<Command>,
    /// Commands already assigned (to avoid double-assignment by the primary).
    assigned: HashSet<Command>,
    /// View-change votes seen per proposed view.
    view_change_votes: HashMap<u64, HashSet<usize>>,
    /// Prepared entries carried by view-change votes, per proposed view.
    view_change_prepared: HashMap<u64, Vec<(u64, Command, u64)>>,
    /// Whether this replica already voted for a given new view.
    voted_view_change: HashSet<u64>,
    /// Progress watchdog: number of executed entries at the last timer tick.
    last_progress: usize,
    byzantine_plan: ByzantineBehavior,
    behavior: ByzantineBehavior,
}

impl PbftNode {
    /// Creates a replica with the given configuration.
    pub fn new(config: PbftConfig) -> Self {
        Self {
            config,
            view: 0,
            next_seq: 0,
            slots: BTreeMap::new(),
            pending: Vec::new(),
            assigned: HashSet::new(),
            view_change_votes: HashMap::new(),
            view_change_prepared: HashMap::new(),
            voted_view_change: HashSet::new(),
            last_progress: 0,
            byzantine_plan: ByzantineBehavior::Silent,
            behavior: ByzantineBehavior::Honest,
        }
    }

    /// Sets the behaviour this node adopts if it is turned Byzantine.
    pub fn with_byzantine_plan(mut self, plan: ByzantineBehavior) -> Self {
        self.byzantine_plan = plan;
        self
    }

    /// Current view number.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// The primary of the current view.
    pub fn primary(&self) -> usize {
        (self.view as usize) % self.config.n
    }

    /// Whether this node is the current primary.
    pub fn is_primary(&self, id: usize) -> bool {
        self.primary() == id
    }

    fn slot(&mut self, seq: u64) -> &mut Slot {
        self.slots.entry(seq).or_default()
    }

    /// Commands committed in contiguous sequence order.
    fn executed(&self) -> Vec<Command> {
        let mut out = Vec::new();
        let mut seq = 1;
        while let Some(slot) = self.slots.get(&seq) {
            match slot.committed {
                Some(command) => out.push(command),
                None => break,
            }
            seq += 1;
        }
        out
    }

    fn propose_pending(&mut self, ctx: &mut Context<PbftMessage>) {
        if !self.is_primary(ctx.id()) {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        for command in pending {
            if self.assigned.contains(&command) {
                continue;
            }
            self.assigned.insert(command);
            self.next_seq += 1;
            let seq = self.next_seq;
            if self.behavior == ByzantineBehavior::Equivocate {
                // Send a different command to each replica for the same sequence number.
                for to in 0..self.config.n {
                    if to == ctx.id() {
                        continue;
                    }
                    ctx.send(
                        to,
                        PbftMessage::PrePrepare {
                            view: self.view,
                            seq,
                            command: Command(2_000_000 + to as u64),
                        },
                    );
                }
                continue;
            }
            ctx.broadcast(PbftMessage::PrePrepare {
                view: self.view,
                seq,
                command,
            });
            // The primary's pre-prepare doubles as its own accept + prepare vote.
            self.accept_preprepare(ctx.id(), self.view, seq, command, ctx);
        }
    }

    fn accept_preprepare(
        &mut self,
        self_id: usize,
        view: u64,
        seq: u64,
        command: Command,
        ctx: &mut Context<PbftMessage>,
    ) {
        if view != self.view {
            return;
        }
        let slot = self.slot(seq);
        // Non-equivocation: accept at most one command per (view, seq).
        if let Some((v, accepted)) = slot.accepted {
            if v == view && accepted != command {
                return;
            }
        }
        slot.accepted = Some((view, command));
        // Record our own prepare vote and tell everyone else.
        self.record_prepare(self_id, view, seq, command, ctx);
        ctx.broadcast(PbftMessage::Prepare { view, seq, command });
    }

    fn record_prepare(
        &mut self,
        from: usize,
        view: u64,
        seq: u64,
        command: Command,
        ctx: &mut Context<PbftMessage>,
    ) {
        if view != self.view {
            return;
        }
        let prepare_quorum = self.config.prepare_quorum;
        let slot = self.slot(seq);
        slot.prepares.entry(command).or_default().insert(from);
        let votes = slot.prepares[&command].len();
        let already_prepared = slot.prepared.is_some();
        if votes >= prepare_quorum && !already_prepared {
            slot.prepared = Some((view, command));
            // Our own commit vote.
            let slot = self.slot(seq);
            if !slot.commit_sent {
                slot.commit_sent = true;
                ctx.broadcast(PbftMessage::Commit { view, seq, command });
                let self_id = ctx.id();
                self.record_commit(self_id, view, seq, command);
            }
        }
    }

    fn record_commit(&mut self, from: usize, _view: u64, seq: u64, command: Command) {
        let commit_quorum = self.config.commit_quorum;
        let slot = self.slot(seq);
        slot.commits.entry(command).or_default().insert(from);
        if slot.commits[&command].len() >= commit_quorum && slot.committed.is_none() {
            slot.committed = Some(command);
        }
    }

    fn vote_view_change(&mut self, new_view: u64, ctx: &mut Context<PbftMessage>) {
        if self.voted_view_change.contains(&new_view) || new_view <= self.view {
            return;
        }
        self.voted_view_change.insert(new_view);
        let prepared: Vec<(u64, Command, u64)> = self
            .slots
            .iter()
            .filter_map(|(&seq, slot)| slot.prepared.map(|(v, c)| (seq, c, v)))
            .collect();
        let self_id = ctx.id();
        self.record_view_change(self_id, new_view, prepared.clone(), ctx);
        ctx.broadcast(PbftMessage::ViewChange { new_view, prepared });
    }

    fn record_view_change(
        &mut self,
        from: usize,
        new_view: u64,
        prepared: Vec<(u64, Command, u64)>,
        ctx: &mut Context<PbftMessage>,
    ) {
        if new_view <= self.view {
            return;
        }
        self.view_change_votes
            .entry(new_view)
            .or_default()
            .insert(from);
        self.view_change_prepared
            .entry(new_view)
            .or_default()
            .extend(prepared);
        let votes = self.view_change_votes[&new_view].len();
        // Join the view change once the trigger quorum is reached.
        if votes >= self.config.view_change_trigger {
            self.vote_view_change(new_view, ctx);
        }
        // The new primary installs the view once the full view-change quorum is reached.
        let is_new_primary = (new_view as usize) % self.config.n == ctx.id();
        if is_new_primary && votes >= self.config.view_change_quorum {
            self.install_view(new_view, ctx);
        }
    }

    fn install_view(&mut self, new_view: u64, ctx: &mut Context<PbftMessage>) {
        if new_view <= self.view {
            return;
        }
        // Select, per sequence number, the prepared command from the highest view.
        let mut carried: BTreeMap<u64, (u64, Command)> = BTreeMap::new();
        if let Some(entries) = self.view_change_prepared.get(&new_view) {
            for &(seq, command, view) in entries {
                let keep = carried
                    .get(&seq)
                    .is_none_or(|&(existing_view, _)| view > existing_view);
                if keep {
                    carried.insert(seq, (view, command));
                }
            }
        }
        let proposals: Vec<(u64, Command)> =
            carried.iter().map(|(&seq, &(_, c))| (seq, c)).collect();
        self.adopt_view(new_view, &proposals, ctx);
        ctx.broadcast(PbftMessage::NewView {
            view: new_view,
            proposals,
        });
        // Re-propose anything still pending under the new view.
        self.propose_pending(ctx);
    }

    fn adopt_view(
        &mut self,
        new_view: u64,
        proposals: &[(u64, Command)],
        ctx: &mut Context<PbftMessage>,
    ) {
        self.view = new_view;
        self.next_seq = self
            .next_seq
            .max(proposals.iter().map(|&(s, _)| s).max().unwrap_or(0));
        // Treat carried proposals as fresh pre-prepares in the new view so they can
        // (re-)commit.
        for &(seq, command) in proposals {
            let slot = self.slot(seq);
            if slot.committed.is_none() {
                slot.accepted = None;
                slot.prepared = None;
                slot.commit_sent = false;
                let self_id = ctx.id();
                self.accept_preprepare(self_id, new_view, seq, command, ctx);
            }
        }
        ctx.set_timer(self.config.view_timeout, PROGRESS_TIMER);
    }

    fn has_unfinished_work(&self) -> bool {
        !self.pending.is_empty()
            || self
                .slots
                .values()
                .any(|s| s.accepted.is_some() && s.committed.is_none())
    }
}

impl ReplicatedLog for PbftNode {
    fn committed(&self) -> Vec<Command> {
        self.executed()
    }
}

impl Actor<PbftMessage> for PbftNode {
    fn on_start(&mut self, ctx: &mut Context<PbftMessage>) {
        ctx.set_timer(self.config.view_timeout, PROGRESS_TIMER);
    }

    fn on_message(&mut self, from: usize, msg: PbftMessage, ctx: &mut Context<PbftMessage>) {
        if self.behavior == ByzantineBehavior::Silent {
            return;
        }
        match msg {
            PbftMessage::ClientRequest(command) => {
                if !self.assigned.contains(&command) {
                    self.pending.push(command);
                }
                self.propose_pending(ctx);
            }
            PbftMessage::PrePrepare { view, seq, command } => {
                // Only the primary of `view` may assign sequence numbers.
                if from == (view as usize) % self.config.n {
                    self.accept_preprepare(ctx.id(), view, seq, command, ctx);
                }
            }
            PbftMessage::Prepare { view, seq, command } => {
                self.record_prepare(from, view, seq, command, ctx);
            }
            PbftMessage::Commit { view, seq, command } => {
                if view == self.view {
                    self.record_commit(from, view, seq, command);
                }
            }
            PbftMessage::ViewChange { new_view, prepared } => {
                self.record_view_change(from, new_view, prepared, ctx);
            }
            PbftMessage::NewView { view, proposals } => {
                if from == (view as usize) % self.config.n && view > self.view {
                    self.adopt_view(view, &proposals, ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<PbftMessage>) {
        if self.behavior == ByzantineBehavior::Silent {
            return;
        }
        if tag != PROGRESS_TIMER {
            return;
        }
        let executed = self.executed().len();
        if self.has_unfinished_work() && executed == self.last_progress {
            // No progress since the last tick: vote to change the view. If earlier view
            // changes went nowhere (e.g. the next primary is also down), keep escalating.
            let highest_voted = self.voted_view_change.iter().max().copied().unwrap_or(0);
            let next = self.view.max(highest_voted) + 1;
            self.vote_view_change(next, ctx);
        }
        self.last_progress = executed;
        ctx.set_timer(self.config.view_timeout, PROGRESS_TIMER);
    }

    fn on_recover(&mut self, ctx: &mut Context<PbftMessage>) {
        ctx.set_timer(self.config.view_timeout, PROGRESS_TIMER);
    }

    fn on_turn_byzantine(&mut self) {
        self.behavior = self.byzantine_plan;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consensus_sim::actor::Context;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx_for<'a>(id: usize, n: usize, rng: &'a mut StdRng) -> Context<'a, PbftMessage> {
        Context::new(id, SimTime::ZERO, n, rng)
    }

    #[test]
    fn standard_config_matches_table1_quorums() {
        let c = PbftConfig::standard(7);
        assert_eq!(c.prepare_quorum, 5);
        assert_eq!(c.commit_quorum, 5);
        assert_eq!(c.view_change_quorum, 5);
        assert_eq!(c.view_change_trigger, 3);
        assert_eq!(c.nominal_f(), 2);
    }

    #[test]
    fn primary_rotates_with_the_view() {
        let mut node = PbftNode::new(PbftConfig::standard(4));
        assert_eq!(node.primary(), 0);
        node.view = 5;
        assert_eq!(node.primary(), 1);
    }

    #[test]
    fn a_slot_commits_after_prepare_and_commit_quorums() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = PbftConfig::standard(4);
        let mut node = PbftNode::new(config);
        // Node 1 accepts a pre-prepare from the primary (node 0).
        let mut ctx = ctx_for(1, 4, &mut rng);
        node.on_message(
            0,
            PbftMessage::PrePrepare {
                view: 0,
                seq: 1,
                command: Command(9),
            },
            &mut ctx,
        );
        // Prepares from nodes 0 and 2 (plus our own) reach the quorum of 3.
        for from in [0usize, 2] {
            let mut ctx = ctx_for(1, 4, &mut rng);
            node.on_message(
                from,
                PbftMessage::Prepare {
                    view: 0,
                    seq: 1,
                    command: Command(9),
                },
                &mut ctx,
            );
        }
        assert!(node.slots[&1].prepared.is_some());
        // Commits from nodes 0 and 2 (plus our own) reach the quorum of 3.
        for from in [0usize, 2] {
            let mut ctx = ctx_for(1, 4, &mut rng);
            node.on_message(
                from,
                PbftMessage::Commit {
                    view: 0,
                    seq: 1,
                    command: Command(9),
                },
                &mut ctx,
            );
        }
        assert_eq!(node.committed(), vec![Command(9)]);
    }

    #[test]
    fn conflicting_preprepare_for_same_slot_is_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut node = PbftNode::new(PbftConfig::standard(4));
        let mut ctx = ctx_for(1, 4, &mut rng);
        node.on_message(
            0,
            PbftMessage::PrePrepare {
                view: 0,
                seq: 1,
                command: Command(1),
            },
            &mut ctx,
        );
        let mut ctx = ctx_for(1, 4, &mut rng);
        node.on_message(
            0,
            PbftMessage::PrePrepare {
                view: 0,
                seq: 1,
                command: Command(2),
            },
            &mut ctx,
        );
        assert_eq!(node.slots[&1].accepted, Some((0, Command(1))));
    }

    #[test]
    fn preprepare_from_non_primary_is_ignored() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut node = PbftNode::new(PbftConfig::standard(4));
        let mut ctx = ctx_for(1, 4, &mut rng);
        node.on_message(
            2,
            PbftMessage::PrePrepare {
                view: 0,
                seq: 1,
                command: Command(5),
            },
            &mut ctx,
        );
        assert!(node.slots.get(&1).is_none_or(|s| s.accepted.is_none()));
    }

    #[test]
    fn commit_requires_the_full_commit_quorum() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut node = PbftNode::new(PbftConfig::standard(7));
        let mut ctx = ctx_for(1, 7, &mut rng);
        node.on_message(
            0,
            PbftMessage::PrePrepare {
                view: 0,
                seq: 1,
                command: Command(3),
            },
            &mut ctx,
        );
        // Only 3 commit votes (quorum is 5): must not commit.
        for from in [0usize, 2, 3] {
            let mut ctx = ctx_for(1, 7, &mut rng);
            node.on_message(
                from,
                PbftMessage::Commit {
                    view: 0,
                    seq: 1,
                    command: Command(3),
                },
                &mut ctx,
            );
        }
        assert!(node.committed().is_empty());
    }

    #[test]
    fn view_change_trigger_quorum_makes_nodes_join() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut node = PbftNode::new(PbftConfig::standard(4));
        // f+1 = 2 view-change votes from others make this node join even though its own
        // timer never fired.
        for from in [1usize, 2] {
            let mut ctx = ctx_for(3, 4, &mut rng);
            node.on_message(
                from,
                PbftMessage::ViewChange {
                    new_view: 1,
                    prepared: vec![],
                },
                &mut ctx,
            );
        }
        assert!(node.voted_view_change.contains(&1));
    }

    #[test]
    fn new_primary_installs_view_after_quorum() {
        let mut rng = StdRng::seed_from_u64(6);
        // Node 1 is the primary of view 1.
        let mut node = PbftNode::new(PbftConfig::standard(4));
        for from in [0usize, 2, 3] {
            let mut ctx = ctx_for(1, 4, &mut rng);
            node.on_message(
                from,
                PbftMessage::ViewChange {
                    new_view: 1,
                    prepared: vec![(1, Command(8), 0)],
                },
                &mut ctx,
            );
        }
        assert_eq!(node.view(), 1);
        // The prepared entry is carried over and re-accepted in the new view.
        assert_eq!(node.slots[&1].accepted, Some((1, Command(8))));
    }

    #[test]
    fn silent_byzantine_nodes_ignore_everything() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut node = PbftNode::new(PbftConfig::standard(4));
        node.on_turn_byzantine();
        let mut ctx = ctx_for(1, 4, &mut rng);
        node.on_message(0, PbftMessage::ClientRequest(Command(1)), &mut ctx);
        assert!(node.pending.is_empty());
    }
}
