//! An executable Raft implementation on the discrete-event simulator.
//!
//! The implementation follows the core of the Raft paper — randomized election
//! timeouts, term-based leader election with the log-up-to-date restriction, log
//! replication with conflict truncation, and majority commitment — with two
//! probabilistic-consensus extensions from §4 of the HotOS paper:
//!
//! * configurable persistence (`commit_quorum`) and election (`election_quorum`) sizes,
//!   so Flexible-Paxos style and dynamically-sized quorums can be exercised, and
//! * optional *election priorities*: a reliability ranking that staggers election
//!   timeouts so the most reliable node wins elections first (reliability-aware leader
//!   selection).

use consensus_sim::actor::{Actor, Context};
use consensus_sim::time::SimTime;

use crate::byzantine::ByzantineBehavior;
use crate::common::{Command, LogEntry, ReplicatedLog};

/// Raft timer tags.
const ELECTION_TIMER: u64 = 1;
const HEARTBEAT_TIMER: u64 = 2;

/// The role a Raft node currently plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Passive replica following a leader.
    Follower,
    /// Competing for leadership in the current term.
    Candidate,
    /// The (unique, per term) leader.
    Leader,
}

/// Static configuration of a Raft cluster member.
#[derive(Debug, Clone, PartialEq)]
pub struct RaftConfig {
    /// Cluster size.
    pub n: usize,
    /// Number of replicas (including the leader) that must hold an entry before it
    /// commits — `|Q_per|` in the paper's notation. Majority by default.
    pub commit_quorum: usize,
    /// Number of votes (including the candidate) required to win an election —
    /// `|Q_vc|` in the paper's notation. Majority by default.
    pub election_quorum: usize,
    /// Lower bound of the randomized election timeout.
    pub election_timeout_min: SimTime,
    /// Upper bound of the randomized election timeout.
    pub election_timeout_max: SimTime,
    /// Heartbeat (empty AppendEntries) interval for leaders.
    pub heartbeat_interval: SimTime,
    /// Optional election priorities: `priority[i]` is node `i`'s rank (0 = preferred
    /// leader). Lower ranks use shorter election timeouts, so the most reliable node
    /// tends to win. `None` means uniform random timeouts (standard Raft).
    pub election_priority: Option<Vec<usize>>,
}

impl RaftConfig {
    /// The standard configuration: majority quorums, 150–300 ms election timeouts,
    /// 50 ms heartbeats.
    pub fn standard(n: usize) -> Self {
        assert!(n > 0);
        let majority = n / 2 + 1;
        Self {
            n,
            commit_quorum: majority,
            election_quorum: majority,
            election_timeout_min: SimTime::from_millis(150),
            election_timeout_max: SimTime::from_millis(300),
            heartbeat_interval: SimTime::from_millis(50),
            election_priority: None,
        }
    }

    /// Overrides the quorum sizes (Flexible-Paxos style).
    pub fn with_quorums(mut self, commit_quorum: usize, election_quorum: usize) -> Self {
        assert!((1..=self.n).contains(&commit_quorum));
        assert!((1..=self.n).contains(&election_quorum));
        self.commit_quorum = commit_quorum;
        self.election_quorum = election_quorum;
        self
    }

    /// Installs reliability-aware election priorities (rank per node, 0 = best).
    pub fn with_election_priority(mut self, priority: Vec<usize>) -> Self {
        assert_eq!(priority.len(), self.n, "need one rank per node");
        self.election_priority = Some(priority);
        self
    }
}

/// Messages exchanged by Raft nodes. Client commands are injected as
/// [`RaftMessage::ClientRequest`].
#[derive(Debug, Clone)]
pub enum RaftMessage {
    /// A client asks the cluster to replicate a command (forwarded to the leader).
    ClientRequest(Command),
    /// A candidate requests a vote.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// Index of the candidate's last log entry.
        last_log_index: usize,
        /// Term of the candidate's last log entry.
        last_log_term: u64,
    },
    /// A vote reply.
    Vote {
        /// Voter's current term.
        term: u64,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Log replication / heartbeat.
    AppendEntries {
        /// Leader's term.
        term: u64,
        /// Index of the entry immediately preceding `entries`.
        prev_log_index: usize,
        /// Term of that entry (0 for the empty prefix).
        prev_log_term: u64,
        /// Entries to append (empty for heartbeats).
        entries: Vec<LogEntry>,
        /// Leader's commit index.
        leader_commit: usize,
    },
    /// Reply to AppendEntries.
    AppendReply {
        /// Follower's current term.
        term: u64,
        /// Whether the append succeeded.
        success: bool,
        /// Highest log index known to match the leader (when `success`).
        match_index: usize,
    },
}

/// A Raft replica.
#[derive(Debug)]
pub struct RaftNode {
    config: RaftConfig,
    role: Role,
    current_term: u64,
    voted_for: Option<usize>,
    log: Vec<LogEntry>,
    commit_index: usize,
    /// Votes received in the current candidacy (including self).
    votes: Vec<bool>,
    /// Leader state: highest index known replicated on each peer.
    match_index: Vec<usize>,
    /// Commands waiting for a leader.
    pending: Vec<Command>,
    /// Monotonic counter distinguishing stale election timers.
    election_epoch: u64,
    /// Behaviour adopted if the fault injector flips this node.
    byzantine_plan: ByzantineBehavior,
    behavior: ByzantineBehavior,
}

impl RaftNode {
    /// Creates a node with the given configuration.
    pub fn new(config: RaftConfig) -> Self {
        let n = config.n;
        Self {
            config,
            role: Role::Follower,
            current_term: 0,
            voted_for: None,
            log: Vec::new(),
            commit_index: 0,
            votes: vec![false; n],
            match_index: vec![0; n],
            pending: Vec::new(),
            election_epoch: 0,
            byzantine_plan: ByzantineBehavior::Silent,
            behavior: ByzantineBehavior::Honest,
        }
    }

    /// Sets the behaviour this node will adopt if it is turned Byzantine.
    pub fn with_byzantine_plan(mut self, plan: ByzantineBehavior) -> Self {
        self.byzantine_plan = plan;
        self
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Current term.
    pub fn current_term(&self) -> u64 {
        self.current_term
    }

    /// The full (not necessarily committed) log.
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// Number of committed entries.
    pub fn commit_index(&self) -> usize {
        self.commit_index
    }

    fn last_log_index(&self) -> usize {
        self.log.len()
    }

    fn last_log_term(&self) -> u64 {
        self.log.last().map_or(0, |e| e.term)
    }

    fn election_timeout(&self, ctx: &mut Context<RaftMessage>) -> SimTime {
        let min = self.config.election_timeout_min.as_micros();
        let max = self.config.election_timeout_max.as_micros();
        let base = if max > min {
            SimTime::from_micros(ctx.gen_range(min, max))
        } else {
            self.config.election_timeout_min
        };
        match &self.config.election_priority {
            // Stagger by rank: the preferred leader times out first by a full window.
            Some(priority) => {
                let rank = priority[ctx.id()] as u64;
                base + SimTime::from_micros(rank * (max - min).max(1))
            }
            None => base,
        }
    }

    fn arm_election_timer(&mut self, ctx: &mut Context<RaftMessage>) {
        self.election_epoch += 1;
        let timeout = self.election_timeout(ctx);
        ctx.set_timer(timeout, ELECTION_TIMER + (self.election_epoch << 8));
    }

    fn become_follower(&mut self, term: u64, ctx: &mut Context<RaftMessage>) {
        self.role = Role::Follower;
        if term > self.current_term {
            self.current_term = term;
            self.voted_for = None;
        }
        self.arm_election_timer(ctx);
    }

    fn become_candidate(&mut self, ctx: &mut Context<RaftMessage>) {
        self.role = Role::Candidate;
        self.current_term += 1;
        self.voted_for = Some(ctx.id());
        self.votes = vec![false; self.config.n];
        self.votes[ctx.id()] = true;
        ctx.broadcast(RaftMessage::RequestVote {
            term: self.current_term,
            last_log_index: self.last_log_index(),
            last_log_term: self.last_log_term(),
        });
        self.arm_election_timer(ctx);
        self.maybe_win_election(ctx);
    }

    fn maybe_win_election(&mut self, ctx: &mut Context<RaftMessage>) {
        if self.role != Role::Candidate {
            return;
        }
        let granted = self.votes.iter().filter(|&&v| v).count();
        if granted >= self.config.election_quorum {
            self.become_leader(ctx);
        }
    }

    fn become_leader(&mut self, ctx: &mut Context<RaftMessage>) {
        self.role = Role::Leader;
        self.match_index = vec![0; self.config.n];
        self.match_index[ctx.id()] = self.last_log_index();
        // Adopt any commands that queued up while there was no leader.
        let pending = std::mem::take(&mut self.pending);
        for command in pending {
            self.append_new_entry(command);
        }
        self.match_index[ctx.id()] = self.last_log_index();
        self.broadcast_append(ctx);
        ctx.set_timer(self.config.heartbeat_interval, HEARTBEAT_TIMER);
    }

    fn append_new_entry(&mut self, command: Command) {
        // Deduplicate client retries of a command that is already in the log.
        if self.log.iter().any(|e| e.command == command) {
            return;
        }
        self.log.push(LogEntry {
            term: self.current_term,
            command,
        });
    }

    fn broadcast_append(&mut self, ctx: &mut Context<RaftMessage>) {
        if self.behavior == ByzantineBehavior::Equivocate {
            // A Byzantine "leader" sends conflicting tails to different followers.
            for to in 0..self.config.n {
                if to == ctx.id() {
                    continue;
                }
                let poisoned = LogEntry {
                    term: self.current_term,
                    command: Command(1_000_000 + to as u64),
                };
                ctx.send(
                    to,
                    RaftMessage::AppendEntries {
                        term: self.current_term,
                        prev_log_index: 0,
                        prev_log_term: 0,
                        entries: vec![poisoned],
                        leader_commit: 1,
                    },
                );
            }
            return;
        }
        // Honest leaders send each follower everything (prev = empty prefix). This is a
        // simplification of per-follower nextIndex tracking that preserves Raft's
        // correctness argument: followers truncate conflicts and append.
        let entries = self.log.clone();
        for to in 0..self.config.n {
            if to == ctx.id() {
                continue;
            }
            ctx.send(
                to,
                RaftMessage::AppendEntries {
                    term: self.current_term,
                    prev_log_index: 0,
                    prev_log_term: 0,
                    entries: entries.clone(),
                    leader_commit: self.commit_index,
                },
            );
        }
    }

    fn advance_commit_index(&mut self) {
        // Find the highest index replicated on a commit quorum with an entry from the
        // current term.
        for index in ((self.commit_index + 1)..=self.last_log_index()).rev() {
            let replicas = self.match_index.iter().filter(|&&m| m >= index).count();
            if replicas >= self.config.commit_quorum
                && self.log[index - 1].term == self.current_term
            {
                self.commit_index = index;
                break;
            }
        }
    }

    fn handle_request_vote(
        &mut self,
        from: usize,
        term: u64,
        last_log_index: usize,
        last_log_term: u64,
        ctx: &mut Context<RaftMessage>,
    ) {
        if term > self.current_term {
            self.become_follower(term, ctx);
        }
        let log_ok = last_log_term > self.last_log_term()
            || (last_log_term == self.last_log_term() && last_log_index >= self.last_log_index());
        let granted = term == self.current_term
            && log_ok
            && (self.voted_for.is_none() || self.voted_for == Some(from));
        if granted {
            self.voted_for = Some(from);
            self.arm_election_timer(ctx);
        }
        // An equivocating Byzantine voter grants everything, enabling split brain when
        // quorums are undersized.
        let granted = granted || self.behavior == ByzantineBehavior::Equivocate;
        ctx.send(
            from,
            RaftMessage::Vote {
                term: self.current_term,
                granted,
            },
        );
    }

    fn handle_append(
        &mut self,
        from: usize,
        term: u64,
        entries: Vec<LogEntry>,
        leader_commit: usize,
        ctx: &mut Context<RaftMessage>,
    ) {
        if term < self.current_term {
            ctx.send(
                from,
                RaftMessage::AppendReply {
                    term: self.current_term,
                    success: false,
                    match_index: 0,
                },
            );
            return;
        }
        // A valid leader exists for this term.
        self.become_follower(term, ctx);
        // Entries are always rooted at the beginning of the log (see broadcast_append):
        // find the first divergence, truncate, and append the rest.
        let mut keep = 0;
        while keep < self.log.len() && keep < entries.len() && self.log[keep] == entries[keep] {
            keep += 1;
        }
        if keep < entries.len() {
            // Never truncate committed entries; if a conflicting leader tries, refuse
            // (this can only happen outside the safe quorum configurations).
            if keep >= self.commit_index {
                self.log.truncate(keep);
                self.log.extend_from_slice(&entries[keep..]);
            }
        }
        let match_index = self.log.len().min(entries.len());
        self.commit_index = self.commit_index.max(leader_commit.min(self.log.len()));
        ctx.send(
            from,
            RaftMessage::AppendReply {
                term: self.current_term,
                success: true,
                match_index,
            },
        );
    }
}

impl ReplicatedLog for RaftNode {
    fn committed(&self) -> Vec<Command> {
        self.log[..self.commit_index]
            .iter()
            .map(|e| e.command)
            .collect()
    }
}

impl Actor<RaftMessage> for RaftNode {
    fn on_start(&mut self, ctx: &mut Context<RaftMessage>) {
        self.arm_election_timer(ctx);
    }

    fn on_message(&mut self, from: usize, msg: RaftMessage, ctx: &mut Context<RaftMessage>) {
        if self.behavior == ByzantineBehavior::Silent {
            return;
        }
        match msg {
            RaftMessage::ClientRequest(command) => {
                if self.role == Role::Leader {
                    self.append_new_entry(command);
                    self.match_index[ctx.id()] = self.last_log_index();
                    self.advance_commit_index();
                    self.broadcast_append(ctx);
                } else {
                    // Queue until a leader picks it up (clients broadcast requests, so
                    // the leader sees its own copy).
                    self.pending.push(command);
                }
            }
            RaftMessage::RequestVote {
                term,
                last_log_index,
                last_log_term,
            } => self.handle_request_vote(from, term, last_log_index, last_log_term, ctx),
            RaftMessage::Vote { term, granted } => {
                if term > self.current_term {
                    self.become_follower(term, ctx);
                } else if term == self.current_term && granted && self.role == Role::Candidate {
                    self.votes[from] = true;
                    self.maybe_win_election(ctx);
                }
            }
            RaftMessage::AppendEntries {
                term,
                entries,
                leader_commit,
                ..
            } => self.handle_append(from, term, entries, leader_commit, ctx),
            RaftMessage::AppendReply {
                term,
                success,
                match_index,
            } => {
                if term > self.current_term {
                    self.become_follower(term, ctx);
                } else if self.role == Role::Leader && success {
                    self.match_index[from] = self.match_index[from].max(match_index);
                    self.advance_commit_index();
                }
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Context<RaftMessage>) {
        if self.behavior == ByzantineBehavior::Silent {
            return;
        }
        match tag & 0xff {
            ELECTION_TIMER => {
                // Ignore stale election timers from earlier epochs.
                if (tag >> 8) != self.election_epoch {
                    return;
                }
                if self.role != Role::Leader {
                    self.become_candidate(ctx);
                }
            }
            HEARTBEAT_TIMER => {
                if self.role == Role::Leader {
                    self.advance_commit_index();
                    self.broadcast_append(ctx);
                    ctx.set_timer(self.config.heartbeat_interval, HEARTBEAT_TIMER);
                }
            }
            other => unreachable!("unknown raft timer tag {other}"),
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<RaftMessage>) {
        // Volatile leadership state is lost; the durable log and term survive the crash.
        self.role = Role::Follower;
        self.pending.clear();
        self.arm_election_timer(ctx);
    }

    fn on_turn_byzantine(&mut self) {
        self.behavior = self.byzantine_plan;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx_for<'a>(id: usize, n: usize, rng: &'a mut StdRng) -> Context<'a, RaftMessage> {
        Context::new(id, SimTime::ZERO, n, rng)
    }

    #[test]
    fn candidate_with_quorum_becomes_leader() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut node = RaftNode::new(RaftConfig::standard(3));
        let mut ctx = ctx_for(0, 3, &mut rng);
        node.become_candidate(&mut ctx);
        assert_eq!(node.role(), Role::Candidate);
        assert_eq!(node.current_term(), 1);
        let mut ctx = ctx_for(0, 3, &mut rng);
        node.on_message(
            1,
            RaftMessage::Vote {
                term: 1,
                granted: true,
            },
            &mut ctx,
        );
        assert_eq!(node.role(), Role::Leader);
    }

    #[test]
    fn votes_from_stale_terms_are_ignored() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut node = RaftNode::new(RaftConfig::standard(5));
        let mut ctx = ctx_for(0, 5, &mut rng);
        node.become_candidate(&mut ctx);
        node.become_candidate(&mut ctx); // term 2 now
        let mut ctx = ctx_for(0, 5, &mut rng);
        node.on_message(
            1,
            RaftMessage::Vote {
                term: 1,
                granted: true,
            },
            &mut ctx,
        );
        node.on_message(
            2,
            RaftMessage::Vote {
                term: 1,
                granted: true,
            },
            &mut ctx,
        );
        assert_eq!(node.role(), Role::Candidate, "stale votes must not elect");
    }

    #[test]
    fn vote_is_denied_to_candidates_with_stale_logs() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut node = RaftNode::new(RaftConfig::standard(3));
        node.current_term = 2;
        node.log.push(LogEntry {
            term: 2,
            command: Command(9),
        });
        let mut ctx = ctx_for(1, 3, &mut rng);
        node.handle_request_vote(0, 3, 0, 0, &mut ctx);
        // The reply is buffered in the context; inspect the decision via voted_for.
        assert_eq!(node.voted_for, None, "must not vote for a shorter log");
    }

    #[test]
    fn followers_truncate_conflicts_but_never_committed_entries() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut node = RaftNode::new(RaftConfig::standard(3));
        let mut ctx = ctx_for(1, 3, &mut rng);
        let entries = vec![
            LogEntry {
                term: 1,
                command: Command(1),
            },
            LogEntry {
                term: 1,
                command: Command(2),
            },
        ];
        node.handle_append(0, 1, entries.clone(), 2, &mut ctx);
        assert_eq!(node.committed(), vec![Command(1), Command(2)]);
        // A conflicting append from a later term cannot rewrite committed entries.
        let conflicting = vec![LogEntry {
            term: 2,
            command: Command(99),
        }];
        let mut ctx = ctx_for(1, 3, &mut rng);
        node.handle_append(2, 2, conflicting, 1, &mut ctx);
        assert_eq!(node.committed()[..2], [Command(1), Command(2)]);
    }

    #[test]
    fn leader_commits_only_with_a_commit_quorum() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut node = RaftNode::new(RaftConfig::standard(5));
        let mut ctx = ctx_for(0, 5, &mut rng);
        node.become_candidate(&mut ctx);
        for peer in 1..3 {
            let mut ctx = ctx_for(0, 5, &mut rng);
            node.on_message(
                peer,
                RaftMessage::Vote {
                    term: 1,
                    granted: true,
                },
                &mut ctx,
            );
        }
        assert_eq!(node.role(), Role::Leader);
        let mut ctx = ctx_for(0, 5, &mut rng);
        node.on_message(0, RaftMessage::ClientRequest(Command(7)), &mut ctx);
        assert_eq!(node.commit_index(), 0, "not yet replicated");
        // Two acks (plus the leader itself) reach the majority of 3.
        for peer in 1..3 {
            let mut ctx = ctx_for(0, 5, &mut rng);
            node.on_message(
                peer,
                RaftMessage::AppendReply {
                    term: 1,
                    success: true,
                    match_index: 1,
                },
                &mut ctx,
            );
        }
        assert_eq!(node.commit_index(), 1);
        assert_eq!(node.committed(), vec![Command(7)]);
    }

    #[test]
    fn client_retries_are_deduplicated() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut node = RaftNode::new(RaftConfig::standard(3));
        let mut ctx = ctx_for(0, 3, &mut rng);
        node.become_candidate(&mut ctx);
        let mut ctx = ctx_for(0, 3, &mut rng);
        node.on_message(
            1,
            RaftMessage::Vote {
                term: 1,
                granted: true,
            },
            &mut ctx,
        );
        for _ in 0..3 {
            let mut ctx = ctx_for(0, 3, &mut rng);
            node.on_message(0, RaftMessage::ClientRequest(Command(5)), &mut ctx);
        }
        assert_eq!(node.log().len(), 1);
    }

    #[test]
    fn election_priority_staggers_timeouts() {
        let config = RaftConfig::standard(3).with_election_priority(vec![0, 1, 2]);
        let mut rng = StdRng::seed_from_u64(7);
        let preferred = RaftNode::new(config.clone());
        let backup = RaftNode::new(config);
        let mut ctx0 = ctx_for(0, 3, &mut rng);
        let t0 = preferred.election_timeout(&mut ctx0);
        let mut rng2 = StdRng::seed_from_u64(8);
        let mut ctx2 = ctx_for(2, 3, &mut rng2);
        let t2 = backup.election_timeout(&mut ctx2);
        assert!(t2 > t0, "lower-ranked node must wait longer: {t0} vs {t2}");
    }

    #[test]
    fn silent_byzantine_nodes_stop_responding() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut node = RaftNode::new(RaftConfig::standard(3));
        node.on_turn_byzantine();
        let mut ctx = ctx_for(1, 3, &mut rng);
        node.on_message(0, RaftMessage::ClientRequest(Command(1)), &mut ctx);
        assert!(node.pending.is_empty(), "silent nodes ignore traffic");
    }
}
