//! Executable consensus protocols on the discrete-event simulator.
//!
//! The `prob-consensus` crate computes *analytic* probabilities of safety and liveness
//! from Theorems 3.1 and 3.2; this crate provides the protocols those theorems abstract,
//! running on the `consensus-sim` substrate, so the predictions can be validated against
//! observed behaviour under injected faults:
//!
//! * [`common`] — commands, log entries and the [`common::ReplicatedLog`] view shared by
//!   all protocols.
//! * [`raft`] — a Raft implementation (leader election, log replication, commitment)
//!   with configurable persistence/election quorum sizes (Flexible-Paxos style) and
//!   reliability-aware election priorities.
//! * [`pbft`] — a PBFT-style BFT implementation (pre-prepare / prepare / commit, view
//!   changes) with configurable quorum sizes and pluggable Byzantine behaviours.
//! * [`byzantine`] — the Byzantine strategies nodes adopt when the fault injector flips
//!   them (stay silent, equivocate).
//! * [`harness`] — cluster harnesses: build a simulated cluster, drive a client
//!   workload, then check *agreement* (no two correct nodes commit conflicting entries)
//!   and *progress* (all submitted commands commit at all correct nodes). The
//!   batch-trial API ([`harness::TrialSpec`] / [`harness::run_trial`]) packages one
//!   deterministic run as a plain value, so the analysis layer's simulation engine
//!   can fan thousands of trials out across threads.
//! * [`probabilistic`] — probability-native deployment helpers: reliability-aware leader
//!   priorities and committee-restricted clusters.
//!
//! # Examples
//!
//! ```
//! use consensus_protocols::harness::RaftHarness;
//! use consensus_sim::network::NetworkConfig;
//!
//! // A healthy 5-node Raft cluster commits every submitted command.
//! let mut harness = RaftHarness::new(5, NetworkConfig::lan(), 7);
//! harness.submit_commands(10);
//! let outcome = harness.run_for_millis(2_000);
//! assert!(outcome.agreement);
//! assert!(outcome.all_committed);
//! ```

// Documentation is part of this crate's contract: every public item is
// documented, and CI builds rustdoc with `-D warnings` (see the `docs` job).
#![warn(missing_docs)]
pub mod byzantine;
pub mod common;
pub mod harness;
pub mod pbft;
pub mod probabilistic;
pub mod raft;

pub use byzantine::ByzantineBehavior;
pub use common::{Command, LogEntry, ReplicatedLog};
pub use harness::{
    run_trial, ClusterOutcome, PbftHarness, RaftHarness, TrialOutcome, TrialProtocol, TrialSpec,
};
pub use pbft::{PbftConfig, PbftMessage, PbftNode};
pub use raft::{RaftConfig, RaftMessage, RaftNode, Role};
