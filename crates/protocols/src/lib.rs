//! Executable consensus protocols on the discrete-event simulator.
//!
//! The `prob-consensus` crate computes *analytic* probabilities of safety and liveness
//! from Theorems 3.1 and 3.2; this crate provides the protocols those theorems abstract,
//! running on the `consensus-sim` substrate, so the predictions can be validated against
//! observed behaviour under injected faults:
//!
//! * [`common`] — commands, log entries and the [`common::ReplicatedLog`] view shared by
//!   all protocols.
//! * [`raft`] — a Raft implementation (leader election, log replication, commitment)
//!   with configurable persistence/election quorum sizes (Flexible-Paxos style) and
//!   reliability-aware election priorities.
//! * [`pbft`] — a PBFT-style BFT implementation (pre-prepare / prepare / commit, view
//!   changes) with configurable quorum sizes and pluggable Byzantine behaviours.
//! * [`byzantine`] — the Byzantine strategies nodes adopt when the fault injector flips
//!   them (stay silent, equivocate).
//! * [`harness`] — cluster harnesses: build a simulated cluster, drive a client
//!   workload, then check *agreement* (no two correct nodes commit conflicting entries)
//!   and *progress* (all submitted commands commit at all correct nodes).
//! * [`probabilistic`] — probability-native deployment helpers: reliability-aware leader
//!   priorities and committee-restricted clusters.
//!
//! # Examples
//!
//! ```
//! use consensus_protocols::harness::RaftHarness;
//! use consensus_sim::network::NetworkConfig;
//!
//! // A healthy 5-node Raft cluster commits every submitted command.
//! let mut harness = RaftHarness::new(5, NetworkConfig::lan(), 7);
//! harness.submit_commands(10);
//! let outcome = harness.run_for_millis(2_000);
//! assert!(outcome.agreement);
//! assert!(outcome.all_committed);
//! ```

pub mod byzantine;
pub mod common;
pub mod harness;
pub mod pbft;
pub mod probabilistic;
pub mod raft;

pub use byzantine::ByzantineBehavior;
pub use common::{Command, LogEntry, ReplicatedLog};
pub use harness::{ClusterOutcome, PbftHarness, RaftHarness};
pub use pbft::{PbftConfig, PbftMessage, PbftNode};
pub use raft::{RaftConfig, RaftMessage, RaftNode, Role};
