//! Failure modes and per-node fault profiles.
//!
//! §2(4) of the paper observes that "most nodes fail by crashing but from time to time
//! exhibit malicious behavior": e.g. a 4% annual crash rate alongside a 0.01% rate of
//! Byzantine "mercurial core" corruption. A [`FaultProfile`] captures both probabilities
//! for one analysis window, and is the unit the reliability analyzer consumes.

/// How a node deviates from correct behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureMode {
    /// The node stops taking steps (fail-stop).
    Crash,
    /// The node deviates arbitrarily from the protocol.
    Byzantine,
}

impl FailureMode {
    /// All failure modes, in severity order.
    pub const ALL: [FailureMode; 2] = [FailureMode::Crash, FailureMode::Byzantine];
}

impl std::fmt::Display for FailureMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureMode::Crash => write!(f, "crash"),
            FailureMode::Byzantine => write!(f, "byzantine"),
        }
    }
}

/// The state of one node in a failure configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeState {
    /// The node follows the protocol.
    Correct,
    /// The node has crashed.
    Crashed,
    /// The node behaves arbitrarily.
    Byzantine,
}

impl NodeState {
    /// Whether the node is correct (neither crashed nor Byzantine).
    pub fn is_correct(&self) -> bool {
        matches!(self, NodeState::Correct)
    }

    /// Whether the node is faulty in any way.
    pub fn is_faulty(&self) -> bool {
        !self.is_correct()
    }
}

/// Per-node failure probabilities for one analysis window.
///
/// The two probabilities describe *disjoint* outcomes: with probability `crash` the node
/// crashes, with probability `byzantine` it turns Byzantine, and with the remaining
/// probability it stays correct. Their sum must therefore not exceed 1.
///
/// # Examples
///
/// ```
/// use fault_model::mode::FaultProfile;
///
/// // The paper's "mercurial core" example: 4% AFR crashes, 0.01% Byzantine corruption.
/// let p = FaultProfile::new(0.04, 0.0001);
/// assert!((p.correct_probability() - 0.9599).abs() < 1e-12);
/// assert!((p.fault_probability() - 0.0401).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    crash: f64,
    byzantine: f64,
}

impl FaultProfile {
    /// Creates a profile from a crash probability and a Byzantine probability.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]` or their sum exceeds 1.
    pub fn new(crash: f64, byzantine: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&crash),
            "crash probability out of range: {crash}"
        );
        assert!(
            (0.0..=1.0).contains(&byzantine),
            "byzantine probability out of range: {byzantine}"
        );
        assert!(
            crash + byzantine <= 1.0 + 1e-12,
            "crash + byzantine must not exceed 1 (got {})",
            crash + byzantine
        );
        Self { crash, byzantine }
    }

    /// A node that only ever crashes (the CFT analysis setting of §3).
    pub fn crash_only(p: f64) -> Self {
        Self::new(p, 0.0)
    }

    /// A node whose only failure mode is Byzantine (the BFT analysis setting of §3).
    pub fn byzantine_only(p: f64) -> Self {
        Self::new(0.0, p)
    }

    /// A perfectly reliable node.
    pub fn reliable() -> Self {
        Self::new(0.0, 0.0)
    }

    /// Probability of crashing within the window.
    pub fn crash_probability(&self) -> f64 {
        self.crash
    }

    /// Probability of turning Byzantine within the window.
    pub fn byzantine_probability(&self) -> f64 {
        self.byzantine
    }

    /// Probability of any fault (crash or Byzantine).
    pub fn fault_probability(&self) -> f64 {
        self.crash + self.byzantine
    }

    /// Probability of remaining correct.
    pub fn correct_probability(&self) -> f64 {
        1.0 - self.fault_probability()
    }

    /// Probability of the given node state.
    pub fn probability_of(&self, state: NodeState) -> f64 {
        match state {
            NodeState::Correct => self.correct_probability(),
            NodeState::Crashed => self.crash,
            NodeState::Byzantine => self.byzantine,
        }
    }

    /// Treats every fault as a crash, collapsing Byzantine probability into crash
    /// probability. Used when analysing CFT protocols over mixed fleets.
    pub fn as_crash_only(&self) -> Self {
        Self::new(self.fault_probability(), 0.0)
    }

    /// Treats every fault as Byzantine. Used for conservative BFT analysis.
    pub fn as_byzantine_only(&self) -> Self {
        Self::new(0.0, self.fault_probability())
    }

    /// Scales both probabilities by `factor`, clamping the sum at 1. Useful for
    /// sensitivity sweeps ("what if everything is twice as flaky?").
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        let crash = (self.crash * factor).min(1.0);
        let byz = (self.byzantine * factor).min(1.0 - crash);
        Self::new(crash, byz)
    }
}

impl Default for FaultProfile {
    fn default() -> Self {
        Self::reliable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crash_only_profile() {
        let p = FaultProfile::crash_only(0.08);
        assert_eq!(p.crash_probability(), 0.08);
        assert_eq!(p.byzantine_probability(), 0.0);
        assert!((p.correct_probability() - 0.92).abs() < 1e-12);
    }

    #[test]
    fn byzantine_only_profile() {
        let p = FaultProfile::byzantine_only(0.01);
        assert_eq!(p.byzantine_probability(), 0.01);
        assert_eq!(p.probability_of(NodeState::Byzantine), 0.01);
        assert_eq!(p.probability_of(NodeState::Crashed), 0.0);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let p = FaultProfile::new(0.04, 0.0001);
        let total: f64 = [NodeState::Correct, NodeState::Crashed, NodeState::Byzantine]
            .iter()
            .map(|&s| p.probability_of(s))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must not exceed 1")]
    fn rejects_overfull_profile() {
        FaultProfile::new(0.7, 0.5);
    }

    #[test]
    fn collapse_to_single_mode() {
        let p = FaultProfile::new(0.04, 0.01);
        assert_eq!(p.as_crash_only().crash_probability(), 0.05);
        assert_eq!(p.as_byzantine_only().byzantine_probability(), 0.05);
    }

    #[test]
    fn node_state_predicates() {
        assert!(NodeState::Correct.is_correct());
        assert!(NodeState::Crashed.is_faulty());
        assert!(NodeState::Byzantine.is_faulty());
    }

    #[test]
    fn scaling_clamps_at_one() {
        let p = FaultProfile::new(0.4, 0.1).scaled(3.0);
        assert!(p.fault_probability() <= 1.0 + 1e-12);
    }

    proptest! {
        #[test]
        fn profile_probabilities_always_valid(crash in 0.0..0.6f64, byz in 0.0..0.4f64) {
            let p = FaultProfile::new(crash, byz);
            prop_assert!(p.correct_probability() >= -1e-12);
            prop_assert!(p.fault_probability() <= 1.0 + 1e-12);
            let total = p.correct_probability() + p.crash_probability() + p.byzantine_probability();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        #[test]
        fn scaling_by_small_factor_reduces_fault_probability(
            crash in 0.0..0.5f64, byz in 0.0..0.3f64, factor in 0.0..1.0f64
        ) {
            let p = FaultProfile::new(crash, byz);
            prop_assert!(p.scaled(factor).fault_probability() <= p.fault_probability() + 1e-12);
        }
    }
}
