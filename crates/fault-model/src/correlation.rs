//! Correlated-failure models.
//!
//! §2(3): "faults often are correlated or planned" — software rollouts, shared racks,
//! shared TEE vulnerabilities. The analysis in §3 assumes independence; this module
//! provides the machinery to relax that assumption: correlation groups with a
//! common-cause ("beta factor") shock, and a sampler producing joint failure
//! configurations for Monte Carlo analysis.

use rand::Rng;

use crate::mode::{FaultProfile, NodeState};

/// A group of nodes that share a common failure cause (same rack, same rollout wave,
/// same TEE platform, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationGroup {
    /// Indices (into the deployment's node list) of the members of this group.
    pub members: Vec<usize>,
    /// Probability that the common cause fires within the analysis window, failing every
    /// member of the group simultaneously.
    pub shock_probability: f64,
    /// Failure mode of a common-cause shock.
    pub shock_mode: NodeState,
}

impl CorrelationGroup {
    /// Creates a correlation group that crashes all `members` together with probability
    /// `shock_probability`.
    pub fn crash_shock(members: Vec<usize>, shock_probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&shock_probability));
        Self {
            members,
            shock_probability,
            shock_mode: NodeState::Crashed,
        }
    }

    /// Creates a correlation group whose shock turns all members Byzantine (e.g. a shared
    /// SGX/SEV vulnerability being exploited).
    pub fn byzantine_shock(members: Vec<usize>, shock_probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&shock_probability));
        Self {
            members,
            shock_probability,
            shock_mode: NodeState::Byzantine,
        }
    }
}

/// A joint failure model: independent per-node fault profiles plus common-cause
/// correlation groups layered on top (a Marshall–Olkin style construction).
#[derive(Debug, Clone, Default)]
pub struct CorrelationModel {
    profiles: Vec<FaultProfile>,
    groups: Vec<CorrelationGroup>,
    /// Per-group membership bitsets (`membership[g][i / 64] >> (i % 64) & 1`), built
    /// once in [`CorrelationModel::with_group`] so per-node membership tests are O(1)
    /// word ops instead of `Vec::contains` scans in the analysis inner loops.
    membership: Vec<Box<[u64]>>,
}

impl CorrelationModel {
    /// Creates a model with the given independent per-node profiles and no correlation.
    pub fn independent(profiles: Vec<FaultProfile>) -> Self {
        Self {
            profiles,
            groups: Vec::new(),
            membership: Vec::new(),
        }
    }

    /// Adds a correlation group. Member indices must be valid for the profile list.
    pub fn with_group(mut self, group: CorrelationGroup) -> Self {
        assert!(
            group.members.iter().all(|&m| m < self.profiles.len()),
            "group member index out of range"
        );
        let mut bits = vec![0u64; self.profiles.len().div_ceil(64)].into_boxed_slice();
        for &m in &group.members {
            bits[m / 64] |= 1u64 << (m % 64);
        }
        self.membership.push(bits);
        self.groups.push(group);
        self
    }

    /// The membership bitset of group `g` (little-endian words over node indices).
    /// Internal: the bitsets back [`CorrelationModel::marginal_fault_probabilities`]
    /// and the tests; samplers iterate the member lists directly.
    #[cfg(test)]
    fn group_member_bits(&self, g: usize) -> &[u64] {
        &self.membership[g]
    }

    /// Number of nodes in the model.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the model contains no nodes.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The independent per-node profiles.
    pub fn profiles(&self) -> &[FaultProfile] {
        &self.profiles
    }

    /// The configured correlation groups.
    pub fn groups(&self) -> &[CorrelationGroup] {
        &self.groups
    }

    /// Whether any correlation group is configured.
    pub fn is_correlated(&self) -> bool {
        !self.groups.is_empty()
    }

    /// The *effective* marginal fault probability of each node, including the chance of
    /// being taken out by any of its correlation groups.
    pub fn marginal_fault_probabilities(&self) -> Vec<f64> {
        (0..self.profiles.len())
            .map(|i| {
                let mut survive = self.profiles[i].correct_probability();
                for (g, bits) in self.groups.iter().zip(&self.membership) {
                    if bits[i / 64] >> (i % 64) & 1 == 1 {
                        survive *= 1.0 - g.shock_probability;
                    }
                }
                1.0 - survive
            })
            .collect()
    }

    /// Samples one joint failure configuration into a caller-provided buffer,
    /// allocation-free. This is the Monte Carlo hot path: the scalar sampling engine
    /// reuses one scratch buffer per work chunk (see `prob-consensus`'s
    /// `montecarlo` module).
    ///
    /// Each node first draws its independent outcome from its profile; each correlation
    /// group then fires independently with its shock probability and overrides its
    /// members' states (Byzantine shocks dominate crash outcomes).
    pub fn sample_into<R: Rng + ?Sized>(&self, states: &mut [NodeState], rng: &mut R) {
        assert_eq!(
            states.len(),
            self.profiles.len(),
            "scratch buffer and model disagree on the cluster size"
        );
        for (slot, p) in states.iter_mut().zip(&self.profiles) {
            let u: f64 = rng.gen();
            *slot = if u < p.byzantine_probability() {
                NodeState::Byzantine
            } else if u < p.fault_probability() {
                NodeState::Crashed
            } else {
                NodeState::Correct
            };
        }
        for g in &self.groups {
            if rng.gen::<f64>() < g.shock_probability {
                for &m in &g.members {
                    states[m] = match (states[m], g.shock_mode) {
                        // A Byzantine outcome is never downgraded to a crash.
                        (NodeState::Byzantine, _) => NodeState::Byzantine,
                        (_, mode) => mode,
                    };
                }
            }
        }
    }

    /// Samples one joint failure configuration (allocating; see
    /// [`CorrelationModel::sample_into`] for the reusable-buffer form).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<NodeState> {
        let mut states = vec![NodeState::Correct; self.profiles.len()];
        self.sample_into(&mut states, rng);
        states
    }

    /// Estimates, by sampling, the probability that at least `k` nodes are faulty
    /// simultaneously. Used to quantify how much correlation inflates tail risk relative
    /// to the independent model.
    pub fn estimate_tail_probability<R: Rng + ?Sized>(
        &self,
        k: usize,
        samples: usize,
        rng: &mut R,
    ) -> f64 {
        assert!(samples > 0);
        let mut scratch = vec![NodeState::Correct; self.profiles.len()];
        let mut hits = 0usize;
        for _ in 0..samples {
            self.sample_into(&mut scratch, rng);
            if scratch.iter().filter(|s| s.is_faulty()).count() >= k {
                hits += 1;
            }
        }
        hits as f64 / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn uniform(n: usize, p: f64) -> Vec<FaultProfile> {
        vec![FaultProfile::crash_only(p); n]
    }

    #[test]
    fn independent_model_marginals_match_profiles() {
        let model = CorrelationModel::independent(uniform(4, 0.05));
        for p in model.marginal_fault_probabilities() {
            assert!((p - 0.05).abs() < 1e-12);
        }
        assert!(!model.is_correlated());
    }

    #[test]
    fn shock_raises_marginal_probability_of_members_only() {
        let model = CorrelationModel::independent(uniform(4, 0.01))
            .with_group(CorrelationGroup::crash_shock(vec![0, 1], 0.1));
        let marginals = model.marginal_fault_probabilities();
        let expected_member = 1.0 - 0.99 * 0.9;
        assert!((marginals[0] - expected_member).abs() < 1e-12);
        assert!((marginals[1] - expected_member).abs() < 1e-12);
        assert!((marginals[2] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn sampling_reflects_shock_probability() {
        let model = CorrelationModel::independent(uniform(3, 0.0))
            .with_group(CorrelationGroup::crash_shock(vec![0, 1, 2], 0.5));
        let mut rng = StdRng::seed_from_u64(1);
        let p_all_down = model.estimate_tail_probability(3, 20_000, &mut rng);
        assert!((p_all_down - 0.5).abs() < 0.02, "got {p_all_down}");
    }

    #[test]
    fn byzantine_shock_overrides_crash_but_not_vice_versa() {
        let profiles = vec![
            FaultProfile::crash_only(1.0),
            FaultProfile::byzantine_only(1.0),
        ];
        let model = CorrelationModel::independent(profiles)
            .with_group(CorrelationGroup::byzantine_shock(vec![0], 1.0))
            .with_group(CorrelationGroup::crash_shock(vec![1], 1.0));
        let mut rng = StdRng::seed_from_u64(2);
        let states = model.sample(&mut rng);
        assert_eq!(states[0], NodeState::Byzantine);
        assert_eq!(
            states[1],
            NodeState::Byzantine,
            "byzantine is never downgraded"
        );
    }

    #[test]
    fn correlation_inflates_tail_risk_versus_independent() {
        let independent = CorrelationModel::independent(uniform(6, 0.05));
        let correlated = CorrelationModel::independent(uniform(6, 0.05))
            .with_group(CorrelationGroup::crash_shock((0..6).collect(), 0.02));
        let mut rng = StdRng::seed_from_u64(3);
        let p_ind = independent.estimate_tail_probability(4, 50_000, &mut rng);
        let p_cor = correlated.estimate_tail_probability(4, 50_000, &mut rng);
        assert!(
            p_cor > p_ind * 5.0,
            "independent {p_ind} vs correlated {p_cor}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_members() {
        CorrelationModel::independent(uniform(2, 0.01))
            .with_group(CorrelationGroup::crash_shock(vec![5], 0.1));
    }

    #[test]
    fn membership_bitsets_match_the_member_lists() {
        // 70 nodes straddles a bitset word boundary.
        let model = CorrelationModel::independent(uniform(70, 0.01))
            .with_group(CorrelationGroup::crash_shock(vec![0, 63, 64, 69], 0.1))
            .with_group(CorrelationGroup::byzantine_shock(vec![1, 2, 65], 0.05));
        for (g, group) in model.groups().iter().enumerate() {
            let bits = model.group_member_bits(g);
            for i in 0..model.len() {
                let in_bits = bits[i / 64] >> (i % 64) & 1 == 1;
                assert_eq!(
                    in_bits,
                    group.members.contains(&i),
                    "group {g} node {i}: bitset disagrees with the member list"
                );
            }
        }
        // The bitset-backed marginals match a naive contains-based computation.
        let naive: Vec<f64> = (0..model.len())
            .map(|i| {
                let mut survive = model.profiles()[i].correct_probability();
                for g in model.groups() {
                    if g.members.contains(&i) {
                        survive *= 1.0 - g.shock_probability;
                    }
                }
                1.0 - survive
            })
            .collect();
        for (a, b) in model.marginal_fault_probabilities().iter().zip(&naive) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn sample_into_matches_sample_for_a_shared_seed() {
        let model = CorrelationModel::independent(uniform(9, 0.1))
            .with_group(CorrelationGroup::crash_shock(vec![0, 1, 2], 0.05))
            .with_group(CorrelationGroup::byzantine_shock(vec![3, 4], 0.02));
        let mut rng_a = StdRng::seed_from_u64(13);
        let mut rng_b = StdRng::seed_from_u64(13);
        let mut scratch = vec![NodeState::Correct; 9];
        for _ in 0..200 {
            let allocated = model.sample(&mut rng_a);
            model.sample_into(&mut scratch, &mut rng_b);
            assert_eq!(
                allocated, scratch,
                "the two sampling paths share one stream"
            );
        }
    }

    #[test]
    #[should_panic(expected = "disagree on the cluster size")]
    fn sample_into_rejects_a_mis_sized_buffer() {
        let model = CorrelationModel::independent(uniform(3, 0.1));
        let mut scratch = vec![NodeState::Correct; 4];
        model.sample_into(&mut scratch, &mut StdRng::seed_from_u64(1));
    }
}
