//! Continuous-time Markov reliability chains.
//!
//! §2 of the paper points at the storage community's practice of modelling a redundant
//! group as a Markov chain whose states count operational devices, with failure rates λ
//! and repair rates μ driving transitions, and deriving MTTF / MTTDL / steady-state
//! availability from it. This module provides a small dense CTMC solver plus the
//! birth–death chains used for consensus groups ("mean time until more than f nodes are
//! simultaneously down", the Zorfu-style analysis referenced in §5).

/// A continuous-time Markov chain described by its generator (rate) matrix.
///
/// `rates[i][j]` for `i != j` is the transition rate from state `i` to state `j`;
/// diagonal entries are ignored and recomputed as the negated row sum.
#[derive(Debug, Clone)]
pub struct MarkovChain {
    n: usize,
    rates: Vec<Vec<f64>>,
}

impl MarkovChain {
    /// Creates a chain with `n` states and no transitions.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "chain needs at least one state");
        Self {
            n,
            rates: vec![vec![0.0; n]; n],
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the chain has exactly one state.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sets the transition rate from `from` to `to` (events per hour).
    pub fn set_rate(&mut self, from: usize, to: usize, rate: f64) {
        assert!(from < self.n && to < self.n, "state out of range");
        assert!(from != to, "self-transitions are implicit");
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be finite, >= 0");
        self.rates[from][to] = rate;
    }

    /// The transition rate from `from` to `to`.
    pub fn rate(&self, from: usize, to: usize) -> f64 {
        self.rates[from][to]
    }

    /// Total outflow rate from a state.
    pub fn exit_rate(&self, state: usize) -> f64 {
        self.rates[state].iter().sum()
    }

    /// Expected time (hours) to first reach any state in `absorbing`, starting from
    /// `start`, treating the absorbing states as terminal.
    ///
    /// Solves the standard first-passage linear system
    /// `exit_rate(i) * h_i - Σ_j rate(i→j) h_j = 1` over transient states.
    /// Returns `f64::INFINITY` if the absorbing set is unreachable from `start`.
    #[allow(clippy::needless_range_loop)] // dense matrix assembly reads clearest indexed
    pub fn mean_hitting_time(&self, start: usize, absorbing: &[usize]) -> f64 {
        assert!(start < self.n);
        let is_absorbing = |s: usize| absorbing.contains(&s);
        if is_absorbing(start) {
            return 0.0;
        }
        // Map transient states to dense indices.
        let transient: Vec<usize> = (0..self.n).filter(|&s| !is_absorbing(s)).collect();
        let index: Vec<Option<usize>> = (0..self.n)
            .map(|s| transient.iter().position(|&t| t == s))
            .collect();
        let m = transient.len();
        let mut a = vec![vec![0.0f64; m + 1]; m];
        for (row, &s) in transient.iter().enumerate() {
            let exit = self.exit_rate(s);
            a[row][row] = exit;
            for t in 0..self.n {
                if t == s {
                    continue;
                }
                if let Some(col) = index[t] {
                    a[row][col] -= self.rates[s][t];
                }
            }
            a[row][m] = 1.0;
        }
        match solve_dense(&mut a) {
            Some(h) => {
                let v = h[index[start].expect("start is transient")];
                if v.is_finite() && v >= 0.0 {
                    v
                } else {
                    f64::INFINITY
                }
            }
            None => f64::INFINITY,
        }
    }

    /// Steady-state distribution π with `π Q = 0` and `Σ π = 1`.
    ///
    /// Returns `None` when the chain has no transitions at all.
    #[allow(clippy::needless_range_loop)] // dense matrix assembly reads clearest indexed
    pub fn steady_state(&self) -> Option<Vec<f64>> {
        if self.rates.iter().all(|row| row.iter().all(|&r| r == 0.0)) {
            return None;
        }
        // Build Q^T π = 0 with the last equation replaced by the normalization constraint.
        let n = self.n;
        let mut a = vec![vec![0.0f64; n + 1]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                // d/dt π_j gains rate(i→j) * π_i and loses exit_rate(j) * π_j.
                a[j][i] += self.rates[i][j];
            }
        }
        for j in 0..n {
            a[j][j] -= self.exit_rate(j);
        }
        // Replace the last row by Σ π = 1.
        for j in 0..n {
            a[n - 1][j] = 1.0;
        }
        a[n - 1][n] = 1.0;
        let pi = solve_dense(&mut a)?;
        let sum: f64 = pi.iter().sum();
        if !(sum.is_finite()) || sum <= 0.0 {
            return None;
        }
        Some(pi.iter().map(|p| (p / sum).max(0.0)).collect())
    }
}

/// Solves a dense augmented system `[A | b]` by Gaussian elimination with partial
/// pivoting. Each row has `n + 1` entries. Returns `None` when the matrix is singular.
#[allow(clippy::needless_range_loop)] // Gaussian elimination reads clearest indexed
fn solve_dense(a: &mut [Vec<f64>]) -> Option<Vec<f64>> {
    let n = a.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-14 {
            return None;
        }
        a.swap(col, pivot);
        let p = a[col][col];
        for j in col..=n {
            a[col][j] /= p;
        }
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = a[row][col];
            if factor == 0.0 {
                continue;
            }
            for j in col..=n {
                a[row][j] -= factor * a[col][j];
            }
        }
    }
    Some((0..n).map(|i| a[i][n]).collect())
}

/// A birth–death chain whose states count the number of failed nodes in a group of `n`,
/// with per-node failure rate λ and per-node repair rate μ (each failed node is repaired
/// independently).
#[derive(Debug, Clone)]
pub struct BirthDeathChain {
    n: usize,
    lambda: f64,
    mu: f64,
}

impl BirthDeathChain {
    /// Creates a chain for `n` nodes with per-node failure rate `lambda` and per-node
    /// repair rate `mu` (per hour).
    pub fn new(n: usize, lambda: f64, mu: f64) -> Self {
        assert!(n > 0);
        assert!(lambda >= 0.0 && mu >= 0.0);
        Self { n, lambda, mu }
    }

    /// Materializes the chain as a [`MarkovChain`] over states `0..=n` failed nodes.
    pub fn chain(&self) -> MarkovChain {
        let mut chain = MarkovChain::new(self.n + 1);
        for failed in 0..=self.n {
            let up = self.n - failed;
            if failed < self.n {
                chain.set_rate(failed, failed + 1, up as f64 * self.lambda);
            }
            if failed > 0 {
                chain.set_rate(failed, failed - 1, failed as f64 * self.mu);
            }
        }
        chain
    }
}

/// A repairable consensus group analysed as a birth–death chain: mean time to exceed the
/// fault threshold, and steady-state availability of a quorum.
#[derive(Debug, Clone)]
pub struct RepairableGroup {
    chain: BirthDeathChain,
    /// Number of simultaneous failures that the deployment can absorb (e.g. `f`, or
    /// `n - quorum_size`).
    tolerated_failures: usize,
}

impl RepairableGroup {
    /// Creates a repairable group of `n` nodes with per-node failure rate `lambda`,
    /// per-node repair rate `mu`, and a tolerance of `tolerated_failures` simultaneous
    /// failures.
    pub fn new(n: usize, lambda: f64, mu: f64, tolerated_failures: usize) -> Self {
        assert!(tolerated_failures < n, "tolerance must be below group size");
        Self {
            chain: BirthDeathChain::new(n, lambda, mu),
            tolerated_failures,
        }
    }

    /// Mean time (hours) until more than the tolerated number of nodes are down
    /// simultaneously, starting from a fully healthy group. This is the consensus
    /// analogue of MTTDL.
    pub fn mean_time_to_threshold_exceeded(&self) -> f64 {
        let chain = self.chain.chain();
        let absorbing: Vec<usize> = (self.tolerated_failures + 1..=self.chain.n).collect();
        chain.mean_hitting_time(0, &absorbing)
    }

    /// Steady-state probability that at most the tolerated number of nodes are down,
    /// i.e. the long-run availability of the quorum.
    pub fn steady_state_availability(&self) -> f64 {
        let chain = self.chain.chain();
        match chain.steady_state() {
            Some(pi) => pi[..=self.tolerated_failures].iter().sum(),
            None => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component_mttf_is_inverse_rate() {
        // One node, no repair: state 0 = up, state 1 = down.
        let mut chain = MarkovChain::new(2);
        chain.set_rate(0, 1, 0.01);
        let mttf = chain.mean_hitting_time(0, &[1]);
        assert!((mttf - 100.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_absorbing_state_has_infinite_hitting_time() {
        let chain = MarkovChain::new(3);
        assert!(chain.mean_hitting_time(0, &[2]).is_infinite());
    }

    #[test]
    fn two_component_series_mttf() {
        // Two independent nodes failing at rate λ, absorbing when either fails:
        // MTTF = 1 / (2λ).
        let group = BirthDeathChain::new(2, 0.001, 0.0).chain();
        let mttf = group.mean_hitting_time(0, &[1, 2]);
        assert!((mttf - 500.0).abs() < 1e-6);
    }

    #[test]
    fn repair_extends_time_to_double_failure() {
        // Classic RAID-1 result: MTTDL from a healthy pair = (3λ + μ) / (2 λ^2); with
        // μ >> λ repair helps a lot.
        let lambda = 1e-4;
        let mu = 1e-1;
        let without = RepairableGroup::new(2, lambda, 0.0, 1).mean_time_to_threshold_exceeded();
        let with = RepairableGroup::new(2, lambda, mu, 1).mean_time_to_threshold_exceeded();
        let analytic = (3.0 * lambda + mu) / (2.0 * lambda * lambda);
        assert!(
            (with - analytic).abs() / analytic < 1e-6,
            "{with} vs {analytic}"
        );
        assert!(with > 100.0 * without);
    }

    #[test]
    fn steady_state_of_single_repairable_component() {
        let mut chain = MarkovChain::new(2);
        chain.set_rate(0, 1, 1.0);
        chain.set_rate(1, 0, 9.0);
        let pi = chain.steady_state().unwrap();
        assert!((pi[0] - 0.9).abs() < 1e-9);
        assert!((pi[1] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn steady_state_availability_improves_with_faster_repair() {
        let slow = RepairableGroup::new(3, 1e-3, 1e-2, 1).steady_state_availability();
        let fast = RepairableGroup::new(3, 1e-3, 1.0, 1).steady_state_availability();
        assert!(fast > slow);
        assert!(fast > 0.99999);
    }

    #[test]
    fn mean_time_to_threshold_scales_with_group_size() {
        // Larger groups with the same tolerance hit the threshold sooner.
        let small = RepairableGroup::new(3, 1e-4, 1e-2, 1).mean_time_to_threshold_exceeded();
        let large = RepairableGroup::new(9, 1e-4, 1e-2, 1).mean_time_to_threshold_exceeded();
        assert!(small > large);
    }

    #[test]
    fn chain_without_transitions_has_no_steady_state() {
        assert!(MarkovChain::new(4).steady_state().is_none());
    }
}
