//! Continuous-time Markov reliability chains.
//!
//! §2 of the paper points at the storage community's practice of modelling a redundant
//! group as a Markov chain whose states count operational devices, with failure rates λ
//! and repair rates μ driving transitions, and deriving MTTF / MTTDL / steady-state
//! availability from it. This module provides a small dense CTMC solver plus the
//! birth–death chains used for consensus groups ("mean time until more than f nodes are
//! simultaneously down", the Zorfu-style analysis referenced in §5).

/// A continuous-time Markov chain described by its generator (rate) matrix.
///
/// `rates[i][j]` for `i != j` is the transition rate from state `i` to state `j`;
/// diagonal entries are ignored and recomputed as the negated row sum.
#[derive(Debug, Clone)]
pub struct MarkovChain {
    n: usize,
    rates: Vec<Vec<f64>>,
}

impl MarkovChain {
    /// Creates a chain with `n` states and no transitions.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "chain needs at least one state");
        Self {
            n,
            rates: vec![vec![0.0; n]; n],
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the chain has exactly one state.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sets the transition rate from `from` to `to` (events per hour).
    pub fn set_rate(&mut self, from: usize, to: usize, rate: f64) {
        assert!(from < self.n && to < self.n, "state out of range");
        assert!(from != to, "self-transitions are implicit");
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be finite, >= 0");
        self.rates[from][to] = rate;
    }

    /// The transition rate from `from` to `to`.
    pub fn rate(&self, from: usize, to: usize) -> f64 {
        self.rates[from][to]
    }

    /// Total outflow rate from a state.
    pub fn exit_rate(&self, state: usize) -> f64 {
        self.rates[state].iter().sum()
    }

    /// Expected time (hours) to first reach any state in `absorbing`, starting from
    /// `start`, treating the absorbing states as terminal.
    ///
    /// Solves the standard first-passage linear system
    /// `exit_rate(i) * h_i - Σ_j rate(i→j) h_j = 1` over transient states.
    /// Returns `f64::INFINITY` if the absorbing set is unreachable from `start`.
    #[allow(clippy::needless_range_loop)] // dense matrix assembly reads clearest indexed
    pub fn mean_hitting_time(&self, start: usize, absorbing: &[usize]) -> f64 {
        assert!(start < self.n);
        let is_absorbing = |s: usize| absorbing.contains(&s);
        if is_absorbing(start) {
            return 0.0;
        }
        // Map transient states to dense indices.
        let transient: Vec<usize> = (0..self.n).filter(|&s| !is_absorbing(s)).collect();
        let index: Vec<Option<usize>> = (0..self.n)
            .map(|s| transient.iter().position(|&t| t == s))
            .collect();
        let m = transient.len();
        let mut a = vec![vec![0.0f64; m + 1]; m];
        for (row, &s) in transient.iter().enumerate() {
            let exit = self.exit_rate(s);
            a[row][row] = exit;
            for t in 0..self.n {
                if t == s {
                    continue;
                }
                if let Some(col) = index[t] {
                    a[row][col] -= self.rates[s][t];
                }
            }
            a[row][m] = 1.0;
        }
        match solve_dense(&mut a) {
            Some(h) => {
                let v = h[index[start].expect("start is transient")];
                if v.is_finite() && v >= 0.0 {
                    v
                } else {
                    f64::INFINITY
                }
            }
            None => f64::INFINITY,
        }
    }

    /// The state distribution at time `t_hours`, starting from state `start` with
    /// probability one: the row vector `e_start · exp(Q t)`.
    ///
    /// Computed by scaling-and-squaring on the generator (scale `Q t` until its
    /// row-sum norm is ≤ ½, sum a short Taylor series, square back up), which stays
    /// numerically stable for any horizon — `λ t` in the millions of hours squares
    /// up in ~30 matrix products instead of overflowing a Poisson series. The
    /// returned vector is clamped to `[0, 1]` and renormalized, so it is always a
    /// probability distribution.
    ///
    /// This is the transient-analysis primitive behind
    /// [`RepairableGroup::reliability_at`]: make the over-threshold states
    /// absorbing, push the initial distribution through `exp(Q t)`, and read off
    /// how much mass has not yet been absorbed.
    pub fn transient_distribution(&self, start: usize, t_hours: f64) -> Vec<f64> {
        assert!(start < self.n, "start state out of range");
        assert!(
            t_hours >= 0.0 && t_hours.is_finite(),
            "time must be finite and non-negative, got {t_hours}"
        );
        let n = self.n;
        let mut distribution = vec![0.0; n];
        if t_hours == 0.0 {
            distribution[start] = 1.0;
            return distribution;
        }
        // A = Q·t with the implicit diagonal filled in.
        let mut a = vec![vec![0.0f64; n]; n];
        for (i, row) in a.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                if i != j {
                    *cell = self.rates[i][j] * t_hours;
                }
            }
            row[i] = -self.exit_rate(i) * t_hours;
        }
        // Scale A down until ‖A‖∞ ≤ ½ so a short Taylor series converges to
        // machine precision, then square the result back up.
        let norm = a
            .iter()
            .map(|row| row.iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0, f64::max);
        let squarings = if norm > 0.5 {
            (norm / 0.5).log2().ceil() as u32
        } else {
            0
        };
        let scale = 2.0f64.powi(-(squarings as i32));
        for row in &mut a {
            for cell in row.iter_mut() {
                *cell *= scale;
            }
        }
        let identity = |n: usize| -> Vec<Vec<f64>> {
            let mut m = vec![vec![0.0; n]; n];
            for (i, row) in m.iter_mut().enumerate() {
                row[i] = 1.0;
            }
            m
        };
        let mat_mul = |x: &[Vec<f64>], y: &[Vec<f64>]| -> Vec<Vec<f64>> {
            let mut out = vec![vec![0.0; n]; n];
            for (i, out_row) in out.iter_mut().enumerate() {
                for (k, &xik) in x[i].iter().enumerate() {
                    if xik == 0.0 {
                        continue;
                    }
                    for (j, out_cell) in out_row.iter_mut().enumerate() {
                        *out_cell += xik * y[k][j];
                    }
                }
            }
            out
        };
        // exp(A) ≈ Σ_{k=0}^{16} A^k / k!  (truncation error < 1e-16 at ‖A‖ ≤ ½).
        let mut exp = identity(n);
        let mut term = identity(n);
        for k in 1..=16u32 {
            term = mat_mul(&term, &a);
            let inv_k = 1.0 / k as f64;
            for row in &mut term {
                for cell in row.iter_mut() {
                    *cell *= inv_k;
                }
            }
            for (erow, trow) in exp.iter_mut().zip(&term) {
                for (e, t) in erow.iter_mut().zip(trow) {
                    *e += t;
                }
            }
        }
        for _ in 0..squarings {
            exp = mat_mul(&exp, &exp);
        }
        // Row `start` is the distribution; clamp float drift and renormalize.
        let mut total = 0.0;
        for (slot, value) in distribution.iter_mut().zip(&exp[start]) {
            *slot = value.clamp(0.0, 1.0);
            total += *slot;
        }
        if total > 0.0 {
            for slot in &mut distribution {
                *slot /= total;
            }
        }
        distribution
    }

    /// Steady-state distribution π with `π Q = 0` and `Σ π = 1`.
    ///
    /// Returns `None` when the chain has no transitions at all.
    #[allow(clippy::needless_range_loop)] // dense matrix assembly reads clearest indexed
    pub fn steady_state(&self) -> Option<Vec<f64>> {
        if self.rates.iter().all(|row| row.iter().all(|&r| r == 0.0)) {
            return None;
        }
        // Build Q^T π = 0 with the last equation replaced by the normalization constraint.
        let n = self.n;
        let mut a = vec![vec![0.0f64; n + 1]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                // d/dt π_j gains rate(i→j) * π_i and loses exit_rate(j) * π_j.
                a[j][i] += self.rates[i][j];
            }
        }
        for j in 0..n {
            a[j][j] -= self.exit_rate(j);
        }
        // Replace the last row by Σ π = 1.
        for j in 0..n {
            a[n - 1][j] = 1.0;
        }
        a[n - 1][n] = 1.0;
        let pi = solve_dense(&mut a)?;
        let sum: f64 = pi.iter().sum();
        if !(sum.is_finite()) || sum <= 0.0 {
            return None;
        }
        Some(pi.iter().map(|p| (p / sum).max(0.0)).collect())
    }
}

/// Solves a dense augmented system `[A | b]` by Gaussian elimination with partial
/// pivoting. Each row has `n + 1` entries. Returns `None` when the matrix is singular.
#[allow(clippy::needless_range_loop)] // Gaussian elimination reads clearest indexed
fn solve_dense(a: &mut [Vec<f64>]) -> Option<Vec<f64>> {
    let n = a.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })?;
        if a[pivot][col].abs() < 1e-14 {
            return None;
        }
        a.swap(col, pivot);
        let p = a[col][col];
        for j in col..=n {
            a[col][j] /= p;
        }
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = a[row][col];
            if factor == 0.0 {
                continue;
            }
            for j in col..=n {
                a[row][j] -= factor * a[col][j];
            }
        }
    }
    Some((0..n).map(|i| a[i][n]).collect())
}

/// A birth–death chain whose states count the number of failed nodes in a group of `n`,
/// with per-node failure rate λ and per-node repair rate μ (each failed node is repaired
/// independently).
#[derive(Debug, Clone)]
pub struct BirthDeathChain {
    n: usize,
    lambda: f64,
    mu: f64,
}

impl BirthDeathChain {
    /// Creates a chain for `n` nodes with per-node failure rate `lambda` and per-node
    /// repair rate `mu` (per hour).
    pub fn new(n: usize, lambda: f64, mu: f64) -> Self {
        assert!(n > 0);
        assert!(lambda >= 0.0 && mu >= 0.0);
        Self { n, lambda, mu }
    }

    /// Number of nodes in the group.
    pub fn group_size(&self) -> usize {
        self.n
    }

    /// Per-node failure rate λ (events per hour).
    pub fn failure_rate(&self) -> f64 {
        self.lambda
    }

    /// Per-node repair rate μ (events per hour).
    pub fn repair_rate(&self) -> f64 {
        self.mu
    }

    /// Materializes the chain as a [`MarkovChain`] over states `0..=n` failed nodes.
    pub fn chain(&self) -> MarkovChain {
        let mut chain = MarkovChain::new(self.n + 1);
        for failed in 0..=self.n {
            let up = self.n - failed;
            if failed < self.n {
                chain.set_rate(failed, failed + 1, up as f64 * self.lambda);
            }
            if failed > 0 {
                chain.set_rate(failed, failed - 1, failed as f64 * self.mu);
            }
        }
        chain
    }
}

/// A repairable consensus group analysed as a birth–death chain: mean time to exceed the
/// fault threshold, reliability over time, and steady-state availability of a quorum.
///
/// This is the §2 storage-community analysis applied to consensus: `n` nodes fail at
/// rate λ and are repaired at rate μ, and the deployment keeps its quorum as long as
/// no more than `tolerated_failures` nodes are down simultaneously. The time-domain
/// query API (`prob_consensus::query::Query::repairable_cell`) renders these numbers
/// as trajectory records.
///
/// # Examples
///
/// ```
/// use fault_model::markov::RepairableGroup;
///
/// // 5 nodes, ~1 failure per 10k hours each, 10-hour mean repair, majority quorum
/// // (tolerates 2 simultaneous failures).
/// let group = RepairableGroup::new(5, 1e-4, 0.1, 2);
/// // A healthy group starts fully reliable and degrades monotonically...
/// assert_eq!(group.reliability_at(0.0), 1.0);
/// assert!(group.reliability_at(1_000.0) > group.reliability_at(100_000.0));
/// // ...while repair keeps the long-run quorum availability extremely high.
/// assert!(group.steady_state_availability() > 0.999_999);
/// assert!(group.unavailability_minutes_per_year() < 1.0);
/// // Mean time until a third node is down concurrently (the MTTDL analogue).
/// assert!(group.mean_time_to_threshold_exceeded() > 1e6);
/// ```
#[derive(Debug, Clone)]
pub struct RepairableGroup {
    chain: BirthDeathChain,
    /// Number of simultaneous failures that the deployment can absorb (e.g. `f`, or
    /// `n - quorum_size`).
    tolerated_failures: usize,
}

impl RepairableGroup {
    /// Creates a repairable group of `n` nodes with per-node failure rate `lambda`,
    /// per-node repair rate `mu`, and a tolerance of `tolerated_failures` simultaneous
    /// failures.
    pub fn new(n: usize, lambda: f64, mu: f64, tolerated_failures: usize) -> Self {
        assert!(tolerated_failures < n, "tolerance must be below group size");
        Self {
            chain: BirthDeathChain::new(n, lambda, mu),
            tolerated_failures,
        }
    }

    /// Mean time (hours) until more than the tolerated number of nodes are down
    /// simultaneously, starting from a fully healthy group. This is the consensus
    /// analogue of MTTDL.
    pub fn mean_time_to_threshold_exceeded(&self) -> f64 {
        let chain = self.chain.chain();
        let absorbing: Vec<usize> = (self.tolerated_failures + 1..=self.chain.n).collect();
        chain.mean_hitting_time(0, &absorbing)
    }

    /// Steady-state probability that at most the tolerated number of nodes are down,
    /// i.e. the long-run availability of the quorum.
    pub fn steady_state_availability(&self) -> f64 {
        let chain = self.chain.chain();
        match chain.steady_state() {
            Some(pi) => pi[..=self.tolerated_failures].iter().sum(),
            None => 1.0,
        }
    }

    /// Number of nodes in the group.
    pub fn group_size(&self) -> usize {
        self.chain.group_size()
    }

    /// Number of simultaneous failures the group tolerates.
    pub fn tolerated_failures(&self) -> usize {
        self.tolerated_failures
    }

    /// Per-node failure rate λ (events per hour).
    pub fn failure_rate(&self) -> f64 {
        self.chain.failure_rate()
    }

    /// Per-node repair rate μ (events per hour).
    pub fn repair_rate(&self) -> f64 {
        self.chain.repair_rate()
    }

    /// Probability that the fault threshold has *never* been exceeded by `t_hours`,
    /// starting from a fully healthy group — the reliability function `R(t)` whose
    /// mean is [`RepairableGroup::mean_time_to_threshold_exceeded`].
    ///
    /// Computed by making every over-threshold state absorbing and pushing the
    /// initial distribution through the chain with
    /// [`MarkovChain::transient_distribution`]; the unabsorbed mass is `R(t)`.
    pub fn reliability_at(&self, t_hours: f64) -> f64 {
        let mut absorbing = self.chain.chain();
        // Over-threshold states keep no outgoing transitions: once the threshold is
        // exceeded the excursion counts forever (first-passage semantics).
        for state in self.tolerated_failures + 1..=self.chain.n {
            for to in 0..absorbing.len() {
                if to != state {
                    absorbing.set_rate(state, to, 0.0);
                }
            }
        }
        let distribution = absorbing.transient_distribution(0, t_hours);
        distribution[..=self.tolerated_failures]
            .iter()
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }

    /// Long-run expected minutes per year during which the quorum is unavailable
    /// (more than the tolerated number of nodes down): the complement of
    /// [`RepairableGroup::steady_state_availability`] scaled to operator units.
    pub fn unavailability_minutes_per_year(&self) -> f64 {
        (1.0 - self.steady_state_availability()) * crate::metrics::HOURS_PER_YEAR * 60.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component_mttf_is_inverse_rate() {
        // One node, no repair: state 0 = up, state 1 = down.
        let mut chain = MarkovChain::new(2);
        chain.set_rate(0, 1, 0.01);
        let mttf = chain.mean_hitting_time(0, &[1]);
        assert!((mttf - 100.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_absorbing_state_has_infinite_hitting_time() {
        let chain = MarkovChain::new(3);
        assert!(chain.mean_hitting_time(0, &[2]).is_infinite());
    }

    #[test]
    fn two_component_series_mttf() {
        // Two independent nodes failing at rate λ, absorbing when either fails:
        // MTTF = 1 / (2λ).
        let group = BirthDeathChain::new(2, 0.001, 0.0).chain();
        let mttf = group.mean_hitting_time(0, &[1, 2]);
        assert!((mttf - 500.0).abs() < 1e-6);
    }

    #[test]
    fn repair_extends_time_to_double_failure() {
        // Classic RAID-1 result: MTTDL from a healthy pair = (3λ + μ) / (2 λ^2); with
        // μ >> λ repair helps a lot.
        let lambda = 1e-4;
        let mu = 1e-1;
        let without = RepairableGroup::new(2, lambda, 0.0, 1).mean_time_to_threshold_exceeded();
        let with = RepairableGroup::new(2, lambda, mu, 1).mean_time_to_threshold_exceeded();
        let analytic = (3.0 * lambda + mu) / (2.0 * lambda * lambda);
        assert!(
            (with - analytic).abs() / analytic < 1e-6,
            "{with} vs {analytic}"
        );
        assert!(with > 100.0 * without);
    }

    #[test]
    fn steady_state_of_single_repairable_component() {
        let mut chain = MarkovChain::new(2);
        chain.set_rate(0, 1, 1.0);
        chain.set_rate(1, 0, 9.0);
        let pi = chain.steady_state().unwrap();
        assert!((pi[0] - 0.9).abs() < 1e-9);
        assert!((pi[1] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn steady_state_availability_improves_with_faster_repair() {
        let slow = RepairableGroup::new(3, 1e-3, 1e-2, 1).steady_state_availability();
        let fast = RepairableGroup::new(3, 1e-3, 1.0, 1).steady_state_availability();
        assert!(fast > slow);
        assert!(fast > 0.99999);
    }

    #[test]
    fn mean_time_to_threshold_scales_with_group_size() {
        // Larger groups with the same tolerance hit the threshold sooner.
        let small = RepairableGroup::new(3, 1e-4, 1e-2, 1).mean_time_to_threshold_exceeded();
        let large = RepairableGroup::new(9, 1e-4, 1e-2, 1).mean_time_to_threshold_exceeded();
        assert!(small > large);
    }

    #[test]
    fn chain_without_transitions_has_no_steady_state() {
        assert!(MarkovChain::new(4).steady_state().is_none());
    }

    #[test]
    fn transient_distribution_matches_exponential_decay() {
        // One component failing at rate λ with no repair: P[still up at t] = exp(-λt).
        let lambda = 0.01;
        let mut chain = MarkovChain::new(2);
        chain.set_rate(0, 1, lambda);
        for t in [0.0, 1.0, 50.0, 100.0, 1_000.0, 100_000.0] {
            let pi = chain.transient_distribution(0, t);
            let expected = (-lambda * t).exp();
            assert!(
                (pi[0] - expected).abs() < 1e-9,
                "t={t}: got {} expected {expected}",
                pi[0]
            );
            assert!((pi[0] + pi[1] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn transient_distribution_converges_to_steady_state() {
        let mut chain = MarkovChain::new(2);
        chain.set_rate(0, 1, 1.0);
        chain.set_rate(1, 0, 9.0);
        let pi_inf = chain.steady_state().unwrap();
        // Relaxation time is 1/(λ+μ) = 0.1h; 1000h is deep in the stationary regime.
        let pi_t = chain.transient_distribution(0, 1_000.0);
        for (a, b) in pi_t.iter().zip(&pi_inf) {
            assert!((a - b).abs() < 1e-9, "transient {a} vs steady {b}");
        }
        // And it is a distribution at every horizon, including enormous λt.
        let far = chain.transient_distribution(1, 1e7);
        assert!((far.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(far.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn transient_distribution_at_zero_is_the_start_state() {
        let mut chain = MarkovChain::new(3);
        chain.set_rate(0, 1, 5.0);
        chain.set_rate(1, 2, 5.0);
        assert_eq!(chain.transient_distribution(1, 0.0), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn reliability_curve_is_monotone_and_anchored_at_one() {
        let group = RepairableGroup::new(3, 1e-3, 1e-2, 1);
        assert_eq!(group.reliability_at(0.0), 1.0);
        let mut previous = 1.0;
        for t in [10.0, 100.0, 1_000.0, 10_000.0, 100_000.0] {
            let r = group.reliability_at(t);
            assert!(
                r <= previous + 1e-12,
                "reliability must not increase: R({t}) = {r} > {previous}"
            );
            previous = r;
        }
        // Eventually the threshold is exceeded almost surely (repair only delays it).
        assert!(group.reliability_at(1e8) < 1e-3);
    }

    #[test]
    fn repair_lifts_the_reliability_curve() {
        let t = 5_000.0;
        let without = RepairableGroup::new(3, 1e-3, 0.0, 1).reliability_at(t);
        let with = RepairableGroup::new(3, 1e-3, 0.1, 1).reliability_at(t);
        assert!(with > without, "repair must help: {with} vs {without}");
    }

    #[test]
    fn reliability_mean_is_consistent_with_first_passage_time() {
        // ∫ R(t) dt = MTTF; check the trapezoid integral against the linear solve.
        let group = RepairableGroup::new(2, 1e-3, 1e-2, 1);
        let mttf = group.mean_time_to_threshold_exceeded();
        let step = mttf / 2_000.0;
        let mut integral = 0.0;
        let mut t = 0.0;
        let mut r_prev = 1.0;
        // Integrate far enough that the tail is negligible.
        while t < 12.0 * mttf {
            t += step;
            let r = group.reliability_at(t);
            integral += 0.5 * (r_prev + r) * step;
            r_prev = r;
        }
        assert!(
            (integral - mttf).abs() / mttf < 0.01,
            "∫R = {integral} vs MTTF = {mttf}"
        );
    }

    #[test]
    fn unavailability_minutes_match_the_steady_state_complement() {
        // Single repairable component: availability μ/(λ+μ) = 0.9.
        let group = RepairableGroup::new(1, 1.0, 9.0, 0);
        assert!((group.steady_state_availability() - 0.9).abs() < 1e-9);
        let expected = 0.1 * crate::metrics::HOURS_PER_YEAR * 60.0;
        assert!((group.unavailability_minutes_per_year() - expected).abs() < 1e-6);
    }

    #[test]
    fn group_accessors_expose_the_configuration() {
        let group = RepairableGroup::new(5, 1e-4, 0.1, 2);
        assert_eq!(group.group_size(), 5);
        assert_eq!(group.tolerated_failures(), 2);
        assert!((group.failure_rate() - 1e-4).abs() < 1e-18);
        assert!((group.repair_rate() - 0.1).abs() < 1e-15);
    }
}
