//! Reliability metrics: nines, AFR conversions, MTBF/MTTR, availability.
//!
//! These mirror the vocabulary the storage community uses (§2 of the paper): annual
//! failure rates measured over large fleets, "nines" of availability or durability, and
//! mean-time metrics derived from failure (λ) and repair (μ) rates.

/// Hours in a (mean) year; the constant commonly used for AFR conversions.
pub const HOURS_PER_YEAR: f64 = 8766.0;

/// Converts an annual failure rate (probability of failing within a year) into a
/// constant hourly hazard rate λ such that `1 - exp(-λ * HOURS_PER_YEAR) == afr`.
///
/// # Panics
///
/// Panics if `afr` is not in `[0, 1)`.
///
/// # Examples
///
/// ```
/// let lambda = fault_model::metrics::afr_to_hourly_rate(0.04);
/// let back = fault_model::metrics::hourly_rate_to_afr(lambda);
/// assert!((back - 0.04).abs() < 1e-12);
/// ```
pub fn afr_to_hourly_rate(afr: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&afr),
        "AFR must be in [0, 1), got {afr}"
    );
    -(1.0 - afr).ln() / HOURS_PER_YEAR
}

/// Converts a constant hourly hazard rate into the implied annual failure rate.
pub fn hourly_rate_to_afr(lambda: f64) -> f64 {
    assert!(lambda >= 0.0, "rate must be non-negative");
    1.0 - (-lambda * HOURS_PER_YEAR).exp()
}

/// Mean time between failures for a constant hazard rate λ (per hour), in hours.
///
/// Returns `f64::INFINITY` when the rate is zero.
pub fn mtbf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / lambda
    }
}

/// Steady-state availability of a repairable component with failure rate λ and repair
/// rate μ: `μ / (λ + μ)`.
pub fn availability(lambda: f64, mu: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    mu / (lambda + mu)
}

/// Number of "nines" in a probability: `-log10(1 - p)`.
///
/// `nines(0.999)` is `3.0`; a probability of exactly `1.0` maps to `f64::INFINITY`.
pub fn nines(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
    if p >= 1.0 {
        f64::INFINITY
    } else {
        -(1.0 - p).log10()
    }
}

/// Inverse of [`nines`]: the probability that has `n` nines.
pub fn probability_from_nines(n: f64) -> f64 {
    assert!(n >= 0.0, "nines must be non-negative");
    1.0 - 10f64.powf(-n)
}

/// A probability wrapped with convenient formatting in "nines" and percent notation.
///
/// # Examples
///
/// ```
/// use fault_model::metrics::Nines;
/// let n = Nines::from_probability(0.9997);
/// assert_eq!(format!("{n}"), "99.97%");
/// assert!((n.nines() - 3.52).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nines {
    probability: f64,
}

impl Nines {
    /// Wraps a probability in `[0, 1]`.
    pub fn from_probability(probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0,1], got {probability}"
        );
        Self { probability }
    }

    /// Builds the probability that has exactly `n` nines.
    pub fn from_nines(n: f64) -> Self {
        Self::from_probability(probability_from_nines(n))
    }

    /// The underlying probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// The probability of the complementary event (failure / violation).
    pub fn complement(&self) -> f64 {
        1.0 - self.probability
    }

    /// The number of nines, i.e. `-log10(1 - p)`.
    pub fn nines(&self) -> f64 {
        nines(self.probability)
    }

    /// Whether this probability meets a target expressed in nines.
    pub fn meets(&self, target_nines: f64) -> bool {
        self.nines() >= target_nines
    }

    /// Formats the probability as a percentage with enough significant digits to show the
    /// leading non-nine digit (the style used in the paper's tables, e.g. `99.9990%`).
    pub fn as_percent(&self) -> String {
        // Probabilities within f64 rounding error of 1 are shown as 100% rather than as a
        // long string of nines.
        if self.probability >= 1.0 - 1e-12 {
            return "100%".to_string();
        }
        // Show every leading nine of the percentage plus the first non-nine digit,
        // never fewer than two decimals (e.g. 99.97%, 99.9990%, 99.99993%).
        let failure_percent = (1.0 - self.probability) * 100.0;
        let leading_nines = if failure_percent >= 1.0 {
            0
        } else {
            (-failure_percent.log10()).floor() as usize
        };
        let decimals = (leading_nines + 1).max(2);
        format!("{:.*}%", decimals, self.probability * 100.0)
    }
}

impl std::fmt::Display for Nines {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn afr_round_trips_through_rate() {
        for afr in [0.001, 0.01, 0.04, 0.08, 0.5, 0.9] {
            let rate = afr_to_hourly_rate(afr);
            assert!((hourly_rate_to_afr(rate) - afr).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_afr_means_zero_rate() {
        assert_eq!(afr_to_hourly_rate(0.0), 0.0);
        assert_eq!(hourly_rate_to_afr(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "AFR must be in")]
    fn afr_of_one_panics() {
        afr_to_hourly_rate(1.0);
    }

    #[test]
    fn mtbf_of_zero_rate_is_infinite() {
        assert!(mtbf(0.0).is_infinite());
        assert!((mtbf(0.01) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn availability_matches_closed_form() {
        assert!((availability(1.0, 9.0) - 0.9).abs() < 1e-12);
        assert_eq!(availability(0.0, 1.0), 1.0);
    }

    #[test]
    fn nines_of_common_values() {
        assert!((nines(0.9) - 1.0).abs() < 1e-12);
        assert!((nines(0.999) - 3.0).abs() < 1e-12);
        assert!(nines(1.0).is_infinite());
        assert!((probability_from_nines(3.0) - 0.999).abs() < 1e-12);
    }

    #[test]
    fn nines_percent_formatting_matches_paper_style() {
        assert_eq!(Nines::from_probability(0.9997).as_percent(), "99.97%");
        assert_eq!(Nines::from_probability(0.999990).as_percent(), "99.9990%");
        assert_eq!(Nines::from_probability(0.9988).as_percent(), "99.88%");
        assert_eq!(Nines::from_probability(1.0).as_percent(), "100%");
    }

    #[test]
    fn nines_meets_targets() {
        let n = Nines::from_probability(0.99995);
        assert!(n.meets(4.0));
        assert!(!n.meets(5.0));
        assert!((n.complement() - 5e-5).abs() < 1e-12);
    }
}
