//! Reliability metrics: nines, AFR conversions, MTBF/MTTR, availability.
//!
//! These mirror the vocabulary the storage community uses (§2 of the paper): annual
//! failure rates measured over large fleets, "nines" of availability or durability, and
//! mean-time metrics derived from failure (λ) and repair (μ) rates.

/// Hours in a (mean) year; the constant commonly used for AFR conversions.
pub const HOURS_PER_YEAR: f64 = 8766.0;

/// Converts an annual failure rate (probability of failing within a year) into a
/// constant hourly hazard rate λ such that `1 - exp(-λ * HOURS_PER_YEAR) == afr`.
///
/// # Panics
///
/// Panics if `afr` is not in `[0, 1)`.
///
/// # Examples
///
/// ```
/// let lambda = fault_model::metrics::afr_to_hourly_rate(0.04);
/// let back = fault_model::metrics::hourly_rate_to_afr(lambda);
/// assert!((back - 0.04).abs() < 1e-12);
/// ```
pub fn afr_to_hourly_rate(afr: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&afr),
        "AFR must be in [0, 1), got {afr}"
    );
    -(1.0 - afr).ln() / HOURS_PER_YEAR
}

/// Converts a constant hourly hazard rate into the implied annual failure rate.
pub fn hourly_rate_to_afr(lambda: f64) -> f64 {
    assert!(lambda >= 0.0, "rate must be non-negative");
    1.0 - (-lambda * HOURS_PER_YEAR).exp()
}

/// Mean time between failures for a constant hazard rate λ (per hour), in hours.
///
/// Returns `f64::INFINITY` when the rate is zero.
pub fn mtbf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / lambda
    }
}

/// Steady-state availability of a repairable component with failure rate λ and repair
/// rate μ: `μ / (λ + μ)`.
pub fn availability(lambda: f64, mu: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    mu / (lambda + mu)
}

/// Number of "nines" in a probability: `-log10(1 - p)`.
///
/// `nines(0.999)` is `3.0`; a probability of exactly `1.0` maps to `f64::INFINITY`.
pub fn nines(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
    if p >= 1.0 {
        f64::INFINITY
    } else {
        -(1.0 - p).log10()
    }
}

/// Inverse of [`nines`]: the probability that has `n` nines.
pub fn probability_from_nines(n: f64) -> f64 {
    assert!(n >= 0.0, "nines must be non-negative");
    1.0 - 10f64.powf(-n)
}

/// A probability wrapped with convenient formatting in "nines" and percent notation.
///
/// # Examples
///
/// ```
/// use fault_model::metrics::Nines;
/// let n = Nines::from_probability(0.9997);
/// assert_eq!(format!("{n}"), "99.97%");
/// assert!((n.nines() - 3.52).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Nines {
    probability: f64,
}

impl Nines {
    /// Wraps a probability in `[0, 1]`.
    pub fn from_probability(probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0,1], got {probability}"
        );
        Self { probability }
    }

    /// Builds the probability that has exactly `n` nines.
    pub fn from_nines(n: f64) -> Self {
        Self::from_probability(probability_from_nines(n))
    }

    /// The underlying probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// The probability of the complementary event (failure / violation).
    pub fn complement(&self) -> f64 {
        1.0 - self.probability
    }

    /// The number of nines, i.e. `-log10(1 - p)`.
    pub fn nines(&self) -> f64 {
        nines(self.probability)
    }

    /// Whether this probability meets a target expressed in nines.
    ///
    /// Compared in log-space with a tolerance: exact-nines boundaries do not
    /// survive float rounding — `1 - 0.999` evaluates to `1.0000000000000009e-3`,
    /// so `nines(0.999)` is `2.9999999999999996` and a plain `>=` would deny that
    /// exactly three nines meet a three-nines target. The tolerance is the
    /// representation noise of a probability at the target: storing `1 − 10^-k`
    /// rounds by up to half an ulp of 1.0, which the complement amplifies to
    /// `(ε/2)·10^k` in relative terms — `(ε/2)·10^k / ln 10` nines — plus a fixed
    /// 1e-9 floor for the logarithm's own rounding. Both terms are far below any
    /// meaningful reliability distinction at their respective scales. The slack is
    /// capped at half a nine: beyond ~16 nines the uncapped formula would exceed
    /// whole nines and wave anything through, while the boundary cases it exists
    /// for stop being representable at all (the largest f64 below 1.0 is ~15.95
    /// nines; `1 − 10^-17` rounds to exactly 1.0, whose nines are infinite).
    pub fn meets(&self, target_nines: f64) -> bool {
        let representation_slack =
            (f64::EPSILON / 2.0 * 10f64.powf(target_nines) / std::f64::consts::LN_10).min(0.5);
        self.nines() >= target_nines - representation_slack - 1e-9
    }

    /// Formats the probability as a percentage with enough significant digits to show the
    /// leading non-nine digit (the style used in the paper's tables, e.g. `99.9990%`).
    pub fn as_percent(&self) -> String {
        // Probabilities within f64 rounding error of 1 are shown as 100% rather than as a
        // long string of nines.
        if self.probability >= 1.0 - 1e-12 {
            return "100%".to_string();
        }
        // Show every leading nine of the percentage plus the first non-nine digit,
        // never fewer than two decimals (e.g. 99.97%, 99.9990%, 99.99993%).
        let failure_percent = (1.0 - self.probability) * 100.0;
        let leading_nines = if failure_percent >= 1.0 {
            0
        } else {
            (-failure_percent.log10()).floor() as usize
        };
        let decimals = (leading_nines + 1).max(2);
        format!("{:.*}%", decimals, self.probability * 100.0)
    }
}

impl std::fmt::Display for Nines {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_percent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn afr_round_trips_through_rate() {
        for afr in [0.001, 0.01, 0.04, 0.08, 0.5, 0.9] {
            let rate = afr_to_hourly_rate(afr);
            assert!((hourly_rate_to_afr(rate) - afr).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_afr_means_zero_rate() {
        assert_eq!(afr_to_hourly_rate(0.0), 0.0);
        assert_eq!(hourly_rate_to_afr(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "AFR must be in")]
    fn afr_of_one_panics() {
        afr_to_hourly_rate(1.0);
    }

    #[test]
    fn mtbf_of_zero_rate_is_infinite() {
        assert!(mtbf(0.0).is_infinite());
        assert!((mtbf(0.01) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn availability_matches_closed_form() {
        assert!((availability(1.0, 9.0) - 0.9).abs() < 1e-12);
        assert_eq!(availability(0.0, 1.0), 1.0);
    }

    #[test]
    fn nines_of_common_values() {
        assert!((nines(0.9) - 1.0).abs() < 1e-12);
        assert!((nines(0.999) - 3.0).abs() < 1e-12);
        assert!(nines(1.0).is_infinite());
        assert!((probability_from_nines(3.0) - 0.999).abs() < 1e-12);
    }

    #[test]
    fn nines_percent_formatting_matches_paper_style() {
        assert_eq!(Nines::from_probability(0.9997).as_percent(), "99.97%");
        assert_eq!(Nines::from_probability(0.999990).as_percent(), "99.9990%");
        assert_eq!(Nines::from_probability(0.9988).as_percent(), "99.88%");
        assert_eq!(Nines::from_probability(1.0).as_percent(), "100%");
    }

    #[test]
    fn nines_meets_targets() {
        let n = Nines::from_probability(0.99995);
        assert!(n.meets(4.0));
        assert!(!n.meets(5.0));
        assert!((n.complement() - 5e-5).abs() < 1e-12);
    }

    #[test]
    fn meets_holds_at_exact_nines_boundaries() {
        // Regression: 1 - 10^-k is not exactly representable, so -log10(1 - p)
        // lands a few ulps below k and a strict comparison denied the boundary
        // (e.g. exactly 0.999 vs a 3-nines target).
        for k in 1..=12 {
            let boundary = Nines::from_probability(probability_from_nines(k as f64));
            assert!(
                boundary.meets(k as f64),
                "exactly {k} nines must meet a {k}-nines target (nines() = {})",
                boundary.nines()
            );
        }
        assert!(Nines::from_probability(0.999).meets(3.0));
        assert!(Nines::from_probability(0.9999).meets(4.0));
        // The tolerance must not wave through genuinely lower reliability.
        assert!(!Nines::from_probability(0.999).meets(3.001));
        assert!(!Nines::from_probability(0.9989).meets(3.0));
        assert!(Nines::from_probability(1.0).meets(100.0));
        // ... including at unrepresentably deep targets, where the uncapped slack
        // formula would exceed whole nines (regression for the slack cap).
        assert!(!Nines::from_probability(0.999).meets(17.0));
        assert!(!Nines::from_probability(0.999).meets(20.0));
        let best_below_one = Nines::from_probability(f64::from_bits(1.0f64.to_bits() - 1));
        assert!(!best_below_one.meets(17.0));
    }
}
