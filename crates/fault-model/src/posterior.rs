//! Conjugate posteriors over fault parameters fitted from fleet telemetry.
//!
//! The paper's core observation is that per-node fault probabilities are not
//! known constants — they are *estimated* from noisy telemetry. This module
//! turns the point estimates of [`crate::telemetry::TelemetryEstimator`] into
//! proper Bayesian posteriors:
//!
//! * [`BetaPosterior`] — a Beta posterior over a per-observation failure
//!   probability, the conjugate update for Bernoulli counts.
//! * [`GammaPosterior`] — a Gamma posterior over an annual failure *rate*, the
//!   conjugate update for Poisson counts over an exposure time.
//! * [`TelemetryPosterior`] — both fitted from one [`FleetTelemetry`] set,
//!   with AFR-space credible intervals.
//!
//! All constructors use the Jeffreys prior (Beta(1/2, 1/2) / Gamma(1/2, 0)),
//! so a zero-failure fleet yields a proper, non-degenerate posterior instead
//! of a point mass at `p = 0`.
//!
//! Sampling is by inverse-CDF ([`BetaPosterior::sample_p`] draws exactly one
//! uniform from the caller's RNG and maps it through [`BetaPosterior::quantile`]),
//! so posterior draws are deterministic given the RNG stream — the property
//! the second-order analysis mode in `prob-consensus` relies on for its
//! bit-identical-at-any-thread-count contract.

use rand::Rng;

use crate::metrics::HOURS_PER_YEAR;
use crate::telemetry::FleetTelemetry;

/// Natural log of the gamma function via the Lanczos approximation (g = 7,
/// 9 coefficients) — accurate to ~1e-13 over the positive reals, which is far
/// tighter than the bisection tolerance of the quantile functions below.
fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the approximation in its accurate range.
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEF[0];
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Continued-fraction kernel of the regularized incomplete beta function
/// (modified Lentz's method).
fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-15;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized incomplete beta function `I_x(a, b)` — the CDF of Beta(a, b).
fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction directly where it converges fast, else the
    // symmetry relation I_x(a, b) = 1 - I_{1-x}(b, a).
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b
    }
}

/// Regularized lower incomplete gamma function `P(s, x)` — the CDF of
/// Gamma(shape = s, rate = 1) at `x`. Series expansion for `x < s + 1`,
/// continued fraction for the upper tail otherwise.
fn regularized_lower_gamma(s: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x < s + 1.0 {
        let mut term = 1.0 / s;
        let mut sum = term;
        let mut n = s;
        for _ in 0..500 {
            n += 1.0;
            term *= x / n;
            sum += term;
            if term.abs() < sum.abs() * 1e-16 {
                break;
            }
        }
        (sum.ln() + s * x.ln() - x - ln_gamma(s)).exp()
    } else {
        const FPMIN: f64 = 1e-300;
        let mut b = x + 1.0 - s;
        let mut c = 1.0 / FPMIN;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - s);
            b += 2.0;
            d = an * d + b;
            if d.abs() < FPMIN {
                d = FPMIN;
            }
            c = b + an / c;
            if c.abs() < FPMIN {
                c = FPMIN;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-16 {
                break;
            }
        }
        1.0 - (s * x.ln() - x - ln_gamma(s)).exp() * h
    }
}

/// Inverts a monotone CDF by bisection. 200 halvings of the bracket reach
/// full f64 resolution, and the result depends only on `(cdf, q, lo, hi)` —
/// no platform-dependent special functions — so quantiles (and therefore
/// inverse-CDF samples) are bit-stable.
fn bisect_quantile(q: f64, mut lo: f64, mut hi: f64, cdf: impl Fn(f64) -> f64) -> f64 {
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break; // bracket has collapsed to adjacent floats
        }
        if cdf(mid) < q {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Checks that `level` is a usable credible-interval level.
fn assert_level(level: f64) {
    assert!(
        level.is_finite() && 0.0 < level && level < 1.0,
        "credible level must be in (0, 1), got {level}"
    );
}

/// A Beta posterior over a failure *probability* in `[0, 1]` — the conjugate
/// posterior for Bernoulli trial counts.
///
/// With the Jeffreys prior Beta(1/2, 1/2), observing `f` failures in `n`
/// trials yields Beta(f + 1/2, n − f + 1/2) (see [`BetaPosterior::from_counts`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaPosterior {
    alpha: f64,
    beta: f64,
}

impl BetaPosterior {
    /// Creates a Beta(alpha, beta) posterior from explicit hyperparameters.
    ///
    /// # Panics
    /// If either hyperparameter is non-finite or non-positive.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && beta.is_finite() && beta > 0.0,
            "Beta hyperparameters must be finite and positive, got alpha={alpha} beta={beta}"
        );
        Self { alpha, beta }
    }

    /// The Jeffreys-prior conjugate update: `failures` failures and
    /// `successes` non-failures yield Beta(failures + 1/2, successes + 1/2).
    /// A zero-failure fleet therefore gets a proper posterior with positive
    /// mass everywhere — no degenerate point estimate at `p = 0`.
    pub fn from_counts(failures: u64, successes: u64) -> Self {
        Self::new(failures as f64 + 0.5, successes as f64 + 0.5)
    }

    /// The `alpha` hyperparameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The `beta` hyperparameter.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Posterior mean `alpha / (alpha + beta)`.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Posterior variance.
    pub fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }

    /// CDF at `x` (the regularized incomplete beta function `I_x(alpha, beta)`).
    pub fn cdf(&self, x: f64) -> f64 {
        regularized_incomplete_beta(self.alpha, self.beta, x)
    }

    /// Quantile (inverse CDF) at probability `q ∈ [0, 1]`, by bisection.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile level {q} out of [0, 1]");
        if q <= 0.0 {
            return 0.0;
        }
        if q >= 1.0 {
            return 1.0;
        }
        bisect_quantile(q, 0.0, 1.0, |x| self.cdf(x))
    }

    /// Equal-tailed credible interval at the given `level` (e.g. `0.9` for the
    /// central 90% interval).
    pub fn credible_interval(&self, level: f64) -> (f64, f64) {
        assert_level(level);
        let tail = 0.5 * (1.0 - level);
        (self.quantile(tail), self.quantile(1.0 - tail))
    }

    /// Draws one posterior sample of `p` by inverse-CDF: consumes exactly one
    /// uniform from `rng` and maps it through [`BetaPosterior::quantile`].
    /// Deterministic given the RNG stream (no rejection loop).
    pub fn sample_p<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.gen::<f64>())
    }
}

/// A Gamma posterior over a failure *rate* (events per unit exposure) — the
/// conjugate posterior for Poisson counts observed over an exposure time.
///
/// With the Jeffreys prior Gamma(1/2, 0), observing `f` failures over
/// `t` device-years yields Gamma(shape = f + 1/2, rate = t).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaPosterior {
    shape: f64,
    rate: f64,
}

impl GammaPosterior {
    /// Creates a Gamma(shape, rate) posterior from explicit hyperparameters.
    ///
    /// # Panics
    /// If either hyperparameter is non-finite or non-positive.
    pub fn new(shape: f64, rate: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0 && rate.is_finite() && rate > 0.0,
            "Gamma hyperparameters must be finite and positive, got shape={shape} rate={rate}"
        );
        Self { shape, rate }
    }

    /// The Jeffreys-prior conjugate update: `failures` events over
    /// `exposure` device-years yield Gamma(failures + 1/2, exposure).
    ///
    /// # Panics
    /// If `exposure` is non-finite or non-positive (a zero-exposure fleet has
    /// no posterior; callers gate on exposure first).
    pub fn from_counts(failures: u64, exposure: f64) -> Self {
        Self::new(failures as f64 + 0.5, exposure)
    }

    /// The shape hyperparameter.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The rate hyperparameter (the observed exposure under a Jeffreys update).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Posterior mean `shape / rate`.
    pub fn mean(&self) -> f64 {
        self.shape / self.rate
    }

    /// Posterior variance `shape / rate²`.
    pub fn variance(&self) -> f64 {
        self.shape / (self.rate * self.rate)
    }

    /// CDF at `x` (the regularized lower incomplete gamma `P(shape, rate·x)`).
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        regularized_lower_gamma(self.shape, self.rate * x)
    }

    /// Quantile (inverse CDF) at probability `q ∈ [0, 1)`, by bisection on an
    /// expanding bracket.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile level {q} out of [0, 1)");
        if q <= 0.0 {
            return 0.0;
        }
        // Bracket the quantile: start past the mean + 10 standard deviations
        // and double until the CDF exceeds q.
        let mut hi = self.mean() + 10.0 * self.variance().sqrt();
        for _ in 0..200 {
            if self.cdf(hi) >= q {
                break;
            }
            hi *= 2.0;
        }
        bisect_quantile(q, 0.0, hi, |x| self.cdf(x))
    }

    /// Equal-tailed credible interval at the given `level`.
    pub fn credible_interval(&self, level: f64) -> (f64, f64) {
        assert_level(level);
        let tail = 0.5 * (1.0 - level);
        (self.quantile(tail), self.quantile(1.0 - tail))
    }

    /// Draws one posterior sample of the rate by inverse-CDF: consumes exactly
    /// one uniform from `rng`. Deterministic given the RNG stream.
    pub fn sample_rate<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.gen::<f64>())
    }
}

/// Both conjugate posteriors fitted from one telemetry set, with AFR-space
/// accessors. Built by [`crate::telemetry::TelemetryEstimator::posterior`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryPosterior {
    /// Beta posterior over the per-observation-record failure probability.
    pub probability: BetaPosterior,
    /// Gamma posterior over the annual failure rate (events per device-year).
    pub rate: GammaPosterior,
    /// Observed device-years backing the fit.
    pub device_years: f64,
    /// Observed failure count backing the fit.
    pub failures: usize,
}

impl TelemetryPosterior {
    /// Fits both posteriors from telemetry. Returns `None` when the telemetry
    /// covers no observation time (zero exposure admits no Gamma update).
    pub fn from_telemetry(telemetry: &FleetTelemetry) -> Option<Self> {
        let device_hours: f64 = telemetry.records().iter().map(|r| r.observed_hours).sum();
        if device_hours <= 0.0 {
            return None;
        }
        let device_years = device_hours / HOURS_PER_YEAR;
        let failures = telemetry.records().iter().filter(|r| r.failed).count();
        let successes = telemetry.len() - failures;
        Some(Self {
            probability: BetaPosterior::from_counts(failures as u64, successes as u64),
            rate: GammaPosterior::from_counts(failures as u64, device_years),
            device_years,
            failures,
        })
    }

    /// Posterior-mean annual failure rate mapped to AFR space
    /// (`1 − exp(−rate)`).
    pub fn afr_mean(&self) -> f64 {
        1.0 - (-self.rate.mean()).exp()
    }

    /// Equal-tailed credible interval over the AFR: the Gamma rate quantiles
    /// mapped through `1 − exp(−rate)` (monotone, so quantiles commute).
    pub fn afr_credible_interval(&self, level: f64) -> (f64, f64) {
        let (lo, hi) = self.rate.credible_interval(level);
        (1.0 - (-lo).exp(), 1.0 - (-hi).exp())
    }

    /// Draws one posterior AFR sample (one uniform consumed from `rng`).
    pub fn sample_afr<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        1.0 - (-self.rate.sample_rate(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(1/2) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
    }

    #[test]
    fn beta_cdf_matches_closed_forms() {
        // Beta(1, 1) is uniform; Beta(2, 1) has CDF x²; symmetric cases hit 1/2.
        let uniform = BetaPosterior::new(1.0, 1.0);
        let square = BetaPosterior::new(2.0, 1.0);
        for &x in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            assert!((uniform.cdf(x) - x).abs() < 1e-12, "uniform cdf at {x}");
            assert!((square.cdf(x) - x * x).abs() < 1e-12, "square cdf at {x}");
        }
        assert!((BetaPosterior::new(0.5, 0.5).cdf(0.5) - 0.5).abs() < 1e-12);
        assert!((BetaPosterior::new(7.0, 7.0).cdf(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn beta_quantile_inverts_cdf() {
        let post = BetaPosterior::from_counts(3, 97);
        for &q in &[0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99] {
            let x = post.quantile(q);
            assert!((post.cdf(x) - q).abs() < 1e-10, "roundtrip at q={q}");
        }
        assert_eq!(post.quantile(0.0), 0.0);
        assert_eq!(post.quantile(1.0), 1.0);
    }

    #[test]
    fn gamma_cdf_matches_exponential_closed_form() {
        // Gamma(shape = 1, rate = λ) is Exp(λ): CDF = 1 − exp(−λx).
        let exp = GammaPosterior::new(1.0, 2.0);
        for &x in &[0.1f64, 0.5, 1.0, 2.0] {
            let expected = 1.0 - (-2.0 * x).exp();
            assert!((exp.cdf(x) - expected).abs() < 1e-12, "cdf at {x}");
        }
    }

    #[test]
    fn gamma_quantile_inverts_cdf() {
        let post = GammaPosterior::from_counts(12, 340.0);
        for &q in &[0.01, 0.05, 0.5, 0.95, 0.99] {
            let x = post.quantile(q);
            assert!((post.cdf(x) - q).abs() < 1e-10, "roundtrip at q={q}");
        }
    }

    #[test]
    fn jeffreys_zero_failure_posterior_is_not_degenerate() {
        let beta = BetaPosterior::from_counts(0, 10_000);
        assert!(beta.mean() > 0.0);
        let (lo, hi) = beta.credible_interval(0.9);
        assert!(
            lo >= 0.0 && hi > lo,
            "interval [{lo}, {hi}] must not collapse"
        );
        assert!(hi < 1e-3, "upper bound {hi} should still be tight");

        let gamma = GammaPosterior::from_counts(0, 2_500.0);
        let (lo, hi) = gamma.credible_interval(0.9);
        assert!(hi > lo && hi > 0.0);
    }

    #[test]
    fn credible_interval_narrows_with_evidence() {
        let small = BetaPosterior::from_counts(4, 96);
        let large = BetaPosterior::from_counts(400, 9_600);
        let width = |(lo, hi): (f64, f64)| hi - lo;
        assert!(width(large.credible_interval(0.9)) < width(small.credible_interval(0.9)));
    }

    #[test]
    fn inverse_cdf_sampling_is_deterministic_and_in_range() {
        let post = BetaPosterior::from_counts(8, 192);
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32).map(|_| post.sample_p(&mut rng)).collect::<Vec<_>>()
        };
        let a = draw(7);
        let b = draw(7);
        assert_eq!(a, b, "same seed must reproduce the same draws bit-for-bit");
        assert!(a.iter().all(|&p| (0.0..=1.0).contains(&p)));
        // Draw mean should sit near the posterior mean.
        let mean = a.iter().sum::<f64>() / a.len() as f64;
        assert!((mean - post.mean()).abs() < 0.02, "draw mean {mean}");
    }

    #[test]
    fn telemetry_posterior_requires_exposure() {
        assert!(TelemetryPosterior::from_telemetry(&FleetTelemetry::new()).is_none());
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn beta_rejects_nonpositive_hyperparameters() {
        let _ = BetaPosterior::new(0.0, 1.0);
    }
}
