//! Fault curves: per-node, time-dependent failure models.
//!
//! A fault curve captures "the unique, time-dependent fault profile of a given server"
//! (§2). Every curve exposes an instantaneous *hazard rate* (failures per hour at a given
//! device age) and, derived from it, the probability of failing at least once within a
//! mission window. The analysis layer only needs the window probability; the simulator
//! additionally samples concrete failure times from the hazard.

use rand::Rng;

/// Trait implemented by all fault-curve shapes.
///
/// Ages and windows are expressed in hours. Implementations must return non-negative,
/// finite hazard rates for non-negative ages.
pub trait FaultCurve: Send + Sync + std::fmt::Debug {
    /// Instantaneous hazard rate (expected failures per hour) at age `t` hours.
    fn hazard(&self, t: f64) -> f64;

    /// Cumulative hazard over `[t0, t1]`, i.e. the integral of [`FaultCurve::hazard`].
    ///
    /// The default implementation integrates numerically with Simpson's rule; curves
    /// with a closed form should override it.
    fn cumulative_hazard(&self, t0: f64, t1: f64) -> f64 {
        numeric_cumulative_hazard(self, t0, t1)
    }

    /// Probability of failing at least once within `[t, t + window]`.
    fn failure_probability(&self, t: f64, window: f64) -> f64 {
        assert!(window >= 0.0, "window must be non-negative");
        1.0 - (-self.cumulative_hazard(t, t + window)).exp()
    }

    /// Samples the time of the first failure after age `t`, in hours after `t`, by
    /// inverting the cumulative hazard against an exponential draw.
    ///
    /// Returns `None` if no failure occurs within `horizon` hours.
    fn sample_failure_time<R: Rng + ?Sized>(&self, t: f64, horizon: f64, rng: &mut R) -> Option<f64>
    where
        Self: Sized,
    {
        let target: f64 = -(1.0 - rng.gen::<f64>()).ln();
        invert_cumulative_hazard(self, t, horizon, target)
    }
}

/// Numerically integrates the hazard of `curve` over `[t0, t1]` with composite Simpson.
pub fn numeric_cumulative_hazard<C: FaultCurve + ?Sized>(curve: &C, t0: f64, t1: f64) -> f64 {
    assert!(t1 >= t0, "interval must be ordered");
    if t1 == t0 {
        return 0.0;
    }
    // 256 panels is plenty for the smooth curves used here.
    let n = 256usize;
    let h = (t1 - t0) / n as f64;
    let mut sum = curve.hazard(t0) + curve.hazard(t1);
    for i in 1..n {
        let x = t0 + i as f64 * h;
        sum += if i % 2 == 1 { 4.0 } else { 2.0 } * curve.hazard(x);
    }
    (sum * h / 3.0).max(0.0)
}

/// Finds the smallest `dt <= horizon` such that the cumulative hazard over `[t, t+dt]`
/// reaches `target`, by bisection. Returns `None` when the hazard accumulated over the
/// full horizon stays below `target`.
pub fn invert_cumulative_hazard<C: FaultCurve + ?Sized>(
    curve: &C,
    t: f64,
    horizon: f64,
    target: f64,
) -> Option<f64> {
    if target <= 0.0 {
        return Some(0.0);
    }
    let total = curve.cumulative_hazard(t, t + horizon);
    if total < target {
        return None;
    }
    let (mut lo, mut hi) = (0.0f64, horizon);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if curve.cumulative_hazard(t, t + mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

/// Constant hazard rate; the memoryless model behind the paper's per-node probability
/// `p_u` (§3 assumes "every machine u has a constant probability p_u of failing").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantCurve {
    rate: f64,
}

impl ConstantCurve {
    /// Creates a curve with hazard rate `rate` failures per hour.
    pub fn new(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be finite, >= 0");
        Self { rate }
    }

    /// Creates a curve from an annual failure rate.
    pub fn from_afr(afr: f64) -> Self {
        Self::new(crate::metrics::afr_to_hourly_rate(afr))
    }

    /// Creates a curve whose probability of failure within `window` hours equals `p`.
    pub fn from_window_probability(p: f64, window: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "probability must be in [0,1)");
        assert!(window > 0.0, "window must be positive");
        Self::new(-(1.0 - p).ln() / window)
    }

    /// The hazard rate in failures per hour.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl FaultCurve for ConstantCurve {
    fn hazard(&self, _t: f64) -> f64 {
        self.rate
    }

    fn cumulative_hazard(&self, t0: f64, t1: f64) -> f64 {
        assert!(t1 >= t0);
        self.rate * (t1 - t0)
    }
}

/// Exponentially increasing (or decreasing) hazard: `rate0 * exp(growth * t)`.
///
/// Captures aging effects such as transistor wear-out where failure likelihood compounds
/// over time, or post-patch hardening when `growth < 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialCurve {
    rate0: f64,
    growth: f64,
}

impl ExponentialCurve {
    /// Creates a curve with initial hazard `rate0` (per hour) growing at `growth` per hour.
    pub fn new(rate0: f64, growth: f64) -> Self {
        assert!(rate0 >= 0.0 && rate0.is_finite());
        assert!(growth.is_finite());
        Self { rate0, growth }
    }
}

impl FaultCurve for ExponentialCurve {
    fn hazard(&self, t: f64) -> f64 {
        self.rate0 * (self.growth * t).exp()
    }

    fn cumulative_hazard(&self, t0: f64, t1: f64) -> f64 {
        assert!(t1 >= t0);
        if self.growth.abs() < 1e-15 {
            return self.rate0 * (t1 - t0);
        }
        self.rate0 / self.growth * ((self.growth * t1).exp() - (self.growth * t0).exp())
    }
}

/// Weibull hazard: `(shape / scale) * (t / scale)^(shape - 1)`.
///
/// `shape < 1` models infant mortality, `shape == 1` is constant, `shape > 1` models
/// wear-out; the standard building block of disk-reliability models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeibullCurve {
    shape: f64,
    scale: f64,
}

impl WeibullCurve {
    /// Creates a Weibull curve with the given `shape` (k) and `scale` (λ, in hours).
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && shape.is_finite(), "shape must be positive");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        Self { shape, scale }
    }

    /// The shape parameter (k).
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter (λ), in hours.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl FaultCurve for WeibullCurve {
    fn hazard(&self, t: f64) -> f64 {
        let t = t.max(1e-9); // Avoid the singularity at t = 0 for shape < 1.
        (self.shape / self.scale) * (t / self.scale).powf(self.shape - 1.0)
    }

    fn cumulative_hazard(&self, t0: f64, t1: f64) -> f64 {
        assert!(t1 >= t0);
        let h = |t: f64| (t.max(0.0) / self.scale).powf(self.shape);
        (h(t1) - h(t0)).max(0.0)
    }
}

/// Bathtub curve: infant-mortality Weibull + constant useful-life rate + wear-out Weibull.
///
/// Reproduces the canonical disk-failure shape described in §2: "high chance of failure
/// during the infancy and wear-out stage, but comparatively lower failure rates during
/// the useful-life stage".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BathtubCurve {
    infant: WeibullCurve,
    useful_life: ConstantCurve,
    wearout: WeibullCurve,
}

impl BathtubCurve {
    /// Creates a bathtub curve from its three components.
    pub fn new(infant: WeibullCurve, useful_life: ConstantCurve, wearout: WeibullCurve) -> Self {
        assert!(
            infant.shape() < 1.0,
            "infant-mortality component must have shape < 1"
        );
        assert!(
            wearout.shape() > 1.0,
            "wear-out component must have shape > 1"
        );
        Self {
            infant,
            useful_life,
            wearout,
        }
    }

    /// A representative disk-like bathtub: ~5% first-year AFR dominated by infant
    /// mortality, ~2% useful-life AFR, and wear-out kicking in after ~4 years.
    pub fn typical_disk() -> Self {
        Self::new(
            WeibullCurve::new(0.5, 2.0e6),
            ConstantCurve::from_afr(0.02),
            WeibullCurve::new(3.0, 60_000.0),
        )
    }
}

impl FaultCurve for BathtubCurve {
    fn hazard(&self, t: f64) -> f64 {
        self.infant.hazard(t) + self.useful_life.hazard(t) + self.wearout.hazard(t)
    }

    fn cumulative_hazard(&self, t0: f64, t1: f64) -> f64 {
        self.infant.cumulative_hazard(t0, t1)
            + self.useful_life.cumulative_hazard(t0, t1)
            + self.wearout.cumulative_hazard(t0, t1)
    }
}

/// Piecewise-constant hazard over age intervals; the natural output of bucketed telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseCurve {
    /// Breakpoints in hours, strictly increasing; segment `i` covers
    /// `[breakpoints[i-1], breakpoints[i])` (segment 0 starts at 0).
    breakpoints: Vec<f64>,
    /// `rates.len() == breakpoints.len() + 1`; the last rate extends to infinity.
    rates: Vec<f64>,
}

impl PiecewiseCurve {
    /// Creates a piecewise-constant curve; `rates` must have exactly one more entry than
    /// `breakpoints` and `breakpoints` must be strictly increasing and non-negative.
    pub fn new(breakpoints: Vec<f64>, rates: Vec<f64>) -> Self {
        assert_eq!(
            rates.len(),
            breakpoints.len() + 1,
            "need one more rate than breakpoints"
        );
        assert!(
            breakpoints.windows(2).all(|w| w[0] < w[1]),
            "breakpoints must be strictly increasing"
        );
        assert!(
            breakpoints.iter().all(|&b| b >= 0.0),
            "breakpoints must be non-negative"
        );
        assert!(
            rates.iter().all(|&r| r >= 0.0 && r.is_finite()),
            "rates must be finite and non-negative"
        );
        Self { breakpoints, rates }
    }

    fn segment(&self, t: f64) -> usize {
        self.breakpoints.partition_point(|&b| b <= t)
    }
}

impl FaultCurve for PiecewiseCurve {
    fn hazard(&self, t: f64) -> f64 {
        self.rates[self.segment(t.max(0.0))]
    }

    fn cumulative_hazard(&self, t0: f64, t1: f64) -> f64 {
        assert!(t1 >= t0);
        let mut total = 0.0;
        let mut start = t0.max(0.0);
        let end = t1.max(0.0);
        while start < end {
            let seg = self.segment(start);
            let seg_end = if seg < self.breakpoints.len() {
                self.breakpoints[seg].min(end)
            } else {
                end
            };
            total += self.rates[seg] * (seg_end - start);
            if seg_end <= start {
                break;
            }
            start = seg_end;
        }
        total
    }
}

/// A baseline curve with additive hazard "spikes" over fixed wall-clock windows,
/// modelling rollout-correlated risk (the CrowdStrike example in §2): during a rollout
/// window every node using this curve sees an elevated hazard.
#[derive(Debug, Clone, PartialEq)]
pub struct StepCurve {
    base_rate: f64,
    /// `(start_hour, end_hour, extra_rate)` triples.
    spikes: Vec<(f64, f64, f64)>,
}

impl StepCurve {
    /// Creates a step curve with a constant `base_rate` hazard.
    pub fn new(base_rate: f64) -> Self {
        assert!(base_rate >= 0.0 && base_rate.is_finite());
        Self {
            base_rate,
            spikes: Vec::new(),
        }
    }

    /// Adds an elevated-hazard window (e.g. a software rollout) and returns `self`.
    pub fn with_spike(mut self, start: f64, end: f64, extra_rate: f64) -> Self {
        assert!(end > start, "spike window must be non-empty");
        assert!(extra_rate >= 0.0);
        self.spikes.push((start, end, extra_rate));
        self
    }
}

impl FaultCurve for StepCurve {
    fn hazard(&self, t: f64) -> f64 {
        let mut rate = self.base_rate;
        for &(s, e, extra) in &self.spikes {
            if t >= s && t < e {
                rate += extra;
            }
        }
        rate
    }

    fn cumulative_hazard(&self, t0: f64, t1: f64) -> f64 {
        assert!(t1 >= t0);
        let mut total = self.base_rate * (t1 - t0);
        for &(s, e, extra) in &self.spikes {
            let overlap = (t1.min(e) - t0.max(s)).max(0.0);
            total += extra * overlap;
        }
        total
    }
}

/// Hazard estimated from telemetry as piecewise-constant rates over age buckets, with a
/// fallback rate outside the observed range.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalCurve {
    inner: PiecewiseCurve,
}

impl EmpiricalCurve {
    /// Builds an empirical curve from `(age_bucket_end_hours, rate)` pairs sorted by age.
    /// The final rate is reused past the last bucket.
    pub fn from_bucketed_rates(buckets: &[(f64, f64)]) -> Self {
        assert!(!buckets.is_empty(), "need at least one bucket");
        let mut breakpoints = Vec::with_capacity(buckets.len() - 1);
        let mut rates = Vec::with_capacity(buckets.len() + 1);
        for (i, &(end, rate)) in buckets.iter().enumerate() {
            rates.push(rate);
            if i + 1 < buckets.len() {
                breakpoints.push(end);
            }
        }
        // Extend the last observed rate beyond the final bucket.
        rates.push(buckets[buckets.len() - 1].1);
        breakpoints.push(buckets[buckets.len() - 1].0);
        Self {
            inner: PiecewiseCurve::new(breakpoints, rates),
        }
    }
}

impl FaultCurve for EmpiricalCurve {
    fn hazard(&self, t: f64) -> f64 {
        self.inner.hazard(t)
    }

    fn cumulative_hazard(&self, t0: f64, t1: f64) -> f64 {
        self.inner.cumulative_hazard(t0, t1)
    }
}

/// A boxed, dynamically-dispatched fault curve, for fleets mixing curve shapes.
pub type DynCurve = std::sync::Arc<dyn FaultCurve>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HOURS_PER_YEAR;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_curve_window_probability_round_trips() {
        let c = ConstantCurve::from_window_probability(0.08, HOURS_PER_YEAR);
        assert!((c.failure_probability(0.0, HOURS_PER_YEAR) - 0.08).abs() < 1e-12);
        assert!((c.failure_probability(1234.0, HOURS_PER_YEAR) - 0.08).abs() < 1e-12);
    }

    #[test]
    fn constant_curve_from_afr_matches_metrics() {
        let c = ConstantCurve::from_afr(0.04);
        assert!((c.failure_probability(0.0, HOURS_PER_YEAR) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn exponential_curve_matches_closed_form() {
        let c = ExponentialCurve::new(1e-5, 1e-4);
        let analytic = c.cumulative_hazard(0.0, 1000.0);
        let numeric = numeric_cumulative_hazard(&c, 0.0, 1000.0);
        assert!((analytic - numeric).abs() / analytic < 1e-6);
    }

    #[test]
    fn exponential_curve_with_zero_growth_is_constant() {
        let c = ExponentialCurve::new(2e-6, 0.0);
        assert!((c.cumulative_hazard(0.0, 500.0) - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = WeibullCurve::new(1.0, 10_000.0);
        let c = ConstantCurve::new(1.0 / 10_000.0);
        for t in [10.0, 100.0, 5000.0] {
            assert!((w.failure_probability(0.0, t) - c.failure_probability(0.0, t)).abs() < 1e-9);
        }
    }

    #[test]
    fn weibull_wearout_hazard_increases() {
        let w = WeibullCurve::new(3.0, 50_000.0);
        assert!(w.hazard(40_000.0) > w.hazard(10_000.0));
    }

    #[test]
    fn bathtub_has_high_infant_and_wearout_hazard() {
        let b = BathtubCurve::typical_disk();
        let infant = b.hazard(10.0);
        let useful = b.hazard(20_000.0);
        let wearout = b.hazard(70_000.0);
        assert!(infant > useful, "infant {infant} vs useful {useful}");
        assert!(wearout > useful, "wearout {wearout} vs useful {useful}");
    }

    #[test]
    fn piecewise_cumulative_hazard_spans_segments() {
        let p = PiecewiseCurve::new(vec![100.0, 200.0], vec![0.01, 0.02, 0.03]);
        // 50h at 0.01 + 100h at 0.02 + 50h at 0.03.
        let expected = 0.5 + 2.0 + 1.5;
        assert!((p.cumulative_hazard(50.0, 250.0) - expected).abs() < 1e-9);
        assert_eq!(p.hazard(150.0), 0.02);
        assert_eq!(p.hazard(1e9), 0.03);
    }

    #[test]
    fn step_curve_spike_raises_probability_only_in_window() {
        let base = StepCurve::new(1e-6);
        let spiked = StepCurve::new(1e-6).with_spike(100.0, 110.0, 1e-2);
        assert!(spiked.failure_probability(100.0, 10.0) > base.failure_probability(100.0, 10.0));
        assert!(
            (spiked.failure_probability(200.0, 10.0) - base.failure_probability(200.0, 10.0)).abs()
                < 1e-12
        );
    }

    #[test]
    fn empirical_curve_extends_last_rate() {
        let e = EmpiricalCurve::from_bucketed_rates(&[(1000.0, 1e-5), (2000.0, 2e-5)]);
        assert!((e.hazard(500.0) - 1e-5).abs() < 1e-12);
        assert!((e.hazard(1500.0) - 2e-5).abs() < 1e-12);
        assert!((e.hazard(9000.0) - 2e-5).abs() < 1e-12);
    }

    #[test]
    fn sampled_failure_times_match_constant_rate_statistics() {
        let c = ConstantCurve::new(1e-3);
        let mut rng = StdRng::seed_from_u64(7);
        let mut times = Vec::new();
        let mut misses = 0usize;
        for _ in 0..20_000 {
            match c.sample_failure_time(0.0, 10_000.0, &mut rng) {
                Some(t) => times.push(t),
                None => misses += 1,
            }
        }
        // P(no failure in 10k hours at 1e-3/h) = e^-10 ~= 4.5e-5, so misses should be rare.
        assert!(misses < 20);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        assert!((mean - 1000.0).abs() < 50.0, "mean {mean}");
    }

    #[test]
    fn invert_cumulative_hazard_returns_none_past_horizon() {
        let c = ConstantCurve::new(1e-6);
        assert!(invert_cumulative_hazard(&c, 0.0, 10.0, 1.0).is_none());
        let hit = invert_cumulative_hazard(&c, 0.0, 2_000_000.0, 1.0).unwrap();
        assert!((hit - 1_000_000.0).abs() < 1.0);
    }
}
