//! Node specifications and fleets.
//!
//! A [`Fleet`] is the deployment-side description of the machines available to run a
//! consensus group: each node carries a fault curve, a hardware class, and cost /
//! sustainability attributes. The analysis layer turns a fleet plus a mission window into
//! per-node [`FaultProfile`]s; the cost optimizer searches over fleets.

use std::sync::Arc;

use crate::curve::{ConstantCurve, FaultCurve};
use crate::metrics::HOURS_PER_YEAR;
use crate::mode::FaultProfile;

/// Identifier of a node within a fleet (dense, zero-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

/// Coarse hardware class of a node; used by the telemetry generator and the cost model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// Reserved, well-maintained on-demand instance or new hardware.
    Reliable,
    /// Preemptible / spot instance with a noticeably higher failure (eviction) rate.
    Spot,
    /// Hardware past its refresh cycle, reused for sustainability.
    Aged,
    /// Trusted-execution-environment host (low Byzantine probability, non-zero).
    Tee,
    /// Anything else, labelled.
    Custom(String),
}

impl std::fmt::Display for NodeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeClass::Reliable => write!(f, "reliable"),
            NodeClass::Spot => write!(f, "spot"),
            NodeClass::Aged => write!(f, "aged"),
            NodeClass::Tee => write!(f, "tee"),
            NodeClass::Custom(name) => write!(f, "{name}"),
        }
    }
}

/// Full description of one node available to the deployment.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Stable identifier within the fleet.
    pub id: NodeId,
    /// Human-readable name (defaults to the id).
    pub name: String,
    /// Hardware / procurement class.
    pub class: NodeClass,
    /// Crash fault curve (hazard of fail-stop faults).
    pub crash_curve: Arc<dyn FaultCurve>,
    /// Byzantine fault curve (hazard of arbitrary deviation); often orders of magnitude
    /// below the crash curve.
    pub byzantine_curve: Arc<dyn FaultCurve>,
    /// Current age of the node in hours (fault curves are evaluated from this age).
    pub age_hours: f64,
    /// Hourly price in dollars.
    pub hourly_cost: f64,
    /// Embodied + operational carbon in gCO2e per hour.
    pub carbon_per_hour: f64,
}

impl NodeSpec {
    /// Creates a node with constant crash probability `p` per `window_hours` and no
    /// Byzantine faults — the §3 analysis setting.
    pub fn with_constant_crash(id: usize, p: f64, window_hours: f64) -> Self {
        Self {
            id: NodeId(id),
            name: format!("n{id}"),
            class: NodeClass::Reliable,
            crash_curve: Arc::new(ConstantCurve::from_window_probability(p, window_hours)),
            byzantine_curve: Arc::new(ConstantCurve::new(0.0)),
            age_hours: 0.0,
            hourly_cost: 1.0,
            carbon_per_hour: 100.0,
        }
    }

    /// Sets the human-readable name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the hardware class.
    pub fn with_class(mut self, class: NodeClass) -> Self {
        self.class = class;
        self
    }

    /// Sets the hourly cost in dollars.
    pub fn with_cost(mut self, hourly_cost: f64) -> Self {
        assert!(hourly_cost >= 0.0);
        self.hourly_cost = hourly_cost;
        self
    }

    /// Sets the carbon intensity in gCO2e per hour.
    pub fn with_carbon(mut self, carbon_per_hour: f64) -> Self {
        assert!(carbon_per_hour >= 0.0);
        self.carbon_per_hour = carbon_per_hour;
        self
    }

    /// Sets the current age in hours.
    pub fn with_age(mut self, age_hours: f64) -> Self {
        assert!(age_hours >= 0.0);
        self.age_hours = age_hours;
        self
    }

    /// Sets the Byzantine fault curve.
    pub fn with_byzantine_curve(mut self, curve: Arc<dyn FaultCurve>) -> Self {
        self.byzantine_curve = curve;
        self
    }

    /// Sets the crash fault curve.
    pub fn with_crash_curve(mut self, curve: Arc<dyn FaultCurve>) -> Self {
        self.crash_curve = curve;
        self
    }

    /// Evaluates this node's fault profile over the next `window_hours`, starting at the
    /// node's current age.
    ///
    /// Crash and Byzantine hazards are treated as competing risks: the raw window
    /// probabilities are rescaled so that their sum never exceeds the probability of any
    /// fault happening at all.
    pub fn profile(&self, window_hours: f64) -> FaultProfile {
        let p_crash = self
            .crash_curve
            .failure_probability(self.age_hours, window_hours);
        let p_byz = self
            .byzantine_curve
            .failure_probability(self.age_hours, window_hours);
        // Competing risks: P(any fault) = 1 - (1-pc)(1-pb); attribute it proportionally.
        let p_any = 1.0 - (1.0 - p_crash) * (1.0 - p_byz);
        let total = p_crash + p_byz;
        if total <= 0.0 {
            return FaultProfile::reliable();
        }
        FaultProfile::new(p_any * p_crash / total, p_any * p_byz / total)
    }
}

/// A collection of nodes considered for (or participating in) a consensus deployment.
#[derive(Debug, Clone, Default)]
pub struct Fleet {
    nodes: Vec<NodeSpec>,
}

impl Fleet {
    /// Creates an empty fleet.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Creates a homogeneous fleet of `n` nodes each failing (by crashing) with
    /// probability `p` over a one-year window — the configuration used throughout §3.
    pub fn homogeneous_crash(n: usize, p: f64) -> Self {
        let nodes = (0..n)
            .map(|i| NodeSpec::with_constant_crash(i, p, HOURS_PER_YEAR))
            .collect();
        Self { nodes }
    }

    /// Adds a node, reassigning its id to keep ids dense, and returns the assigned id.
    pub fn push(&mut self, mut node: NodeSpec) -> NodeId {
        let id = NodeId(self.nodes.len());
        node.id = id;
        self.nodes.push(node);
        id
    }

    /// Number of nodes in the fleet.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.0]
    }

    /// Iterator over all nodes.
    pub fn iter(&self) -> impl Iterator<Item = &NodeSpec> {
        self.nodes.iter()
    }

    /// Per-node fault profiles over a mission window starting now.
    pub fn profiles(&self, window_hours: f64) -> Vec<FaultProfile> {
        self.nodes.iter().map(|n| n.profile(window_hours)).collect()
    }

    /// Total hourly cost of running every node in the fleet.
    pub fn hourly_cost(&self) -> f64 {
        self.nodes.iter().map(|n| n.hourly_cost).sum()
    }

    /// Total carbon intensity of the fleet in gCO2e per hour.
    pub fn carbon_per_hour(&self) -> f64 {
        self.nodes.iter().map(|n| n.carbon_per_hour).sum()
    }

    /// Returns the ids of the `k` nodes with the lowest fault probability over the
    /// window, most reliable first. Ties are broken by id for determinism.
    pub fn most_reliable(&self, k: usize, window_hours: f64) -> Vec<NodeId> {
        let mut ranked: Vec<(f64, NodeId)> = self
            .nodes
            .iter()
            .map(|n| (n.profile(window_hours).fault_probability(), n.id))
            .collect();
        ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        ranked.into_iter().take(k).map(|(_, id)| id).collect()
    }
}

impl FromIterator<NodeSpec> for Fleet {
    fn from_iter<T: IntoIterator<Item = NodeSpec>>(iter: T) -> Self {
        let mut fleet = Fleet::new();
        for node in iter {
            fleet.push(node);
        }
        fleet
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::WeibullCurve;

    #[test]
    fn homogeneous_fleet_profiles_match_requested_probability() {
        let fleet = Fleet::homogeneous_crash(5, 0.02);
        assert_eq!(fleet.len(), 5);
        for p in fleet.profiles(HOURS_PER_YEAR) {
            assert!((p.crash_probability() - 0.02).abs() < 1e-9);
            assert_eq!(p.byzantine_probability(), 0.0);
        }
    }

    #[test]
    fn push_assigns_dense_ids() {
        let mut fleet = Fleet::new();
        let a = fleet.push(NodeSpec::with_constant_crash(99, 0.01, HOURS_PER_YEAR));
        let b = fleet.push(NodeSpec::with_constant_crash(7, 0.02, HOURS_PER_YEAR));
        assert_eq!(a, NodeId(0));
        assert_eq!(b, NodeId(1));
        assert_eq!(fleet.node(b).id, NodeId(1));
    }

    #[test]
    fn most_reliable_orders_by_fault_probability() {
        let mut fleet = Fleet::new();
        fleet.push(NodeSpec::with_constant_crash(0, 0.08, HOURS_PER_YEAR).named("flaky"));
        fleet.push(NodeSpec::with_constant_crash(1, 0.01, HOURS_PER_YEAR).named("good"));
        fleet.push(NodeSpec::with_constant_crash(2, 0.04, HOURS_PER_YEAR).named("ok"));
        let top = fleet.most_reliable(2, HOURS_PER_YEAR);
        assert_eq!(top, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn profile_combines_crash_and_byzantine_curves() {
        let node =
            NodeSpec::with_constant_crash(0, 0.04, HOURS_PER_YEAR).with_byzantine_curve(Arc::new(
                ConstantCurve::from_window_probability(0.0001, HOURS_PER_YEAR),
            ));
        let profile = node.profile(HOURS_PER_YEAR);
        assert!(profile.crash_probability() > 0.039);
        assert!(profile.byzantine_probability() > 0.9e-4);
        assert!(profile.fault_probability() < 0.0402);
    }

    #[test]
    fn aged_node_with_wearout_curve_is_less_reliable() {
        let young = NodeSpec::with_constant_crash(0, 0.0, HOURS_PER_YEAR)
            .with_crash_curve(Arc::new(WeibullCurve::new(3.0, 60_000.0)))
            .with_age(1_000.0);
        let old = NodeSpec::with_constant_crash(1, 0.0, HOURS_PER_YEAR)
            .with_crash_curve(Arc::new(WeibullCurve::new(3.0, 60_000.0)))
            .with_age(50_000.0);
        assert!(
            old.profile(HOURS_PER_YEAR).fault_probability()
                > young.profile(HOURS_PER_YEAR).fault_probability()
        );
    }

    #[test]
    fn fleet_cost_and_carbon_are_sums() {
        let mut fleet = Fleet::new();
        fleet.push(
            NodeSpec::with_constant_crash(0, 0.01, HOURS_PER_YEAR)
                .with_cost(1.0)
                .with_carbon(50.0),
        );
        fleet.push(
            NodeSpec::with_constant_crash(1, 0.08, HOURS_PER_YEAR)
                .with_cost(0.1)
                .with_carbon(20.0),
        );
        assert!((fleet.hourly_cost() - 1.1).abs() < 1e-12);
        assert!((fleet.carbon_per_hour() - 70.0).abs() < 1e-12);
    }
}
