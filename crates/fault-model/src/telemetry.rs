//! Synthetic fleet telemetry and fault-curve estimation.
//!
//! The paper argues that "fault curves can be computed using the large amount of
//! telemetry that modern deployments track on a daily basis" and cites Backblaze drive
//! stats, Google/Meta silent-corruption studies and spot-eviction traces. Those datasets
//! are not redistributable, so this module provides:
//!
//! * a [`TelemetryGenerator`] producing synthetic per-device observation records with
//!   configurable per-class annual failure rates, bathtub aging and rollout-correlated
//!   failure bursts (the substitution documented in DESIGN.md), and
//! * a [`TelemetryEstimator`] recovering annual failure rates (with confidence
//!   intervals) and age-bucketed empirical fault curves from such records — the path an
//!   operator would use with real telemetry.

use rand::Rng;

use crate::curve::EmpiricalCurve;
use crate::metrics::HOURS_PER_YEAR;
use crate::posterior::TelemetryPosterior;

/// One device-observation record: a device of some class observed for a period, with the
/// outcome of that observation period.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryRecord {
    /// Stable device identifier.
    pub device_id: u64,
    /// Device class label (e.g. manufacturer or instance type).
    pub class: String,
    /// Device age at the start of the observation period, in hours.
    pub age_at_start: f64,
    /// Length of the observation period, in hours.
    pub observed_hours: f64,
    /// Whether the device failed during the observation period.
    pub failed: bool,
    /// Whether the failure (if any) was a silent-corruption / Byzantine event rather
    /// than a fail-stop fault.
    pub byzantine: bool,
}

/// A collection of telemetry records for a fleet.
#[derive(Debug, Clone, Default)]
pub struct FleetTelemetry {
    records: Vec<TelemetryRecord>,
}

impl FleetTelemetry {
    /// Creates an empty telemetry set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a record.
    pub fn push(&mut self, record: TelemetryRecord) {
        assert!(record.observed_hours > 0.0, "observation must be non-empty");
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[TelemetryRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether there are no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records restricted to one device class.
    pub fn for_class(&self, class: &str) -> FleetTelemetry {
        FleetTelemetry {
            records: self
                .records
                .iter()
                .filter(|r| r.class == class)
                .cloned()
                .collect(),
        }
    }

    /// The distinct classes present, sorted.
    pub fn classes(&self) -> Vec<String> {
        let mut classes: Vec<String> = self.records.iter().map(|r| r.class.clone()).collect();
        classes.sort();
        classes.dedup();
        classes
    }
}

/// Specification of one device class for the synthetic generator.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Class label.
    pub name: String,
    /// Number of devices of this class.
    pub population: usize,
    /// Baseline annual failure rate of the class.
    pub afr: f64,
    /// Fraction of failures that are silent-corruption / Byzantine events
    /// (the paper quotes ~0.01% absolute vs ~4% AFR, i.e. a fraction of ~0.25%).
    pub byzantine_fraction: f64,
    /// Additional probability that each device fails during a correlated rollout burst.
    pub rollout_burst_probability: f64,
}

impl ClassSpec {
    /// A convenience constructor with no Byzantine failures and no rollout bursts.
    pub fn simple(name: impl Into<String>, population: usize, afr: f64) -> Self {
        Self {
            name: name.into(),
            population,
            afr,
            byzantine_fraction: 0.0,
            rollout_burst_probability: 0.0,
        }
    }
}

/// Generates synthetic fleet telemetry.
#[derive(Debug, Clone)]
pub struct TelemetryGenerator {
    classes: Vec<ClassSpec>,
    /// Length of each observation period, in hours (Backblaze reports quarterly).
    observation_hours: f64,
    /// Number of consecutive observation periods per device.
    periods: usize,
}

impl TelemetryGenerator {
    /// Creates a generator with quarterly observation periods over one year.
    pub fn new(classes: Vec<ClassSpec>) -> Self {
        assert!(!classes.is_empty(), "need at least one class");
        Self {
            classes,
            observation_hours: HOURS_PER_YEAR / 4.0,
            periods: 4,
        }
    }

    /// Overrides the observation-period length and count.
    pub fn with_periods(mut self, observation_hours: f64, periods: usize) -> Self {
        assert!(observation_hours > 0.0 && periods > 0);
        self.observation_hours = observation_hours;
        self.periods = periods;
        self
    }

    /// Generates the telemetry, consuming the given RNG for reproducibility.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> FleetTelemetry {
        let mut telemetry = FleetTelemetry::new();
        let mut device_id = 0u64;
        for class in &self.classes {
            // Per-period failure probability from the annual rate.
            let rate = crate::metrics::afr_to_hourly_rate(class.afr);
            let p_period = 1.0 - (-rate * self.observation_hours).exp();
            for _ in 0..class.population {
                device_id += 1;
                // Stagger initial ages so age-bucketed estimation sees a spread.
                let initial_age: f64 = rng.gen::<f64>() * 3.0 * HOURS_PER_YEAR;
                let mut alive = true;
                for period in 0..self.periods {
                    if !alive {
                        break;
                    }
                    let age = initial_age + period as f64 * self.observation_hours;
                    let mut failed = rng.gen::<f64>() < p_period;
                    // Correlated rollout burst in the second period.
                    if period == 1 && rng.gen::<f64>() < class.rollout_burst_probability {
                        failed = true;
                    }
                    let byzantine = failed && rng.gen::<f64>() < class.byzantine_fraction;
                    telemetry.push(TelemetryRecord {
                        device_id,
                        class: class.name.clone(),
                        age_at_start: age,
                        observed_hours: self.observation_hours,
                        failed,
                        byzantine,
                    });
                    if failed {
                        alive = false;
                    }
                }
            }
        }
        telemetry
    }
}

/// An annual-failure-rate estimate with a normal-approximation confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AfrEstimate {
    /// Point estimate of the annual failure rate.
    pub afr: f64,
    /// Lower bound of the 95% confidence interval.
    pub lower: f64,
    /// Upper bound of the 95% confidence interval.
    pub upper: f64,
    /// Observed device-years backing the estimate.
    pub device_years: f64,
    /// Observed failure count.
    pub failures: usize,
}

/// Estimates fault curves and failure rates from telemetry.
#[derive(Debug, Clone, Default)]
pub struct TelemetryEstimator;

impl TelemetryEstimator {
    /// Creates an estimator.
    pub fn new() -> Self {
        Self
    }

    /// Estimates the annual failure rate of a telemetry set using the standard
    /// failures-per-device-year method with a 95% Poisson normal-approximation interval.
    ///
    /// Returns `None` when the telemetry covers no observation time.
    pub fn estimate_afr(&self, telemetry: &FleetTelemetry) -> Option<AfrEstimate> {
        let device_hours: f64 = telemetry.records().iter().map(|r| r.observed_hours).sum();
        if device_hours <= 0.0 {
            return None;
        }
        let device_years = device_hours / HOURS_PER_YEAR;
        let failures = telemetry.records().iter().filter(|r| r.failed).count();
        let rate = failures as f64 / device_years;
        let stderr = (failures.max(1) as f64).sqrt() / device_years;
        let to_afr = |annual_rate: f64| 1.0 - (-annual_rate.max(0.0)).exp();
        // Zero observed failures: the normal approximation has no spread to
        // work with, so use the rule of three — the one-sided 95% upper bound
        // on a Poisson rate with zero events over `device_years` of exposure
        // is 3/device_years. The interval stays non-degenerate however large
        // the failure-free fleet is.
        let (lower, upper) = if failures == 0 {
            (0.0, to_afr(3.0 / device_years))
        } else {
            (to_afr(rate - 1.96 * stderr), to_afr(rate + 1.96 * stderr))
        };
        Some(AfrEstimate {
            afr: to_afr(rate),
            lower,
            upper,
            device_years,
            failures,
        })
    }

    /// Fits Bayesian conjugate posteriors (Beta over failure probability,
    /// Gamma over annual failure rate, both under the Jeffreys prior) from the
    /// same counts that back [`TelemetryEstimator::estimate_afr`].
    ///
    /// Returns `None` when the telemetry covers no observation time. Unlike
    /// the point estimate, a zero-failure fleet yields a proper posterior
    /// with positive uncertainty mass — see [`crate::posterior`].
    pub fn posterior(&self, telemetry: &FleetTelemetry) -> Option<TelemetryPosterior> {
        TelemetryPosterior::from_telemetry(telemetry)
    }

    /// Estimates the fraction of failures that were Byzantine (silent corruption).
    pub fn estimate_byzantine_fraction(&self, telemetry: &FleetTelemetry) -> f64 {
        let failures = telemetry.records().iter().filter(|r| r.failed).count();
        if failures == 0 {
            return 0.0;
        }
        let byz = telemetry
            .records()
            .iter()
            .filter(|r| r.failed && r.byzantine)
            .count();
        byz as f64 / failures as f64
    }

    /// Builds an age-bucketed empirical hazard curve from telemetry: failures divided by
    /// observed hours within each `bucket_hours`-wide age bucket.
    ///
    /// Returns `None` when there is no telemetry.
    pub fn fit_empirical_curve(
        &self,
        telemetry: &FleetTelemetry,
        bucket_hours: f64,
    ) -> Option<EmpiricalCurve> {
        assert!(bucket_hours > 0.0);
        if telemetry.is_empty() {
            return None;
        }
        let max_age = telemetry
            .records()
            .iter()
            .map(|r| r.age_at_start + r.observed_hours)
            .fold(0.0f64, f64::max);
        let buckets = (max_age / bucket_hours).ceil() as usize;
        let mut exposure = vec![0.0f64; buckets.max(1)];
        let mut failures = vec![0.0f64; buckets.max(1)];
        for r in telemetry.records() {
            let mid_age = r.age_at_start + r.observed_hours / 2.0;
            let b = ((mid_age / bucket_hours) as usize).min(exposure.len() - 1);
            exposure[b] += r.observed_hours;
            if r.failed {
                failures[b] += 1.0;
            }
        }
        let overall_rate = {
            let total_exposure: f64 = exposure.iter().sum();
            let total_failures: f64 = failures.iter().sum();
            if total_exposure > 0.0 {
                total_failures / total_exposure
            } else {
                0.0
            }
        };
        let bucketed: Vec<(f64, f64)> = exposure
            .iter()
            .zip(failures.iter())
            .enumerate()
            .map(|(i, (&e, &f))| {
                let end = (i + 1) as f64 * bucket_hours;
                // Fall back to the overall rate for sparsely observed buckets.
                let rate = if e > 0.0 { f / e } else { overall_rate };
                (end, rate)
            })
            .collect();
        Some(EmpiricalCurve::from_bucketed_rates(&bucketed))
    }

    /// Fits a constant-rate curve (exponential lifetime) by maximum likelihood:
    /// failures divided by total observed hours.
    pub fn fit_constant_rate(&self, telemetry: &FleetTelemetry) -> Option<f64> {
        let device_hours: f64 = telemetry.records().iter().map(|r| r.observed_hours).sum();
        if device_hours <= 0.0 {
            return None;
        }
        let failures = telemetry.records().iter().filter(|r| r.failed).count();
        Some(failures as f64 / device_hours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::FaultCurve;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn generate(afr: f64, population: usize, seed: u64) -> FleetTelemetry {
        let spec = ClassSpec::simple("hdd-a", population, afr);
        TelemetryGenerator::new(vec![spec]).generate(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn afr_estimate_recovers_generator_rate() {
        let telemetry = generate(0.04, 20_000, 11);
        let est = TelemetryEstimator::new().estimate_afr(&telemetry).unwrap();
        assert!(
            est.lower <= 0.04 && 0.04 <= est.upper,
            "interval [{}, {}] should contain 0.04",
            est.lower,
            est.upper
        );
        assert!((est.afr - 0.04).abs() < 0.01, "estimate {}", est.afr);
    }

    #[test]
    fn estimate_afr_returns_none_without_data() {
        assert!(TelemetryEstimator::new()
            .estimate_afr(&FleetTelemetry::new())
            .is_none());
        assert!(TelemetryEstimator::new()
            .posterior(&FleetTelemetry::new())
            .is_none());
    }

    /// A fleet observed for `device_years` with zero failures.
    fn failure_free(device_years: f64, devices: usize) -> FleetTelemetry {
        let mut telemetry = FleetTelemetry::new();
        let hours_each = device_years * HOURS_PER_YEAR / devices as f64;
        for id in 0..devices {
            telemetry.push(TelemetryRecord {
                device_id: id as u64,
                class: "ssd-z".into(),
                age_at_start: 0.0,
                observed_hours: hours_each,
                failed: false,
                byzantine: false,
            });
        }
        telemetry
    }

    #[test]
    fn zero_failure_fleet_gets_rule_of_three_interval() {
        let telemetry = failure_free(1_000.0, 100);
        let est = TelemetryEstimator::new().estimate_afr(&telemetry).unwrap();
        assert_eq!(est.failures, 0);
        assert_eq!(est.afr, 0.0);
        assert_eq!(est.lower, 0.0);
        // Rule of three: upper bound on the annual rate is 3/device_years.
        let expected_upper = 1.0 - (-3.0 / 1_000.0f64).exp();
        assert!(
            est.upper > est.lower,
            "interval [{}, {}] must not collapse",
            est.lower,
            est.upper
        );
        assert!(
            (est.upper - expected_upper).abs() < 1e-12,
            "upper {} vs rule-of-three {expected_upper}",
            est.upper
        );
    }

    #[test]
    fn zero_failure_posterior_is_proper() {
        let telemetry = failure_free(2_000.0, 50);
        let post = TelemetryEstimator::new().posterior(&telemetry).unwrap();
        assert_eq!(post.failures, 0);
        assert!((post.device_years - 2_000.0).abs() < 1e-9);
        // The Jeffreys posterior keeps positive mass away from zero.
        assert!(post.afr_mean() > 0.0);
        let (lo, hi) = post.afr_credible_interval(0.9);
        assert!(hi > lo, "credible interval [{lo}, {hi}] must not collapse");
        // And the upper bound is the same order as the rule-of-three bound.
        let rule_of_three = 1.0 - (-3.0 / 2_000.0f64).exp();
        assert!(hi < 2.0 * rule_of_three, "upper {hi} vs {rule_of_three}");
    }

    #[test]
    fn posterior_agrees_with_point_estimate_on_dense_telemetry() {
        let telemetry = generate(0.04, 20_000, 11);
        let estimator = TelemetryEstimator::new();
        let est = estimator.estimate_afr(&telemetry).unwrap();
        let post = estimator.posterior(&telemetry).unwrap();
        assert_eq!(post.failures, est.failures);
        assert!((post.afr_mean() - est.afr).abs() < 0.002);
        let (lo, hi) = post.afr_credible_interval(0.95);
        assert!(lo <= 0.04 && 0.04 <= hi, "interval [{lo}, {hi}]");
        // Credible and confidence intervals should roughly coincide here.
        assert!((lo - est.lower).abs() < 0.005 && (hi - est.upper).abs() < 0.005);
    }

    #[test]
    fn classes_are_separable() {
        let classes = vec![
            ClassSpec::simple("good", 5_000, 0.01),
            ClassSpec::simple("flaky", 5_000, 0.08),
        ];
        let telemetry = TelemetryGenerator::new(classes).generate(&mut StdRng::seed_from_u64(5));
        let estimator = TelemetryEstimator::new();
        let good = estimator
            .estimate_afr(&telemetry.for_class("good"))
            .unwrap();
        let flaky = estimator
            .estimate_afr(&telemetry.for_class("flaky"))
            .unwrap();
        assert!(flaky.afr > 3.0 * good.afr);
        assert_eq!(
            telemetry.classes(),
            vec!["flaky".to_string(), "good".to_string()]
        );
    }

    #[test]
    fn byzantine_fraction_estimation() {
        let spec = ClassSpec {
            name: "mercurial".into(),
            population: 20_000,
            afr: 0.10,
            byzantine_fraction: 0.2,
            rollout_burst_probability: 0.0,
        };
        let telemetry = TelemetryGenerator::new(vec![spec]).generate(&mut StdRng::seed_from_u64(9));
        let frac = TelemetryEstimator::new().estimate_byzantine_fraction(&telemetry);
        assert!((frac - 0.2).abs() < 0.03, "estimated {frac}");
    }

    #[test]
    fn rollout_bursts_increase_observed_afr() {
        let base = generate(0.02, 10_000, 3);
        let bursty_spec = ClassSpec {
            name: "bursty".into(),
            population: 10_000,
            afr: 0.02,
            byzantine_fraction: 0.0,
            rollout_burst_probability: 0.05,
        };
        let bursty =
            TelemetryGenerator::new(vec![bursty_spec]).generate(&mut StdRng::seed_from_u64(3));
        let estimator = TelemetryEstimator::new();
        let afr_base = estimator.estimate_afr(&base).unwrap().afr;
        let afr_bursty = estimator.estimate_afr(&bursty).unwrap().afr;
        assert!(afr_bursty > afr_base + 0.01);
    }

    #[test]
    fn empirical_curve_fits_constant_rate_data() {
        let telemetry = generate(0.05, 20_000, 21);
        let estimator = TelemetryEstimator::new();
        let curve = estimator
            .fit_empirical_curve(&telemetry, HOURS_PER_YEAR / 2.0)
            .unwrap();
        let expected_rate = crate::metrics::afr_to_hourly_rate(0.05);
        // Hazard in a well-populated bucket should be within 50% of the true rate.
        let hazard = curve.hazard(HOURS_PER_YEAR);
        assert!(
            (hazard - expected_rate).abs() / expected_rate < 0.5,
            "hazard {hazard} vs expected {expected_rate}"
        );
    }

    #[test]
    fn constant_rate_fit_matches_afr_estimate() {
        let telemetry = generate(0.03, 20_000, 8);
        let estimator = TelemetryEstimator::new();
        let rate = estimator.fit_constant_rate(&telemetry).unwrap();
        let afr = estimator.estimate_afr(&telemetry).unwrap().afr;
        assert!((crate::metrics::hourly_rate_to_afr(rate) - afr).abs() < 1e-9);
    }
}
