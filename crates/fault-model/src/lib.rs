//! Fault modelling substrate for probabilistic consensus analysis.
//!
//! The paper "Real Life Is Uncertain. Consensus Should Be Too!" (HotOS '25) argues that
//! consensus protocols should reason about *fault curves*: per-node, time-dependent,
//! possibly correlated probabilities of crashing or behaving Byzantine. This crate provides
//! the building blocks that the analysis layer (`prob-consensus`) and the simulator
//! (`consensus-sim`) consume:
//!
//! * [`curve`] — fault curves: constant, exponential, Weibull, bathtub, piecewise, step
//!   (rollout) and empirical hazard-rate models, all exposing the probability of failure
//!   within a mission window.
//! * [`mode`] — failure modes (crash vs. Byzantine) and per-node [`mode::FaultProfile`]s
//!   that combine both probabilities, e.g. the paper's "4% AFR crash, 0.01% Byzantine
//!   mercurial core" example.
//! * [`node`] — node specifications and fleets: a named set of nodes, each with a fault
//!   curve, a hardware class, a price and a carbon intensity.
//! * [`metrics`] — reliability metrics: nines, AFR ⇄ hazard-rate conversions, MTBF/MTTR,
//!   availability.
//! * [`markov`] — continuous-time Markov reliability chains in the style the storage
//!   community uses for MTTDL/MTTF computations (§2 of the paper).
//! * [`correlation`] — correlated-failure models (common-cause shocks per correlation
//!   group) and samplers producing failure configurations.
//! * [`telemetry`] — synthetic fleet telemetry (the stand-in for Backblaze-style drive
//!   stats and spot-eviction traces) and estimators that recover fault curves from it.
//! * [`posterior`] — Bayesian conjugate posteriors (Beta over failure probability, Gamma
//!   over failure rate, Jeffreys priors) fitted from the same telemetry, with
//!   deterministic inverse-CDF sampling for second-order analysis.
//!
//! # Examples
//!
//! ```
//! use fault_model::curve::{ConstantCurve, FaultCurve};
//! use fault_model::metrics::afr_to_hourly_rate;
//!
//! // A disk with a 4% annual failure rate.
//! let curve = ConstantCurve::from_afr(0.04);
//! let p_year = curve.failure_probability(0.0, fault_model::metrics::HOURS_PER_YEAR);
//! assert!((p_year - 0.04).abs() < 1e-9);
//! assert!(afr_to_hourly_rate(0.04) > 0.0);
//! ```

// Documentation is part of this crate's contract: every public item is
// documented, and CI builds rustdoc with `-D warnings` (see the `docs` job).
#![warn(missing_docs)]
pub mod correlation;
pub mod curve;
pub mod markov;
pub mod metrics;
pub mod mode;
pub mod node;
pub mod posterior;
pub mod telemetry;

pub use correlation::{CorrelationGroup, CorrelationModel};
pub use curve::{
    BathtubCurve, ConstantCurve, EmpiricalCurve, ExponentialCurve, FaultCurve, PiecewiseCurve,
    StepCurve, WeibullCurve,
};
pub use markov::{BirthDeathChain, MarkovChain, RepairableGroup};
pub use metrics::{
    afr_to_hourly_rate, availability, hourly_rate_to_afr, mtbf, nines, probability_from_nines,
    Nines, HOURS_PER_YEAR,
};
pub use mode::{FailureMode, FaultProfile};
pub use node::{Fleet, NodeClass, NodeId, NodeSpec};
pub use posterior::{BetaPosterior, GammaPosterior, TelemetryPosterior};
pub use telemetry::{FleetTelemetry, TelemetryEstimator, TelemetryGenerator, TelemetryRecord};
