//! Second-order (epistemic) uncertainty: posterior parameter draws propagated
//! through the analysis engines, and calibration diagnostics for the result.
//!
//! The first-order engines answer "given per-node fault probability `p`, what
//! reliability does this deployment have?" — but `p` is itself an estimate
//! from noisy fleet telemetry ([`fault_model::posterior`]). This module is the
//! outer loop over that parameter uncertainty:
//!
//! 1. A [`crate::engine::EpistemicBudget`] names a Beta posterior over the
//!    fault-probability *scale* (its hyperparameters typically come from
//!    `TelemetryEstimator::posterior()`) and a draw count `K`.
//! 2. [`posterior_draws`] turns it into `K` deterministic parameter draws —
//!    each an inverse-CDF sample `p_k` of the posterior and the scale factor
//!    `p_k / E[p]` that maps the query's nominal fault probabilities onto the
//!    draw (every profile is rescaled through
//!    [`fault_model::mode::FaultProfile::scaled`], preserving crash/Byzantine
//!    structure and the `[0, 1]` clamps).
//! 3. The query planner runs every draw through the cell's chosen engine via
//!    the sweep scheduler, and the per-cell merge summarizes the draws into an
//!    [`EpistemicReport`]: the **epistemic** credible interval — nearest-rank
//!    quantiles of the draw reliabilities, i.e. uncertainty from not knowing
//!    the parameters — kept separate from the **aleatoric** interval — the
//!    base cell's sampling CI, i.e. uncertainty from finite sampling at fixed
//!    parameters.
//!
//! # Determinism contract
//!
//! Draw `k`'s uniform comes from `StdRng::seed_from_u64(chunk_seed(seed ^`
//! [`EPISTEMIC_SALT`]`, k))` — the same salted chunk-seed scheme the Monte
//! Carlo chunks use, with a distinct salt so draw streams never collide with
//! sample-chunk streams. Each draw consumes exactly one uniform (inverse-CDF,
//! no rejection), so the draw set is a pure function of
//! `(hyperparameters, seed, K)` and the resulting report is bit-identical at
//! any thread count.
//!
//! # Calibration
//!
//! [`calibrate`] closes the loop: simulate a fleet whose true `p` **is**
//! known, fit the posterior from the synthetic counts, run the second-order
//! analysis, and check that the advertised credible interval covers the
//! ground-truth reliability at the advertised rate. [`CalibrationReport`]
//! carries empirical coverage and the expected calibration error over a grid
//! of levels.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fault_model::posterior::BetaPosterior;

use crate::counting::counting_reliability;
use crate::deployment::Deployment;
use crate::engine::EpistemicBudget;
use crate::json::JsonValue;
use crate::montecarlo::chunk_seed;
use crate::protocol::CountingModel;

/// Seed salt of the posterior-draw RNG streams. XORed into the budget seed
/// before the per-draw `chunk_seed` split, so draw `k`'s stream can never
/// collide with Monte Carlo sample chunk `k`'s stream under the same seed.
pub const EPISTEMIC_SALT: u64 = 0x9E13_7E31_5A7E_D009;

/// One planned posterior parameter draw: the sampled probability and the scale
/// factor the engines apply to the query's nominal fault probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PosteriorDraw {
    /// The inverse-CDF sample of the Beta posterior, in `[0, 1]`.
    pub p: f64,
    /// `p / E[p]` — the multiplier applied to every fault profile of the
    /// cell's scenario (clamped inside [`fault_model::mode::FaultProfile::scaled`]).
    pub scale: f64,
}

/// The `K` deterministic parameter draws of an epistemic budget. Draw `k` uses
/// the RNG stream `chunk_seed(seed ^ EPISTEMIC_SALT, k)` and consumes exactly
/// one uniform, so the result is a pure function of the arguments — the
/// planner may recompute it anywhere without changing any report.
///
/// # Panics
///
/// Panics when the budget's hyperparameters are not finite and positive; the
/// query planner validates budgets ([`crate::engine::Budget::validate`])
/// before calling here.
pub fn posterior_draws(budget: &EpistemicBudget, seed: u64) -> Vec<PosteriorDraw> {
    let posterior = BetaPosterior::new(budget.alpha, budget.beta);
    let mean = posterior.mean();
    (0..budget.draws)
        .map(|k| {
            let mut rng = StdRng::seed_from_u64(chunk_seed(seed ^ EPISTEMIC_SALT, k as u64));
            let p = posterior.sample_p(&mut rng);
            PosteriorDraw { p, scale: p / mean }
        })
        .collect()
}

/// Nearest-rank quantile of an ascending-sorted slice.
pub(crate) fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty draw set");
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// One executed posterior draw of a cell: the parameter that was drawn and the
/// reliability the engine reported under it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpistemicDraw {
    /// The drawn posterior probability (see [`PosteriorDraw::p`]).
    pub p: f64,
    /// The scale factor applied to the cell's fault profiles.
    pub scale: f64,
    /// The draw's safe-and-live probability under the cell's engine.
    pub value: f64,
    /// Lower bound of the draw's own (aleatoric) 95% sampling interval —
    /// equal to `value` when the engine is exact.
    pub lower: f64,
    /// Upper bound of the draw's aleatoric interval.
    pub upper: f64,
}

/// The second-order summary attached to a cell record when the query carried
/// an epistemic budget of two or more draws: the epistemic credible interval
/// over reliability, kept separate from the base cell's aleatoric interval.
#[derive(Debug, Clone, PartialEq)]
pub struct EpistemicReport {
    /// The credible level of the epistemic interval (the budget's `level`).
    pub level: f64,
    /// Mean of the draw reliabilities.
    pub mean: f64,
    /// Lower bound of the epistemic credible interval (nearest-rank quantile
    /// of the draw reliabilities at `(1 − level) / 2`).
    pub epistemic_lower: f64,
    /// Upper bound of the epistemic credible interval.
    pub epistemic_upper: f64,
    /// Lower bound of the base cell's aleatoric (sampling) interval — the
    /// point estimate itself when the base engine is exact.
    pub aleatoric_lower: f64,
    /// Upper bound of the base cell's aleatoric interval.
    pub aleatoric_upper: f64,
    /// Every executed draw, in draw order.
    pub draws: Vec<EpistemicDraw>,
}

impl EpistemicReport {
    /// Summarizes executed draws: mean and nearest-rank credible interval over
    /// the draw reliabilities, with the base cell's aleatoric bounds carried
    /// alongside.
    ///
    /// # Panics
    ///
    /// Panics on an empty draw set or a level outside `(0, 1)` (both are
    /// rejected earlier by [`crate::engine::Budget::validate`]).
    pub fn from_draws(level: f64, draws: Vec<EpistemicDraw>, aleatoric: (f64, f64)) -> Self {
        assert!(!draws.is_empty(), "an epistemic report needs draws");
        assert!(
            level.is_finite() && 0.0 < level && level < 1.0,
            "credible level must be in (0, 1), got {level}"
        );
        let mut values: Vec<f64> = draws.iter().map(|d| d.value).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("draw reliabilities are never NaN"));
        let tail = 0.5 * (1.0 - level);
        Self {
            level,
            mean: values.iter().sum::<f64>() / values.len() as f64,
            epistemic_lower: quantile_sorted(&values, tail),
            epistemic_upper: quantile_sorted(&values, 1.0 - tail),
            aleatoric_lower: aleatoric.0,
            aleatoric_upper: aleatoric.1,
            draws,
        }
    }

    /// Width of the epistemic credible interval.
    pub fn epistemic_width(&self) -> f64 {
        self.epistemic_upper - self.epistemic_lower
    }

    /// Width of the aleatoric sampling interval (zero for exact engines).
    pub fn aleatoric_width(&self) -> f64 {
        self.aleatoric_upper - self.aleatoric_lower
    }

    /// This report as the `"epistemic"` JSON member of a cell record.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("level".to_string(), JsonValue::number(self.level)),
            ("mean".to_string(), JsonValue::number(self.mean)),
            (
                "epistemic_lower".to_string(),
                JsonValue::number(self.epistemic_lower),
            ),
            (
                "epistemic_upper".to_string(),
                JsonValue::number(self.epistemic_upper),
            ),
            (
                "aleatoric_lower".to_string(),
                JsonValue::number(self.aleatoric_lower),
            ),
            (
                "aleatoric_upper".to_string(),
                JsonValue::number(self.aleatoric_upper),
            ),
            (
                "draws".to_string(),
                JsonValue::Array(
                    self.draws
                        .iter()
                        .map(|d| {
                            JsonValue::Object(vec![
                                ("p".to_string(), JsonValue::number(d.p)),
                                ("scale".to_string(), JsonValue::number(d.scale)),
                                ("value".to_string(), JsonValue::number(d.value)),
                                ("lower".to_string(), JsonValue::number(d.lower)),
                                ("upper".to_string(), JsonValue::number(d.upper)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Configuration of a [`calibrate`] run: a synthetic fleet whose true
/// per-node fault probability is known exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// The ground-truth per-node fault probability the synthetic fleet fails at.
    pub true_p: f64,
    /// Observations per trial (devices in the synthetic fleet). More telemetry
    /// means tighter posteriors and narrower epistemic intervals.
    pub population: u64,
    /// Posterior draws per trial (the `K` of the second-order loop).
    pub draws: usize,
    /// Independent calibration trials (each refits the posterior from fresh
    /// synthetic counts).
    pub trials: usize,
    /// The credible level whose coverage is under test (e.g. `0.9`).
    pub level: f64,
    /// Base seed; trial `t` uses the stream `chunk_seed(seed, t)`.
    pub seed: u64,
}

impl Default for CalibrationConfig {
    /// 200 trials of a 2,000-device fleet at `p = 0.05`, 200 draws each,
    /// auditing the central 90% interval.
    fn default() -> Self {
        Self {
            true_p: 0.05,
            population: 2_000,
            draws: 200,
            trials: 200,
            level: 0.9,
            seed: 0xCA11_B8A7E,
        }
    }
}

/// The grid of levels the expected calibration error averages over.
const ECE_LEVELS: [f64; 6] = [0.5, 0.6, 0.7, 0.8, 0.9, 0.95];

/// The result of a [`calibrate`] run: does the advertised credible interval
/// cover the ground truth at the advertised rate?
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationReport {
    /// The audited credible level.
    pub level: f64,
    /// Trials run.
    pub trials: usize,
    /// Trials whose interval covered the ground-truth reliability.
    pub covered: usize,
    /// Empirical coverage `covered / trials` — should be close to `level` for
    /// a calibrated posterior.
    pub coverage: f64,
    /// Mean `|empirical coverage − nominal level|` over a grid of levels
    /// (0.5 … 0.95) — the scalar calibration summary.
    pub expected_calibration_error: f64,
    /// Mean epistemic interval width at `level` across trials — shrinks as
    /// `population` grows.
    pub mean_epistemic_width: f64,
}

/// Audits epistemic calibration end to end on a counting model: per trial,
/// draw synthetic failure counts at the known `true_p`, fit the Jeffreys Beta
/// posterior from those counts alone, push `draws` posterior samples through
/// the **exact** counting engine (isolating epistemic from aleatoric
/// uncertainty), and check whether the credible interval over reliability
/// covers the ground-truth reliability `counting_reliability(model, true_p)`.
///
/// Fully deterministic per `config.seed`.
///
/// # Panics
///
/// Panics when the configuration is vacuous (zero population/draws/trials, a
/// probability or level outside `(0, 1)`).
pub fn calibrate<M: CountingModel + ?Sized>(
    model: &M,
    config: &CalibrationConfig,
) -> CalibrationReport {
    assert!(
        config.population > 0 && config.draws > 0 && config.trials > 0,
        "calibration needs a non-empty fleet, draws and trials"
    );
    assert!(
        config.true_p > 0.0 && config.true_p < 1.0,
        "true_p must be in (0, 1), got {}",
        config.true_p
    );
    assert!(
        config.level > 0.0 && config.level < 1.0,
        "level must be in (0, 1), got {}",
        config.level
    );
    let n = model.num_nodes();
    let truth =
        counting_reliability(model, &Deployment::uniform_crash(n, config.true_p)).p_safe_and_live;
    // Per trial: sorted draw reliabilities (kept so every ECE level reuses the
    // same draws instead of re-running the engines per level).
    let per_trial: Vec<Vec<f64>> = (0..config.trials)
        .map(|trial| {
            let mut rng = StdRng::seed_from_u64(chunk_seed(config.seed, trial as u64));
            let mut failures = 0u64;
            for _ in 0..config.population {
                if rng.gen::<f64>() < config.true_p {
                    failures += 1;
                }
            }
            let posterior = BetaPosterior::from_counts(failures, config.population - failures);
            let mut values: Vec<f64> = (0..config.draws)
                .map(|_| {
                    let p = posterior.sample_p(&mut rng);
                    counting_reliability(model, &Deployment::uniform_crash(n, p)).p_safe_and_live
                })
                .collect();
            values.sort_by(|a, b| a.partial_cmp(b).expect("reliabilities are never NaN"));
            values
        })
        .collect();
    let coverage_at = |level: f64| -> usize {
        let tail = 0.5 * (1.0 - level);
        per_trial
            .iter()
            .filter(|values| {
                let lo = quantile_sorted(values, tail);
                let hi = quantile_sorted(values, 1.0 - tail);
                lo <= truth && truth <= hi
            })
            .count()
    };
    let covered = coverage_at(config.level);
    let expected_calibration_error = ECE_LEVELS
        .iter()
        .map(|&level| (coverage_at(level) as f64 / config.trials as f64 - level).abs())
        .sum::<f64>()
        / ECE_LEVELS.len() as f64;
    let tail = 0.5 * (1.0 - config.level);
    let mean_epistemic_width = per_trial
        .iter()
        .map(|values| quantile_sorted(values, 1.0 - tail) - quantile_sorted(values, tail))
        .sum::<f64>()
        / config.trials as f64;
    CalibrationReport {
        level: config.level,
        trials: config.trials,
        covered,
        coverage: covered as f64 / config.trials as f64,
        expected_calibration_error,
        mean_epistemic_width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raft_model::RaftModel;

    #[test]
    fn posterior_draws_are_deterministic_and_mean_centered() {
        let budget = EpistemicBudget::new(64, 8.5, 191.5);
        let a = posterior_draws(&budget, 42);
        let b = posterior_draws(&budget, 42);
        assert_eq!(a, b, "same budget + seed must reproduce the draws");
        let other_seed = posterior_draws(&budget, 43);
        assert_ne!(a, other_seed, "the seed must matter");
        // Scales are p / E[p]: their mean is near 1 and every p is in (0, 1).
        let mean_scale = a.iter().map(|d| d.scale).sum::<f64>() / a.len() as f64;
        assert!((mean_scale - 1.0).abs() < 0.1, "mean scale {mean_scale}");
        assert!(a.iter().all(|d| d.p > 0.0 && d.p < 1.0));
    }

    #[test]
    fn draw_streams_are_salted_away_from_chunk_streams() {
        // The first uniform of draw k must differ from the first uniform of
        // Monte Carlo chunk k under the same budget seed — that is what the
        // salt buys.
        let seed = 7;
        for k in 0..4u64 {
            let draw_u = StdRng::seed_from_u64(chunk_seed(seed ^ EPISTEMIC_SALT, k)).gen::<f64>();
            let chunk_u = StdRng::seed_from_u64(chunk_seed(seed, k)).gen::<f64>();
            assert_ne!(draw_u, chunk_u);
        }
    }

    #[test]
    fn report_separates_epistemic_from_aleatoric() {
        let draws: Vec<EpistemicDraw> = (0..100)
            .map(|i| {
                let value = 0.9 + i as f64 * 0.001;
                EpistemicDraw {
                    p: 0.05,
                    scale: 1.0,
                    value,
                    lower: value - 0.002,
                    upper: value + 0.002,
                }
            })
            .collect();
        let report = EpistemicReport::from_draws(0.9, draws, (0.947, 0.952));
        assert!((report.mean - 0.9495).abs() < 1e-9);
        // Nearest-rank 5% / 95% quantiles of 0.900..0.999.
        assert!((report.epistemic_lower - 0.904).abs() < 1e-12);
        assert!((report.epistemic_upper - 0.994).abs() < 1e-12);
        assert!((report.aleatoric_width() - 0.005).abs() < 1e-12);
        assert!(report.epistemic_width() > report.aleatoric_width());
    }

    #[test]
    fn nearest_rank_quantiles_hit_the_edges() {
        let values = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&values, 0.0), 1.0);
        assert_eq!(quantile_sorted(&values, 0.25), 1.0);
        assert_eq!(quantile_sorted(&values, 0.26), 2.0);
        assert_eq!(quantile_sorted(&values, 1.0), 4.0);
    }

    #[test]
    fn credible_intervals_cover_ground_truth_at_the_advertised_rate() {
        let model = RaftModel::standard(5);
        let report = calibrate(&model, &CalibrationConfig::default());
        // 200 trials at a true 90% level: binomial ±3σ is about ±0.06; leave
        // headroom so the pin survives RNG-shim changes without going blind
        // to real miscalibration.
        assert!(
            (report.coverage - 0.9).abs() < 0.08,
            "coverage {} should be near the advertised 0.9",
            report.coverage
        );
        assert!(
            report.expected_calibration_error < 0.1,
            "ECE {} too large",
            report.expected_calibration_error
        );
        assert!(report.mean_epistemic_width > 0.0);
    }

    #[test]
    fn epistemic_width_shrinks_as_telemetry_grows() {
        let model = RaftModel::standard(5);
        let small = CalibrationConfig {
            population: 500,
            trials: 50,
            ..CalibrationConfig::default()
        };
        let large = CalibrationConfig {
            population: 50_000,
            trials: 50,
            ..CalibrationConfig::default()
        };
        let small = calibrate(&model, &small);
        let large = calibrate(&model, &large);
        assert!(
            large.mean_epistemic_width < 0.5 * small.mean_epistemic_width,
            "width must shrink with telemetry volume: {} vs {}",
            large.mean_epistemic_width,
            small.mean_epistemic_width
        );
    }
}
