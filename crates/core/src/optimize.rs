//! Deployment optimization: the cheapest deployment meeting *k* nines.
//!
//! The engines answer "what reliability does this deployment give?"; the paper's
//! payoff (§1, §4) is the inverse question — "what is the *cheapest* deployment
//! that meets k nines?" This module searches a [`DeploymentSpace`] — node count,
//! per-node fault curves (including telemetry-posterior curves via
//! [`NodeType::from_telemetry`]), placement across correlated failure domains
//! (same-rack vs cross-rack quorum assignment) and flexible-quorum parameters —
//! and emits a ranked Pareto frontier of cost vs reliability.
//!
//! # Search tiers
//!
//! [`optimize`] refines candidates in three tiers, all sharing the session's
//! cache scratch under a dedicated key namespace
//! ([`crate::query::Query`] plans the cells; the planner prefixes optimizer
//! scratch keys so they can never alias first-order or epistemic cells):
//!
//! 1. **Screening.** Every candidate in the grid is planned as one cell of a
//!    single [`Query`] with a small sample budget. Counting-model candidates
//!    resolve exactly (the counting engine ignores the sample knob); sampling
//!    candidates get a cheap Monte Carlo (packed kernel where the model allows)
//!    or, when the cached selector pilot already says the failure mode is deep
//!    tail, a first importance-sampling pass.
//! 2. **Refinement.** Non-exact candidates whose *optimistic* confidence bound
//!    still meets the target — the frontier-adjacent ones — are re-planned with
//!    the full refinement budget under the *same* per-candidate seed, so the
//!    tier-1 selector pilots and learned importance-sampling proposals are
//!    reused from the shared scratch instead of being re-learned.
//! 3. **Time domain** (optional). With an [`OptimizerConfig::repair`] policy,
//!    every frontier member is additionally scored as a repairable
//!    birth–death group ([`fault_model::markov::RepairableGroup`]) and carries
//!    unavailability-minutes-per-year next to its mission-window probability.
//!
//! # Determinism
//!
//! Candidate `i` draws its samples under seed `chunk_seed(seed ^`
//! [`OPTIMIZER_SALT`]`, i)` — the same salted chunk-seed scheme the epistemic
//! layer uses ([`crate::epistemic::EPISTEMIC_SALT`]) — and cells execute on the
//! work-stealing sweep scheduler whose merge order is fixed by chunk index, not
//! worker arrival. The frontier (and its JSON rendering) is therefore
//! bit-identical at any thread count; `tests/optimizer_verification.rs` pins
//! this at 1/2/8 threads.
//!
//! # Frontier semantics
//!
//! A candidate is **feasible** when the *lower* 95% confidence bound of its
//! safe-and-live probability meets the target nines (exact candidates have a
//! degenerate interval). The frontier is the feasible, Pareto non-dominated
//! subset — sorted by cost, strictly increasing in nines — so every frontier
//! point is the cheapest way to reach its reliability level within the space.
//!
//! ```
//! use prob_consensus::optimize::{optimize, DeploymentSpace, NodeType, OptimizerConfig, TargetSpec};
//! use prob_consensus::query::{AnalysisSession, ProtocolSpec};
//!
//! // "Cheapest 3-nines Raft cluster from the default catalogue?"
//! let space = DeploymentSpace {
//!     instances: prob_consensus::cost::default_catalogue()
//!         .iter()
//!         .map(NodeType::from_instance)
//!         .collect(),
//!     nodes: vec![3, 5, 7, 9],
//!     domains: None,
//!     placements: Vec::new(),
//!     target: TargetSpec::Protocol(ProtocolSpec::Raft),
//! };
//! let session = AnalysisSession::new();
//! let report = optimize(&session, &space, &OptimizerConfig::new(3.0)).unwrap();
//! let best = report.cheapest().expect("the space is feasible");
//! assert_eq!(best.instance, "spot");
//! assert!(best.nines >= 3.0);
//! ```

use std::sync::Arc;

use fault_model::correlation::{CorrelationGroup, CorrelationModel};
use fault_model::markov::RepairableGroup;
use fault_model::metrics::{afr_to_hourly_rate, Nines};
use fault_model::mode::FaultProfile;
use fault_model::posterior::TelemetryPosterior;
use fault_model::telemetry::FleetTelemetry;

use crate::analyzer::AnalysisError;
use crate::cost::InstanceType;
use crate::durability::PersistenceQuorumModel;
use crate::engine::{Budget, EngineChoice};
use crate::json::JsonValue;
use crate::montecarlo::chunk_seed;
use crate::protocol::ProtocolModel;
use crate::query::{AnalysisSession, CellRecord, ProtocolSpec, Query};
use crate::report::Table;

/// Salt XORed into the optimizer's base seed before deriving per-candidate
/// seeds (`chunk_seed(seed ^ OPTIMIZER_SALT, candidate_index)`), so candidate
/// streams can never collide with the unsalted Monte Carlo chunk streams or the
/// epistemic draw streams ([`crate::epistemic::EPISTEMIC_SALT`]) of a cell that
/// happens to share the base seed.
pub const OPTIMIZER_SALT: u64 = 0x5A17_ED0C_0571_CA7E;

/// One procurable node type the optimizer can build clusters from: a fault
/// profile over the mission window plus a price.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeType {
    /// Human-readable name, used in candidate labels.
    pub name: String,
    /// Per-node fault probabilities over the mission window.
    pub profile: FaultProfile,
    /// Price in dollars per node-hour.
    pub hourly_cost: f64,
}

impl NodeType {
    /// A crash-only node type (the CFT setting of §3).
    pub fn new(name: impl Into<String>, crash_probability: f64, hourly_cost: f64) -> Self {
        Self::from_profile(
            name,
            FaultProfile::crash_only(crash_probability),
            hourly_cost,
        )
    }

    /// A node type with an explicit fault profile (crash + Byzantine).
    pub fn from_profile(name: impl Into<String>, profile: FaultProfile, hourly_cost: f64) -> Self {
        assert!(hourly_cost >= 0.0, "hourly cost must be non-negative");
        Self {
            name: name.into(),
            profile,
            hourly_cost,
        }
    }

    /// Converts a catalogue entry ([`crate::cost::InstanceType`]) into an
    /// optimizer node type (crash-only, same window probability and price).
    pub fn from_instance(instance: &InstanceType) -> Self {
        Self::new(
            instance.name.clone(),
            instance.fault_probability,
            instance.hourly_cost,
        )
    }

    /// A node type whose fault probability comes from measured fleet telemetry:
    /// the posterior-mean annual failure rate ([`TelemetryPosterior::afr_mean`])
    /// converted to a constant hazard and integrated over `mission_hours`.
    /// Returns `None` when the telemetry covers no observation time.
    pub fn from_telemetry(
        name: impl Into<String>,
        telemetry: &FleetTelemetry,
        mission_hours: f64,
        hourly_cost: f64,
    ) -> Option<Self> {
        assert!(
            mission_hours > 0.0 && mission_hours.is_finite(),
            "mission window must be positive and finite"
        );
        let posterior = TelemetryPosterior::from_telemetry(telemetry)?;
        let lambda = afr_to_hourly_rate(posterior.afr_mean());
        let p = 1.0 - (-lambda * mission_hours).exp();
        Some(Self::new(name, p, hourly_cost))
    }
}

/// How a persistence quorum is placed across the failure domains of a
/// [`DeploymentSpace`] — the axis the `claim-durability-correlated` experiment
/// hand-picked, generalized into a searchable dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// All quorum members packed contiguously: every member shares the first
    /// rack's correlated shock.
    SameRack,
    /// One quorum member per rack: no single rack shock can cover the quorum.
    CrossRack,
}

impl Placement {
    /// Short label used in candidate names and JSON (`same-rack`/`cross-rack`).
    pub fn label(&self) -> &'static str {
        match self {
            Placement::SameRack => "same-rack",
            Placement::CrossRack => "cross-rack",
        }
    }
}

/// Correlated failure domains: the cluster split into contiguous, near-equal
/// racks, each with an independent crash shock — the same construction as
/// [`crate::query::CorrelationSpec::RackShock`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureDomains {
    /// Number of contiguous racks (a zero is treated as one rack).
    pub racks: usize,
    /// Probability each rack's shock fires within the mission window.
    pub shock_probability: f64,
}

impl FailureDomains {
    fn rack_groups(&self, n: usize) -> Vec<CorrelationGroup> {
        let per_rack = n.div_ceil(self.racks.max(1));
        (0..n)
            .step_by(per_rack.max(1))
            .map(|start| {
                let members: Vec<usize> = (start..n.min(start + per_rack)).collect();
                CorrelationGroup::crash_shock(members, self.shock_probability)
            })
            .collect()
    }

    fn per_rack(&self, n: usize) -> usize {
        n.div_ceil(self.racks.max(1)).max(1)
    }
}

/// What guarantee the optimizer is provisioning for: a consensus protocol
/// family (safety *and* liveness) or data durability (a persistence quorum
/// surviving, [`PersistenceQuorumModel`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TargetSpec {
    /// A protocol family instantiated at every swept cluster size — Raft,
    /// flexible-quorum Raft (the flexible-quorum search axis), or PBFT.
    Protocol(ProtocolSpec),
    /// Durability of the most recent persistence quorum; placement across
    /// failure domains becomes a search axis when domains are configured.
    PersistenceQuorum {
        /// Size of the persistence quorum.
        quorum_size: usize,
    },
}

impl TargetSpec {
    /// Whether the target can be instantiated at cluster size `n` (the model
    /// constructors panic outside these ranges, so the candidate grid silently
    /// skips invalid combinations instead).
    fn supports(&self, n: usize) -> bool {
        match self {
            TargetSpec::Protocol(ProtocolSpec::Raft) => n >= 1,
            TargetSpec::Protocol(ProtocolSpec::RaftFlexible { q_per, q_vc }) => {
                *q_per >= 1 && *q_vc >= 1 && *q_per <= n && *q_vc <= n && q_per + q_vc > n
            }
            TargetSpec::Protocol(ProtocolSpec::Pbft) => n >= 4,
            TargetSpec::PersistenceQuorum { quorum_size } => *quorum_size >= 1 && *quorum_size <= n,
        }
    }

    /// The repairable group tier 3 scores: `(group size, tolerated failures)`.
    /// Consensus targets model the whole cluster losing its quorum; durability
    /// targets model the quorum itself (data is lost only when every member is
    /// down simultaneously).
    fn repair_group(&self, n: usize) -> (usize, usize) {
        match self {
            TargetSpec::Protocol(ProtocolSpec::Raft) => (n, (n - 1) / 2),
            TargetSpec::Protocol(ProtocolSpec::RaftFlexible { q_per, .. }) => (n, n - q_per),
            TargetSpec::Protocol(ProtocolSpec::Pbft) => (n, (n - 1) / 3),
            TargetSpec::PersistenceQuorum { quorum_size } => (*quorum_size, quorum_size - 1),
        }
    }
}

/// The searchable deployment space: the cross product of instance types, node
/// counts and (for durability targets with failure domains) quorum placements.
///
/// Invalid combinations — a quorum larger than the cluster, cross-rack
/// placement with more members than racks, a PBFT cluster below four nodes —
/// are skipped during candidate enumeration rather than rejected, so the grid
/// axes can be specified loosely.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentSpace {
    /// Procurable node types (homogeneous per candidate).
    pub instances: Vec<NodeType>,
    /// Cluster sizes to sweep.
    pub nodes: Vec<usize>,
    /// Correlated failure domains layered onto every candidate, when present.
    pub domains: Option<FailureDomains>,
    /// Quorum placements to sweep. Only active for
    /// [`TargetSpec::PersistenceQuorum`] targets with `domains` set; empty or
    /// inapplicable placement axes collapse to a single unplaced candidate.
    pub placements: Vec<Placement>,
    /// The guarantee being provisioned for.
    pub target: TargetSpec,
}

impl DeploymentSpace {
    /// Enumerates the candidate grid in deterministic order (instances ×
    /// nodes × placements, skipping invalid combinations). Public so
    /// verification suites can re-score every candidate independently of
    /// [`optimize`].
    pub fn candidates(&self) -> Vec<Candidate> {
        let placements: Vec<Option<Placement>> =
            if matches!(self.target, TargetSpec::PersistenceQuorum { .. })
                && self.domains.is_some()
                && !self.placements.is_empty()
            {
                self.placements.iter().copied().map(Some).collect()
            } else {
                vec![None]
            };
        let mut out = Vec::new();
        for instance in &self.instances {
            for &n in &self.nodes {
                for &placement in &placements {
                    if let Some(candidate) = self.candidate(instance, n, placement) {
                        out.push(candidate);
                    }
                }
            }
        }
        out
    }

    fn candidate(
        &self,
        instance: &NodeType,
        n: usize,
        placement: Option<Placement>,
    ) -> Option<Candidate> {
        if n == 0 || !self.target.supports(n) {
            return None;
        }
        let model: Arc<dyn ProtocolModel + Send + Sync> = match (&self.target, placement) {
            (TargetSpec::Protocol(spec), _) => spec.build(n),
            (TargetSpec::PersistenceQuorum { quorum_size }, placement) => {
                let members = self.quorum_members(*quorum_size, n, placement)?;
                Arc::new(PersistenceQuorumModel::new(n, members))
            }
        };
        let mut scenario = CorrelationModel::independent(vec![instance.profile; n]);
        if let Some(domains) = &self.domains {
            for group in domains.rack_groups(n) {
                scenario = scenario.with_group(group);
            }
        }
        let suffix = placement.map_or(String::new(), |p| format!("/{}", p.label()));
        Some(Candidate {
            label: format!("{}/N={n}{suffix}", instance.name),
            instance: instance.name.clone(),
            nodes: n,
            placement,
            hourly_cost: instance.hourly_cost * n as f64,
            fault_probability: instance.profile.fault_probability(),
            model,
            scenario,
        })
    }

    /// The quorum member indices for one placement, `None` when the placement
    /// cannot be realized (e.g. cross-rack with fewer racks than members).
    fn quorum_members(
        &self,
        q: usize,
        n: usize,
        placement: Option<Placement>,
    ) -> Option<Vec<usize>> {
        match placement {
            None | Some(Placement::SameRack) => {
                if let (Some(domains), Some(Placement::SameRack)) = (&self.domains, placement) {
                    // "Same rack" must actually fit in one rack to mean anything.
                    if q > domains.per_rack(n) {
                        return None;
                    }
                }
                Some((0..q).collect())
            }
            Some(Placement::CrossRack) => {
                let domains = self.domains.as_ref()?;
                let per_rack = domains.per_rack(n);
                let members: Vec<usize> = (0..q).map(|i| i * per_rack).collect();
                members.iter().all(|&m| m < n).then_some(members)
            }
        }
    }
}

/// One enumerated point of a [`DeploymentSpace`]: the model/scenario pair the
/// optimizer scores, plus its cost metadata. Exposed so tests can re-score
/// frontier candidates with an independently chosen engine.
#[derive(Clone)]
pub struct Candidate {
    /// Candidate id: `instance/N=n[/placement]`.
    pub label: String,
    /// Instance-type name.
    pub instance: String,
    /// Cluster size.
    pub nodes: usize,
    /// Quorum placement, when the placement axis is active.
    pub placement: Option<Placement>,
    /// Total cost in dollars per hour (`instance cost × n`).
    pub hourly_cost: f64,
    /// Per-node fault probability over the mission window (crash + Byzantine).
    pub fault_probability: f64,
    /// The protocol/durability model scored for this candidate.
    pub model: Arc<dyn ProtocolModel + Send + Sync>,
    /// The correlated fault scenario the model is scored under.
    pub scenario: CorrelationModel,
}

impl std::fmt::Debug for Candidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Candidate")
            .field("label", &self.label)
            .field("hourly_cost", &self.hourly_cost)
            .field("model", &self.model.name())
            .finish_non_exhaustive()
    }
}

/// Tier-3 time-domain scoring policy: how fast failed nodes are repaired, and
/// the mission window the per-node fault probability was measured over (used to
/// back out the hourly failure rate λ from the window probability).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairPolicy {
    /// Mean time to repair one node, in hours (repair rate μ = 1/MTTR).
    pub mttr_hours: f64,
    /// Mission window the candidate fault probabilities cover, in hours.
    pub mission_hours: f64,
}

/// Tuning knobs of the three-tier search. The defaults mirror
/// [`Budget::default`]; only the target is mandatory ([`OptimizerConfig::new`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Reliability target in nines of safe-and-live probability.
    pub target_nines: f64,
    /// Tier-1 sample budget per candidate (exact engines ignore it).
    pub screen_samples: usize,
    /// Tier-2 sample budget for refined candidates.
    pub refine_samples: usize,
    /// Failure probability below which the importance-sampling engine takes
    /// over (per candidate, via the cached selector pilot).
    pub rare_event_threshold: f64,
    /// Base seed; candidate `i` samples under
    /// `chunk_seed(seed ^ OPTIMIZER_SALT, i)`.
    pub seed: u64,
    /// Optional tier-3 time-domain scoring of frontier members.
    pub repair: Option<RepairPolicy>,
}

impl OptimizerConfig {
    /// A config targeting `target_nines` with default budgets.
    pub fn new(target_nines: f64) -> Self {
        assert!(
            target_nines >= 0.0 && target_nines.is_finite(),
            "target nines must be non-negative and finite, got {target_nines}"
        );
        let base = Budget::default();
        Self {
            target_nines,
            screen_samples: 20_000,
            refine_samples: base.monte_carlo_samples,
            rare_event_threshold: base.rare_event_threshold,
            seed: base.seed,
            repair: None,
        }
    }

    /// Sets the tier-1 screening sample budget.
    pub fn with_screen_samples(mut self, samples: usize) -> Self {
        self.screen_samples = samples;
        self
    }

    /// Sets the tier-2 refinement sample budget.
    pub fn with_refine_samples(mut self, samples: usize) -> Self {
        self.refine_samples = samples;
        self
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the rare-event threshold routing deep-tail candidates to the
    /// importance-sampling engine (must lie strictly inside `(0, 1)`).
    pub fn with_rare_event_threshold(mut self, threshold: f64) -> Self {
        self.rare_event_threshold = threshold;
        self
    }

    /// Enables tier-3 time-domain scoring of frontier members.
    pub fn with_repair(mut self, policy: RepairPolicy) -> Self {
        self.repair = Some(policy);
        self
    }

    /// The per-candidate budget at one tier: identical seed across tiers (so
    /// tier 2 reuses tier 1's cached pilots and proposals), differing only in
    /// sample count.
    fn budget(&self, candidate_index: usize, samples: usize) -> Budget {
        Budget::default()
            .with_samples(samples)
            .with_seed(chunk_seed(
                self.seed ^ OPTIMIZER_SALT,
                candidate_index as u64,
            ))
            .with_rare_event_threshold(self.rare_event_threshold)
    }
}

/// One scored candidate on (or off) the frontier: cost vs nines with full
/// engine provenance — which engine scored it, at which tier, with what
/// confidence interval. Deliberately carries no wall-clock fields so its JSON
/// rendering is bit-identical across runs and thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierRecord {
    /// Candidate id (see [`Candidate::label`]).
    pub label: String,
    /// Instance-type name.
    pub instance: String,
    /// Cluster size.
    pub nodes: usize,
    /// Quorum placement, when the placement axis was active.
    pub placement: Option<Placement>,
    /// Total cost in dollars per hour.
    pub hourly_cost: f64,
    /// Safe-and-live point estimate.
    pub probability: f64,
    /// The point estimate in nines.
    pub nines: f64,
    /// Lower 95% confidence bound on the safe-and-live probability (equal to
    /// `probability` for exact engines).
    pub ci_lower: f64,
    /// Upper 95% confidence bound (equal to `probability` for exact engines).
    pub ci_upper: f64,
    /// The conservative guarantee: `ci_lower` in nines. Feasibility is judged
    /// on this, never on the point estimate.
    pub nines_lower: f64,
    /// The engine that produced the accepted score.
    pub engine: EngineChoice,
    /// Which tier produced the accepted score (1 = screening, 2 = refinement).
    pub tier: u8,
    /// Whether the score is exact (enumeration/counting) rather than estimated.
    pub exact: bool,
    /// Samples actually drawn (sampling engines only).
    pub samples: Option<usize>,
    /// Effective sample size (importance-sampling candidates only).
    pub ess: Option<f64>,
    /// Whether the candidate meets the target per its own CI lower bound.
    pub feasible: bool,
    /// Tier-3 long-run unavailability (frontier members only, when a
    /// [`RepairPolicy`] was configured).
    pub unavailability_minutes_per_year: Option<f64>,
}

impl FrontierRecord {
    /// The failure probability (complement of the safe-and-live estimate).
    pub fn failure_probability(&self) -> f64 {
        1.0 - self.probability
    }

    /// This record as a JSON object (the element [`OptimizeReport::to_json_value`]
    /// puts in its arrays). Non-finite nines render as `null` per the JSON
    /// policy ([`JsonValue::number`]).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("label".to_string(), JsonValue::string(&self.label)),
            ("instance".to_string(), JsonValue::string(&self.instance)),
            ("nodes".to_string(), JsonValue::number(self.nodes as f64)),
            (
                "placement".to_string(),
                self.placement
                    .map_or(JsonValue::Null, |p| JsonValue::string(p.label())),
            ),
            (
                "hourly_cost".to_string(),
                JsonValue::number(self.hourly_cost),
            ),
            (
                "probability".to_string(),
                JsonValue::number(self.probability),
            ),
            ("nines".to_string(), JsonValue::number(self.nines)),
            ("ci_lower".to_string(), JsonValue::number(self.ci_lower)),
            ("ci_upper".to_string(), JsonValue::number(self.ci_upper)),
            (
                "nines_lower".to_string(),
                JsonValue::number(self.nines_lower),
            ),
            (
                "engine".to_string(),
                JsonValue::string(self.engine.to_string()),
            ),
            ("tier".to_string(), JsonValue::number(f64::from(self.tier))),
            ("exact".to_string(), JsonValue::Bool(self.exact)),
            (
                "samples".to_string(),
                JsonValue::optional(self.samples.map(|s| s as f64)),
            ),
            ("ess".to_string(), JsonValue::optional(self.ess)),
            ("feasible".to_string(), JsonValue::Bool(self.feasible)),
            (
                "unavailability_minutes_per_year".to_string(),
                JsonValue::optional(self.unavailability_minutes_per_year),
            ),
        ])
    }
}

/// The optimizer's result: the ranked Pareto frontier plus every evaluated
/// candidate (in deterministic grid order) for auditability.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeReport {
    /// The target the search provisioned for, in nines.
    pub target_nines: f64,
    /// Feasible, Pareto non-dominated candidates sorted by ascending cost
    /// (strictly increasing in both cost and nines).
    pub frontier: Vec<FrontierRecord>,
    /// Every scored candidate, in [`DeploymentSpace::candidates`] order.
    pub evaluated: Vec<FrontierRecord>,
    /// Number of candidates screened at tier 1.
    pub screened: usize,
    /// Number of candidates re-scored at tier 2.
    pub refined: usize,
}

impl OptimizeReport {
    /// The cheapest feasible candidate — the answer to "cheapest k nines?".
    pub fn cheapest(&self) -> Option<&FrontierRecord> {
        self.frontier.first()
    }

    /// The frontier record with the given label, searching all evaluated
    /// candidates.
    pub fn candidate(&self, label: &str) -> Option<&FrontierRecord> {
        self.evaluated.iter().find(|r| r.label == label)
    }

    /// Renders the frontier as a plain-text table (the `repro` harness path).
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(
            format!(
                "Pareto frontier: cheapest deployments meeting {:.1} nines \
                 ({} screened, {} refined)",
                self.target_nines, self.screened, self.refined
            ),
            &[
                "candidate",
                "$/hour",
                "engine",
                "tier",
                "safe&live",
                "nines (lower)",
                "unavail min/yr",
            ],
        );
        for record in &self.frontier {
            table.push_row(vec![
                record.label.clone(),
                format!("{:.2}", record.hourly_cost),
                record.engine.to_string(),
                record.tier.to_string(),
                crate::report::percent(record.probability),
                if record.nines_lower.is_infinite() {
                    "inf".to_string()
                } else {
                    format!("{:.2}", record.nines_lower)
                },
                record
                    .unavailability_minutes_per_year
                    .map_or("-".to_string(), |m| format!("{m:.3}")),
            ]);
        }
        table
    }

    /// The report as a JSON value (frontier, evaluated candidates, counters).
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::Object(vec![
            (
                "target_nines".to_string(),
                JsonValue::number(self.target_nines),
            ),
            (
                "screened".to_string(),
                JsonValue::number(self.screened as f64),
            ),
            (
                "refined".to_string(),
                JsonValue::number(self.refined as f64),
            ),
            (
                "frontier".to_string(),
                JsonValue::Array(self.frontier.iter().map(|r| r.to_json_value()).collect()),
            ),
            (
                "evaluated".to_string(),
                JsonValue::Array(self.evaluated.iter().map(|r| r.to_json_value()).collect()),
            ),
        ])
    }

    /// The report as a pretty-printed JSON document (bit-identical across
    /// thread counts, like [`crate::query::AnalysisReport::to_json`]).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }
}

/// Searches `space` for the cheapest deployments meeting `config.target_nines`,
/// sharing (and warming) the session's scratch cache across tiers and across
/// repeated searches. See the module docs for the tier structure, determinism
/// argument and frontier semantics.
///
/// An empty candidate grid yields an empty report, not an error — "nothing in
/// this space is even well-formed" is an answer.
pub fn optimize(
    session: &AnalysisSession,
    space: &DeploymentSpace,
    config: &OptimizerConfig,
) -> Result<OptimizeReport, AnalysisError> {
    let candidates = space.candidates();
    if candidates.is_empty() {
        return Ok(OptimizeReport {
            target_nines: config.target_nines,
            frontier: Vec::new(),
            evaluated: Vec::new(),
            screened: 0,
            refined: 0,
        });
    }

    // Tier 1: screen the whole grid as one planned sweep (cheap budgets; the
    // scheduler runs the cells as work-stealing items, merge order fixed).
    let mut query = Query::new();
    for (i, candidate) in candidates.iter().enumerate() {
        query = query.optimizer_cell(
            candidate.label.clone(),
            candidate.model.clone(),
            candidate.scenario.clone(),
            config.budget(i, config.screen_samples),
        );
    }
    let screened_report = session.plan(&query)?.execute();
    let mut evaluated: Vec<FrontierRecord> = candidates
        .iter()
        .zip(screened_report.cells())
        .map(|(candidate, cell)| record_from_cell(candidate, cell, 1, config.target_nines))
        .collect();

    // Tier 2: re-score the frontier-adjacent sampling candidates — the ones
    // whose *optimistic* bound still meets the target — with the full budget.
    // Same per-candidate seed, so the cached pilots/proposals are reused.
    let refine: Vec<usize> = evaluated
        .iter()
        .enumerate()
        .filter(|(_, record)| {
            !record.exact
                && Nines::from_probability(record.ci_upper.clamp(0.0, 1.0))
                    .meets(config.target_nines)
        })
        .map(|(i, _)| i)
        .collect();
    if !refine.is_empty() {
        let mut query = Query::new();
        for &i in &refine {
            let candidate = &candidates[i];
            query = query.optimizer_cell(
                candidate.label.clone(),
                candidate.model.clone(),
                candidate.scenario.clone(),
                config.budget(i, config.refine_samples),
            );
        }
        let refined_report = session.plan(&query)?.execute();
        for (k, &i) in refine.iter().enumerate() {
            evaluated[i] = record_from_cell(
                &candidates[i],
                refined_report.cell(k),
                2,
                config.target_nines,
            );
        }
    }

    // Frontier: feasible + Pareto non-dominated. Sorting by (cost, nines desc,
    // label) and keeping strict nines improvements yields a frontier strictly
    // increasing in both cost and nines — no member can dominate another — with
    // ties broken deterministically.
    let mut order: Vec<usize> = (0..evaluated.len()).collect();
    order.sort_by(|&a, &b| {
        let (ra, rb) = (&evaluated[a], &evaluated[b]);
        ra.hourly_cost
            .total_cmp(&rb.hourly_cost)
            .then(rb.nines.total_cmp(&ra.nines))
            .then(ra.label.cmp(&rb.label))
    });
    let mut frontier_indices = Vec::new();
    let mut best_nines = f64::NEG_INFINITY;
    for i in order {
        let record = &evaluated[i];
        if record.feasible && record.nines > best_nines {
            best_nines = record.nines;
            frontier_indices.push(i);
        }
    }

    // Tier 3 (optional): time-domain scoring of the frontier as repairable
    // groups — λ backed out of the window probability, μ from the MTTR.
    if let Some(policy) = &config.repair {
        let scorable: Vec<usize> = frontier_indices
            .iter()
            .copied()
            .filter(|&i| candidates[i].fault_probability < 1.0)
            .collect();
        if !scorable.is_empty() {
            let mut query = Query::new();
            for &i in &scorable {
                let candidate = &candidates[i];
                let lambda = -(1.0 - candidate.fault_probability).ln() / policy.mission_hours;
                let mu = 1.0 / policy.mttr_hours;
                let (group_n, tolerated) = space.target.repair_group(candidate.nodes);
                query = query.repairable_cell(
                    candidate.label.clone(),
                    RepairableGroup::new(group_n, lambda, mu, tolerated),
                );
            }
            let time_report = session.plan(&query)?.execute();
            for (k, &i) in scorable.iter().enumerate() {
                evaluated[i].unavailability_minutes_per_year =
                    time_report.trajectory(k).unavailability_minutes_per_year;
            }
        }
    }

    let frontier = frontier_indices
        .iter()
        .map(|&i| evaluated[i].clone())
        .collect();
    Ok(OptimizeReport {
        target_nines: config.target_nines,
        frontier,
        evaluated,
        screened: candidates.len(),
        refined: refine.len(),
    })
}

/// Extracts the optimizer's view of one executed cell: point estimate, CI (the
/// degenerate point interval for exact engines) and conservative feasibility.
fn record_from_cell(
    candidate: &Candidate,
    cell: &CellRecord,
    tier: u8,
    target_nines: f64,
) -> FrontierRecord {
    let probability = cell.outcome.report.safe_and_live.probability();
    let (ci_lower, ci_upper) = if let Some(mc) = cell.outcome.monte_carlo {
        (mc.safe_and_live.lower, mc.safe_and_live.upper)
    } else if let Some(re) = cell.outcome.rare_event {
        (re.safe_and_live.lower, re.safe_and_live.upper)
    } else {
        (probability, probability)
    };
    let ci_lower = ci_lower.clamp(0.0, 1.0);
    let ci_upper = ci_upper.clamp(0.0, 1.0);
    let lower_nines = Nines::from_probability(ci_lower);
    FrontierRecord {
        label: candidate.label.clone(),
        instance: candidate.instance.clone(),
        nodes: candidate.nodes,
        placement: candidate.placement,
        hourly_cost: candidate.hourly_cost,
        probability,
        nines: fault_model::metrics::nines(probability),
        ci_lower,
        ci_upper,
        nines_lower: lower_nines.nines(),
        engine: cell.outcome.engine,
        tier,
        exact: cell.outcome.is_exact(),
        samples: cell.samples_drawn(),
        ess: cell.ess(),
        feasible: lower_nines.meets(target_nines),
        unavailability_minutes_per_year: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::default_catalogue;
    use crate::engine::Scenario;
    use crate::query::{content_key_words, OPTIMIZER_KEY_TAG};

    fn catalogue_space(nodes: Vec<usize>) -> DeploymentSpace {
        DeploymentSpace {
            instances: default_catalogue()
                .iter()
                .map(NodeType::from_instance)
                .collect(),
            nodes,
            domains: None,
            placements: Vec::new(),
            target: TargetSpec::Protocol(ProtocolSpec::Raft),
        }
    }

    #[test]
    fn exact_raft_space_yields_sorted_feasible_frontier() {
        let session = AnalysisSession::new();
        let report = optimize(
            &session,
            &catalogue_space(vec![3, 5, 7, 9]),
            &OptimizerConfig::new(3.0),
        )
        .unwrap();
        assert_eq!(report.screened, 12);
        assert_eq!(report.refined, 0, "counting cells need no refinement");
        assert!(!report.frontier.is_empty());
        for pair in report.frontier.windows(2) {
            assert!(pair[0].hourly_cost < pair[1].hourly_cost, "sorted by cost");
            assert!(pair[0].nines < pair[1].nines, "strictly improving nines");
        }
        assert!(report.frontier.iter().all(|r| r.feasible && r.exact));
        let best = report.cheapest().unwrap();
        // The paper's §3.2 claim: spot instances win modest targets on price.
        assert_eq!(best.instance, "spot");
        assert_eq!(best.label, report.frontier[0].label);
    }

    #[test]
    fn empty_space_yields_empty_report() {
        let session = AnalysisSession::new();
        let space = DeploymentSpace {
            instances: Vec::new(),
            nodes: vec![3],
            domains: None,
            placements: Vec::new(),
            target: TargetSpec::Protocol(ProtocolSpec::Raft),
        };
        let report = optimize(&session, &space, &OptimizerConfig::new(3.0)).unwrap();
        assert!(report.frontier.is_empty() && report.evaluated.is_empty());
        assert_eq!((report.screened, report.refined), (0, 0));
    }

    #[test]
    fn invalid_grid_combinations_are_skipped_not_fatal() {
        // PBFT below four nodes, flexible quorums without intersection, quorums
        // larger than the cluster: none of these panic, they just drop out.
        let pbft = DeploymentSpace {
            target: TargetSpec::Protocol(ProtocolSpec::Pbft),
            ..catalogue_space(vec![1, 3, 4, 7])
        };
        assert!(pbft.candidates().iter().all(|c| c.nodes >= 4));
        let flex = DeploymentSpace {
            target: TargetSpec::Protocol(ProtocolSpec::RaftFlexible { q_per: 4, q_vc: 2 }),
            ..catalogue_space(vec![3, 5, 9])
        };
        assert!(flex.candidates().iter().all(|c| c.nodes == 5));
        let quorum = DeploymentSpace {
            target: TargetSpec::PersistenceQuorum { quorum_size: 4 },
            ..catalogue_space(vec![2, 4])
        };
        assert!(quorum.candidates().iter().all(|c| c.nodes == 4));
    }

    #[test]
    fn cross_rack_placement_needs_enough_racks() {
        let space = DeploymentSpace {
            instances: vec![NodeType::new("spot", 0.08, 0.10)],
            nodes: vec![12],
            domains: Some(FailureDomains {
                racks: 3,
                shock_probability: 0.01,
            }),
            placements: vec![Placement::SameRack, Placement::CrossRack],
            target: TargetSpec::PersistenceQuorum { quorum_size: 4 },
        };
        // 12 nodes over 3 racks: per-rack 4, so same-rack fits exactly and
        // cross-rack (needing 4 racks) is unrealizable.
        let candidates = space.candidates();
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].placement, Some(Placement::SameRack));
        // Rack groups landed on the scenario.
        assert_eq!(candidates[0].scenario.groups().len(), 3);
    }

    #[test]
    fn node_type_conversions_preserve_probability_and_price() {
        let instance = &default_catalogue()[1];
        let node = NodeType::from_instance(instance);
        assert_eq!(node.name, "spot");
        assert_eq!(node.profile.fault_probability(), instance.fault_probability);
        assert_eq!(node.hourly_cost, instance.hourly_cost);

        // Telemetry-derived node types: one year of mission window maps the
        // posterior-mean AFR straight back to a window probability.
        let mut telemetry = FleetTelemetry::new();
        for i in 0..200u64 {
            telemetry.push(fault_model::telemetry::TelemetryRecord {
                device_id: i,
                class: "spot".into(),
                age_at_start: 0.0,
                observed_hours: fault_model::metrics::HOURS_PER_YEAR,
                failed: i % 25 == 0,
                byzantine: false,
            });
        }
        let node = NodeType::from_telemetry(
            "measured",
            &telemetry,
            fault_model::metrics::HOURS_PER_YEAR,
            0.10,
        )
        .expect("telemetry has exposure");
        let posterior = TelemetryPosterior::from_telemetry(&telemetry).unwrap();
        assert!((node.profile.fault_probability() - posterior.afr_mean()).abs() < 1e-12);
    }

    #[test]
    fn optimizer_keys_live_in_their_own_namespace() {
        // The cache-aliasing guarantee at the key level: an optimizer cell's
        // scratch key is the first-order content key with OPTIMIZER_KEY_TAG
        // prefixed, so the first word always differs from first-order keys
        // (CONTENT tag) and epistemic per-draw keys (EPISTEMIC tag) over the
        // same model/scenario. The integration side (shared session, disjoint
        // entries) is pinned in tests/optimizer_verification.rs.
        let model = PersistenceQuorumModel::new(6, vec![0, 2, 4]);
        let scenario = CorrelationModel::independent(vec![FaultProfile::crash_only(0.05); 6]);
        let words = content_key_words(&model, Scenario::Correlated(&scenario))
            .expect("the model has a cache signature");
        assert_ne!(words[0], OPTIMIZER_KEY_TAG);
        let mut optimizer_words = words.clone();
        optimizer_words.insert(0, OPTIMIZER_KEY_TAG);
        assert_eq!(optimizer_words[0], OPTIMIZER_KEY_TAG);
        assert_ne!(optimizer_words, words);
    }

    #[test]
    fn shared_session_separates_optimizer_scratch_from_first_order() {
        // Behavioral aliasing check: scoring the same (model, scenario) as a
        // first-order cell and as an optimizer candidate must create two
        // distinct scratch groups in the same session cache.
        let session = AnalysisSession::new();
        let space = DeploymentSpace {
            instances: vec![NodeType::new("spot", 0.08, 0.10)],
            nodes: vec![5],
            domains: None,
            placements: Vec::new(),
            target: TargetSpec::PersistenceQuorum { quorum_size: 2 },
        };
        let candidate = &space.candidates()[0];
        let query = Query::new().cell_correlated(
            "first-order",
            candidate.model.clone(),
            candidate.scenario.clone(),
        );
        session.run(&query).unwrap();
        let before = session.cache_stats().entries;
        optimize(&session, &space, &OptimizerConfig::new(1.0)).unwrap();
        let after = session.cache_stats().entries;
        assert_eq!(
            after,
            before + 1,
            "the optimizer's scratch for the same content is a new namespaced entry"
        );
    }

    #[test]
    fn repair_policy_scores_frontier_in_time_domain() {
        let session = AnalysisSession::new();
        let config = OptimizerConfig::new(3.0).with_repair(RepairPolicy {
            mttr_hours: 10.0,
            mission_hours: fault_model::metrics::HOURS_PER_YEAR,
        });
        let report = optimize(&session, &catalogue_space(vec![3, 5]), &config).unwrap();
        assert!(!report.frontier.is_empty());
        for record in &report.frontier {
            let minutes = record
                .unavailability_minutes_per_year
                .expect("tier 3 scored every frontier member");
            assert!(minutes.is_finite() && minutes >= 0.0);
        }
        // Off-frontier candidates stay steady-state only.
        assert!(report
            .evaluated
            .iter()
            .filter(|r| !report.frontier.contains(r))
            .all(|r| r.unavailability_minutes_per_year.is_none()));
    }

    #[test]
    fn json_and_table_render_the_frontier() {
        let session = AnalysisSession::new();
        let report = optimize(
            &session,
            &catalogue_space(vec![3, 5]),
            &OptimizerConfig::new(3.0),
        )
        .unwrap();
        let json = JsonValue::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(
            json.get("target_nines").and_then(JsonValue::as_f64),
            Some(3.0)
        );
        let frontier = json.get("frontier").and_then(JsonValue::as_array).unwrap();
        assert_eq!(frontier.len(), report.frontier.len());
        assert_eq!(
            frontier[0].get("label").and_then(JsonValue::as_str),
            Some(report.frontier[0].label.as_str())
        );
        let table = report.to_table();
        assert_eq!(table.num_rows(), report.frontier.len());
        assert!(table.title().contains("3.0 nines"));
    }

    #[test]
    fn more_screening_budget_never_removes_exact_frontier_points() {
        // Exact cells ignore the sample knob entirely, so the frontier over an
        // all-counting space is invariant under budget changes — the cheap half
        // of the monotonicity property (the sampling half lives in
        // tests/optimizer_properties.rs).
        let session = AnalysisSession::new();
        let space = catalogue_space(vec![3, 5, 7]);
        let small = optimize(
            &session,
            &space,
            &OptimizerConfig::new(3.0).with_screen_samples(1_000),
        )
        .unwrap();
        let large = optimize(
            &session,
            &space,
            &OptimizerConfig::new(3.0).with_screen_samples(50_000),
        )
        .unwrap();
        assert_eq!(small.frontier, large.frontier);
    }
}
