//! Rare-event reliability estimation by importance sampling.
//!
//! The paper's §4 durability claim lives in a regime plain Monte Carlo cannot reach:
//! threshold exceedance is ~50% while actual data loss is ~1e-10, so a naive sampler
//! needs ≈10¹² draws to see a single loss event. The exact engines cover the
//! independent counting case, but any *correlated* or placement-sensitive variant of
//! that scenario was previously unanalyzable. This module closes the gap with
//! per-node probability tilting:
//!
//! # The tilting math
//!
//! Write the target failure model `p` as a product of per-node fault draws plus
//! independent common-cause shocks (the [`CorrelationModel`] construction). A
//! [`Proposal`] `q` mirrors that structure with *inflated* per-node profiles `q_i`
//! and shock probabilities `q_g`. The sampler draws each configuration from the
//! **defensive mixture** `m = β·p + (1−β)·q` (β = ½): a fair coin decides whether a
//! sample's latent variables come from the target or from the tilted proposal, and
//! the importance weight is computed on those *latent* variables —
//!
//! ```text
//! r(x) = Π_i q_i(s_i)/p_i(s_i) · Π_g [ fired_g ? q_g/p_g : (1-q_g)/(1-p_g) ]
//! w(x) = p(x)/m(x) = 1 / (β + (1−β)·r(x))
//! ```
//!
//! — where `s_i` is node `i`'s pre-shock outcome and `fired_g` whether group `g`'s
//! shock fired. Weighting the latent draw (not the post-override state) keeps the
//! estimator exact under correlation: the latent→state mapping is identical under
//! target and proposal, so the ratio of joint latent densities is a valid importance
//! weight. The defensive mixture is what makes *self-normalization* sound: weights
//! are bounded by `1/β = 2` on the bulk of the space, so `Σw/n` concentrates on 1
//! even when the proposal tilts hard into a deep tail (a pure-proposal sampler would
//! leave the typical set unsampled and its normalizer undefined in practice).
//!
//! The failure probability `u = P[¬event]` is then estimated self-normalized,
//! `û = Σ w_i z_i / Σ w_i` with `z_i` the failure indicator, with a delta-method
//! standard error `se² = Σ w_i²(z_i − û)² / (Σ w_i)²` and the effective sample size
//! diagnostic `ESS = (Σ w_i)² / Σ w_i²`. A proposal equal to the target degrades
//! gracefully to plain Monte Carlo (all weights 1, ESS = n).
//!
//! # Choosing the proposal
//!
//! A single uniform tilt is statistically broken once the cluster is large: tilting
//! the ~90 nodes that are irrelevant to a 10-node persistence quorum inflates the
//! likelihood-ratio variance exponentially in N and drives the weights of the very
//! event samples the tilt was meant to reach toward zero. The automatic proposal is
//! therefore *adaptive*: a short pilot (a few thousand draws per round) starts from
//! a strongly tilted proposal and measures, per node and per shock, the
//! **unweighted** frequency `f_i` of being faulty among the round's failure samples.
//! Under the current proposal an event-irrelevant node is faulty in failure samples
//! exactly as often as anywhere else (`f_i ≈ q_i`), while a node every failure
//! requires has `f_i = 1`; the *requiredness* score
//!
//! ```text
//! r_i = (f_i − q_i) / (1 − q_i)    (clamped into [0, 1])
//! ```
//!
//! separates the two with only binomial noise — deliberately avoiding the
//! weighted-frequency update of classic cross-entropy, whose round-one weights are
//! themselves degenerate. Smoothed across rounds, each node's proposal moves to
//! `p_i + r_i·(cap − p_i)`: required nodes converge up toward the cap, bystanders
//! fall back to their target probabilities — the product-form ideal proposal. An
//! explicit scalar tilt
//! ([`Budget::with_rare_event_tilt`](crate::engine::Budget::with_rare_event_tilt))
//! bypasses the pilot for small clusters and for tests that need a closed-form
//! proposal. Deep *threshold* events at huge N (say, 1,500 of 3,000 nodes down)
//! have no good product-form proposal at all; the estimator stays honest there —
//! wide rule-of-three intervals, flagged by the ESS/CI diagnostics — it just loses
//! its efficiency edge.
//!
//! # Parallelism and determinism
//!
//! The sampler reuses the Monte Carlo engine's chunked `(seed, chunk)` scheme
//! ([`crate::montecarlo::MC_CHUNK_SIZE`]): the chunk count depends only on the sample
//! budget, every chunk's RNG is seeded from the run seed and the chunk index, and —
//! because the accumulators here are floating-point weight sums, whose addition is
//! not associative — per-chunk tallies are collected *in chunk order* and folded
//! sequentially. Reports are therefore bit-identical across thread counts for a
//! fixed seed, pilot rounds included.

use fault_model::correlation::CorrelationModel;
use fault_model::mode::{FaultProfile, NodeState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::analyzer::ReliabilityReport;
use crate::engine::{AnalysisEngine, AnalysisOutcome, Budget, EngineChoice, Scenario};
use crate::enumeration::RawReliability;
use crate::failure::FailureConfig;
use crate::montecarlo::{chunk_seed, map_sample_chunks, Estimate};
use crate::protocol::ProtocolModel;

/// Cap on any proposal fault probability. Strictly below 1 so a node's correct
/// outcome always remains reachable under the proposal whenever it is reachable
/// under the target (absolute continuity of the proposal).
const MAX_PROPOSAL_FAULT: f64 = 0.95;

/// Initial per-node proposal fault probability of the adaptive pilot. High enough
/// that even deep-tail events (e.g. ten simultaneous faults) appear in a few
/// thousand draws.
const INITIAL_PROPOSAL_FAULT: f64 = 0.5;

/// Initial proposal probability for correlation-group shocks in the adaptive pilot.
const INITIAL_PROPOSAL_SHOCK: f64 = 0.25;

/// Number of cross-entropy refinement rounds in the adaptive pilot.
const PILOT_ROUNDS: usize = 3;

/// Draws per cross-entropy pilot round.
const PILOT_SAMPLES: usize = 8_192;

/// Mixture weight β on the *target* component of the defensive sampler: each draw
/// comes from the target with probability β and from the tilted proposal otherwise,
/// which bounds every importance weight by `1/β` on the bulk of the space (see the
/// module docs).
const DEFENSIVE_TARGET_FRACTION: f64 = 0.5;

/// Smoothing weight on the freshly measured requiredness scores in a pilot update;
/// the remainder stays on the previous round's score, damping the binomial noise of
/// early rounds (which may see only a handful of failure samples).
const PILOT_SMOOTHING: f64 = 0.7;

/// Draws of the auto-selector's deterministic pilot (see [`naive_failure_estimate`]).
const SELECTOR_PILOT_SAMPLES: usize = 1_024;

/// Seed-derivation tag of the selector pilot stream.
const SELECTOR_SEED_TAG: u64 = 0x5E1E_C702;

/// Seed-derivation tag of pilot round `r` (the round index is added).
const PILOT_SEED_TAG: u64 = 0xCE00_0000;

/// A tilted proposal distribution over failure configurations: per-node fault
/// profiles plus per-group shock probabilities, mirroring the structure of the
/// target [`CorrelationModel`].
///
/// Invariants maintained by every constructor: each proposal probability is at least
/// its target counterpart (faults are only ever inflated), zero stays zero (states
/// the target cannot produce are never proposed), and fault probabilities are capped
/// at `MAX_PROPOSAL_FAULT` (0.95) so every target-reachable outcome stays reachable.
#[derive(Debug, Clone, PartialEq)]
pub struct Proposal {
    profiles: Vec<FaultProfile>,
    shocks: Vec<f64>,
}

/// Returns `profile` rescaled so its total fault probability becomes `q_fault`,
/// clamped into `[fault, max(fault, MAX_PROPOSAL_FAULT)]`. Crash and Byzantine mass
/// are scaled by the same factor, so their ratio — and any zero — is preserved.
fn profile_with_fault(profile: &FaultProfile, q_fault: f64) -> FaultProfile {
    let fault = profile.fault_probability();
    if fault <= 0.0 {
        return *profile;
    }
    let q = q_fault.clamp(fault, MAX_PROPOSAL_FAULT.max(fault));
    profile.scaled(q / fault)
}

/// Clamps a proposal shock probability into `[p, max(p, MAX_PROPOSAL_FAULT)]`,
/// preserving zero.
fn shock_with_probability(p: f64, q: f64) -> f64 {
    if p <= 0.0 {
        return 0.0;
    }
    q.clamp(p, MAX_PROPOSAL_FAULT.max(p))
}

impl Proposal {
    /// The identity proposal: sampling from it is plain Monte Carlo (all weights 1).
    pub fn identity(target: &CorrelationModel) -> Self {
        Self {
            profiles: target.profiles().to_vec(),
            shocks: target
                .groups()
                .iter()
                .map(|g| g.shock_probability)
                .collect(),
        }
    }

    /// A uniform scalar tilt: every node's fault probability and every shock
    /// probability is multiplied by `tilt` (floored at the target, capped at
    /// `MAX_PROPOSAL_FAULT` (0.95)). Adequate for small clusters where most nodes are
    /// relevant to the failure event; prefer [`Proposal::adaptive`] at scale.
    pub fn uniform_tilt(target: &CorrelationModel, tilt: f64) -> Self {
        assert!(
            tilt >= 1.0,
            "a proposal tilt must not deflate faults: {tilt}"
        );
        Self {
            profiles: target
                .profiles()
                .iter()
                .map(|p| profile_with_fault(p, p.fault_probability() * tilt))
                .collect(),
            shocks: target
                .groups()
                .iter()
                .map(|g| shock_with_probability(g.shock_probability, g.shock_probability * tilt))
                .collect(),
        }
    }

    /// The strongly tilted starting point of the adaptive pilot.
    fn pilot_initial(target: &CorrelationModel) -> Self {
        Self {
            profiles: target
                .profiles()
                .iter()
                .map(|p| profile_with_fault(p, INITIAL_PROPOSAL_FAULT))
                .collect(),
            shocks: target
                .groups()
                .iter()
                .map(|g| shock_with_probability(g.shock_probability, INITIAL_PROPOSAL_SHOCK))
                .collect(),
        }
    }

    /// Learns a per-node proposal with a short requiredness pilot (see the module
    /// docs). Deterministic for a fixed `seed` at any thread count. Falls back to a
    /// further-inflated proposal when a round observes no failures at all.
    pub fn adaptive<M: ProtocolModel + ?Sized>(
        model: &M,
        target: &CorrelationModel,
        seed: u64,
    ) -> Self {
        let mut proposal = Self::pilot_initial(target);
        let mut node_score = vec![0.0f64; target.len()];
        let mut shock_score = vec![0.0f64; target.groups().len()];
        for round in 0..PILOT_ROUNDS {
            let round_seed = chunk_seed(seed, PILOT_SEED_TAG + round as u64);
            let tally = map_sample_chunks(PILOT_SAMPLES, round_seed, |rng, count| {
                pilot_chunk(model, target, &proposal, count, rng)
            })
            .into_iter()
            .fold(PilotTally::new(target), PilotTally::merge);
            if tally.failures == 0 {
                // No failures at this tilt: inflate everything and try again.
                proposal = Self {
                    profiles: proposal
                        .profiles
                        .iter()
                        .map(|q| profile_with_fault(q, 2.0 * q.fault_probability()))
                        .collect(),
                    shocks: proposal
                        .shocks
                        .iter()
                        .map(|&q| shock_with_probability(q, 2.0 * q))
                        .collect(),
                };
                continue;
            }
            // Requiredness update: measure each node's unweighted fault frequency
            // among failure samples, subtract what the current proposal would produce
            // for an event-irrelevant node, and smooth across rounds. The proposal is
            // rebuilt from the *target* each round, so bystanders whose score decays
            // sample at exactly their target probabilities (weight factor 1).
            let failures = tally.failures as f64;
            for (score, (&count, q)) in node_score
                .iter_mut()
                .zip(tally.node_fail_count.iter().zip(&proposal.profiles))
            {
                let freq = count as f64 / failures;
                let q_fault = q.fault_probability().min(MAX_PROPOSAL_FAULT);
                let required = ((freq - q_fault) / (1.0 - q_fault)).clamp(0.0, 1.0);
                *score = PILOT_SMOOTHING * required + (1.0 - PILOT_SMOOTHING) * *score;
            }
            for (score, (&count, &q)) in shock_score
                .iter_mut()
                .zip(tally.shock_fired_count.iter().zip(&proposal.shocks))
            {
                let freq = count as f64 / failures;
                let q = q.min(MAX_PROPOSAL_FAULT);
                let required = ((freq - q) / (1.0 - q)).clamp(0.0, 1.0);
                *score = PILOT_SMOOTHING * required + (1.0 - PILOT_SMOOTHING) * *score;
            }
            proposal = Self {
                profiles: target
                    .profiles()
                    .iter()
                    .zip(&node_score)
                    .map(|(p, &score)| {
                        let fault = p.fault_probability();
                        profile_with_fault(p, fault + score * (MAX_PROPOSAL_FAULT - fault))
                    })
                    .collect(),
                shocks: target
                    .groups()
                    .iter()
                    .zip(&shock_score)
                    .map(|(g, &score)| {
                        let p = g.shock_probability;
                        shock_with_probability(p, p + score * (MAX_PROPOSAL_FAULT - p))
                    })
                    .collect(),
            };
        }
        proposal
    }

    /// The per-node proposal fault profiles.
    pub fn profiles(&self) -> &[FaultProfile] {
        &self.profiles
    }

    /// The per-group proposal shock probabilities.
    pub fn shocks(&self) -> &[f64] {
        &self.shocks
    }

    /// Mean proposal fault probability across nodes — a summary of how hard the
    /// proposal tilts, reported as a diagnostic.
    pub fn mean_fault_probability(&self) -> f64 {
        if self.profiles.is_empty() {
            return 0.0;
        }
        self.profiles
            .iter()
            .map(|p| p.fault_probability())
            .sum::<f64>()
            / self.profiles.len() as f64
    }

    fn assert_matches(&self, target: &CorrelationModel) {
        assert_eq!(
            self.profiles.len(),
            target.len(),
            "proposal and target disagree on the cluster size"
        );
        assert_eq!(
            self.shocks.len(),
            target.groups().len(),
            "proposal and target disagree on the correlation groups"
        );
    }
}

/// One weighted draw from the defensive mixture, written into a caller-provided
/// scratch configuration (the tilted counterpart of
/// [`CorrelationModel::sample_into`] — the estimator loops are allocation-free, one
/// scratch buffer per work chunk). Returns the importance weight `p/m`; which shocks
/// fired (needed by the pilot's CE update) lands in `fired`.
fn draw_weighted_into<R: Rng + ?Sized>(
    target: &CorrelationModel,
    proposal: &Proposal,
    rng: &mut R,
    fired: &mut Vec<bool>,
    config: &mut FailureConfig,
) -> f64 {
    let beta = DEFENSIVE_TARGET_FRACTION;
    let from_target = rng.gen::<f64>() < beta;
    // `ratio` accumulates q(x)/p(x) over the latent factors. An overflow to ∞ means
    // the true weight underflows f64 — the sample contributes (correctly) nothing —
    // and an underflow to 0 correctly saturates the weight at its bound 1/β.
    let mut ratio = 1.0f64;
    let states = config.states_mut();
    for (slot, (p, q)) in states
        .iter_mut()
        .zip(target.profiles().iter().zip(&proposal.profiles))
    {
        let d = if from_target { p } else { q };
        let u: f64 = rng.gen();
        let state = if u < d.byzantine_probability() {
            NodeState::Byzantine
        } else if u < d.fault_probability() {
            NodeState::Crashed
        } else {
            NodeState::Correct
        };
        ratio *= q.probability_of(state) / p.probability_of(state);
        *slot = state;
    }
    fired.clear();
    for (group, &q_shock) in target.groups().iter().zip(&proposal.shocks) {
        let p_shock = group.shock_probability;
        let d = if from_target { p_shock } else { q_shock };
        let shock = rng.gen::<f64>() < d;
        ratio *= if shock {
            q_shock / p_shock
        } else {
            (1.0 - q_shock) / (1.0 - p_shock)
        };
        if shock {
            for &m in &group.members {
                states[m] = match (states[m], group.shock_mode) {
                    // Mirrors `CorrelationModel::sample_into`: Byzantine never
                    // downgrades.
                    (NodeState::Byzantine, _) => NodeState::Byzantine,
                    (_, mode) => mode,
                };
            }
        }
        fired.push(shock);
    }
    1.0 / (beta + (1.0 - beta) * ratio)
}

/// Per-chunk weighted tallies of the final estimator. Folded sequentially in chunk
/// order — float sums are not associative, so the fold order is part of the
/// determinism contract.
#[derive(Debug, Clone, Copy, Default)]
struct WeightedTally {
    sum_w: f64,
    sum_w2: f64,
    unsafe_w: f64,
    unsafe_w2: f64,
    unlive_w: f64,
    unlive_w2: f64,
    unboth_w: f64,
    unboth_w2: f64,
}

impl WeightedTally {
    fn merge(self, other: WeightedTally) -> WeightedTally {
        WeightedTally {
            sum_w: self.sum_w + other.sum_w,
            sum_w2: self.sum_w2 + other.sum_w2,
            unsafe_w: self.unsafe_w + other.unsafe_w,
            unsafe_w2: self.unsafe_w2 + other.unsafe_w2,
            unlive_w: self.unlive_w + other.unlive_w,
            unlive_w2: self.unlive_w2 + other.unlive_w2,
            unboth_w: self.unboth_w + other.unboth_w,
            unboth_w2: self.unboth_w2 + other.unboth_w2,
        }
    }
}

fn estimator_chunk<M: ProtocolModel + ?Sized>(
    model: &M,
    target: &CorrelationModel,
    proposal: &Proposal,
    count: usize,
    rng: &mut impl Rng,
) -> WeightedTally {
    let mut tally = WeightedTally::default();
    let mut fired = Vec::with_capacity(target.groups().len());
    let mut config = FailureConfig::all_correct(target.len());
    for _ in 0..count {
        let w = draw_weighted_into(target, proposal, rng, &mut fired, &mut config);
        let safe = model.is_safe(&config);
        let live = model.is_live(&config);
        let w2 = w * w;
        tally.sum_w += w;
        tally.sum_w2 += w2;
        if !safe {
            tally.unsafe_w += w;
            tally.unsafe_w2 += w2;
        }
        if !live {
            tally.unlive_w += w;
            tally.unlive_w2 += w2;
        }
        if !(safe && live) {
            tally.unboth_w += w;
            tally.unboth_w2 += w2;
        }
    }
    tally
}

/// Per-chunk tallies of one pilot round: failure count, per-node faulty counts and
/// per-group fired counts among failure samples. Deliberately *unweighted* — integer
/// counts carry only binomial noise, where the round-one importance weights would be
/// degenerate (see the module docs).
#[derive(Debug, Clone)]
struct PilotTally {
    failures: usize,
    node_fail_count: Vec<usize>,
    shock_fired_count: Vec<usize>,
}

impl PilotTally {
    fn new(target: &CorrelationModel) -> Self {
        Self {
            failures: 0,
            node_fail_count: vec![0; target.len()],
            shock_fired_count: vec![0; target.groups().len()],
        }
    }

    fn merge(mut self, other: PilotTally) -> PilotTally {
        self.failures += other.failures;
        for (a, b) in self.node_fail_count.iter_mut().zip(&other.node_fail_count) {
            *a += b;
        }
        for (a, b) in self
            .shock_fired_count
            .iter_mut()
            .zip(&other.shock_fired_count)
        {
            *a += b;
        }
        self
    }
}

fn pilot_chunk<M: ProtocolModel + ?Sized>(
    model: &M,
    target: &CorrelationModel,
    proposal: &Proposal,
    count: usize,
    rng: &mut impl Rng,
) -> PilotTally {
    let mut tally = PilotTally::new(target);
    let mut fired = Vec::with_capacity(target.groups().len());
    let mut config = FailureConfig::all_correct(target.len());
    for _ in 0..count {
        draw_weighted_into(target, proposal, rng, &mut fired, &mut config);
        if model.is_safe(&config) && model.is_live(&config) {
            continue;
        }
        tally.failures += 1;
        for (acc, state) in tally.node_fail_count.iter_mut().zip(config.states()) {
            if state.is_faulty() {
                *acc += 1;
            }
        }
        for (acc, &f) in tally.shock_fired_count.iter_mut().zip(&fired) {
            if f {
                *acc += 1;
            }
        }
    }
    tally
}

/// The importance-sampling estimate of one reliability analysis: the three
/// guarantees as weighted estimates with delta-method confidence intervals, plus the
/// effective-sample-size diagnostic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RareEventReport {
    /// Estimated probability of safety.
    pub safe: Estimate,
    /// Estimated probability of liveness.
    pub live: Estimate,
    /// Estimated probability of both.
    pub safe_and_live: Estimate,
    /// Number of weighted samples drawn.
    pub samples: usize,
    /// Effective sample size `(Σw)²/Σw²`: how many *unweighted* samples the weighted
    /// set is worth. A collapsed ESS (≪ samples) flags an ill-matched proposal and
    /// therefore untrustworthy (if still honest) intervals.
    pub ess: f64,
    /// Mean proposal fault probability — how hard the proposal tilted.
    pub proposal_mean_fault: f64,
}

impl RareEventReport {
    /// Whether the effective sample size reaches the budget's floor
    /// ([`Budget::min_effective_samples`](crate::engine::Budget::min_effective_samples)).
    pub fn meets_min_ess(&self, min_ess: f64) -> bool {
        self.ess >= min_ess
    }
}

/// Turns a failure-side tally into a reliability-side estimate `1 − û` with a
/// symmetric delta-method margin; with zero observed failures the upper failure
/// bound falls back to the rule of three on the effective sample size.
fn reliability_estimate(fail_w: f64, fail_w2: f64, tally: &WeightedTally, ess: f64) -> Estimate {
    let u_hat = fail_w / tally.sum_w;
    if fail_w <= 0.0 {
        return Estimate::from_value_and_margin(1.0, 3.0 / ess.max(1.0));
    }
    // Σ w²(z−û)² = Σw²z·(1−2û) + û²·Σw², clamped against floating-point drift.
    let var_sum = (fail_w2 * (1.0 - 2.0 * u_hat) + u_hat * u_hat * tally.sum_w2).max(0.0);
    let se = var_sum.sqrt() / tally.sum_w;
    Estimate::from_value_and_margin(1.0 - u_hat, crate::montecarlo::Z_95 * se)
}

/// Estimates the reliability of `model` under a (possibly correlated) failure model
/// by importance sampling from `proposal` across the rayon thread pool.
///
/// Deterministic for a fixed `seed` regardless of thread count: the chunked
/// `(seed, chunk)` scheme of [`crate::montecarlo`] plus a sequential in-order fold
/// of the per-chunk weight sums. A zero sample budget saturates to one sample.
pub fn importance_sampling_reliability_par<M: ProtocolModel + ?Sized>(
    model: &M,
    target: &CorrelationModel,
    proposal: &Proposal,
    samples: usize,
    seed: u64,
) -> RareEventReport {
    let samples = samples.max(1);
    assert_eq!(
        model.num_nodes(),
        target.len(),
        "model and failure model disagree on the cluster size"
    );
    proposal.assert_matches(target);
    let tally = map_sample_chunks(samples, seed, |rng, count| {
        estimator_chunk(model, target, proposal, count, rng)
    })
    .into_iter()
    .fold(WeightedTally::default(), WeightedTally::merge);
    debug_assert!(
        tally.sum_w > 0.0,
        "importance weights are strictly positive"
    );
    let ess = if tally.sum_w2 > 0.0 {
        tally.sum_w * tally.sum_w / tally.sum_w2
    } else {
        0.0
    };
    RareEventReport {
        safe: reliability_estimate(tally.unsafe_w, tally.unsafe_w2, &tally, ess),
        live: reliability_estimate(tally.unlive_w, tally.unlive_w2, &tally, ess),
        safe_and_live: reliability_estimate(tally.unboth_w, tally.unboth_w2, &tally, ess),
        samples,
        ess,
        proposal_mean_fault: proposal.mean_fault_probability(),
    }
}

/// The auto-selector's cheap, deterministic estimate of the failure probability
/// `P[¬(safe ∧ live)]` of this model/scenario pair.
///
/// A small pilot (`SELECTOR_PILOT_SAMPLES` (1024) plain draws, seeded from the budget
/// seed) catches failure events common enough for plain Monte Carlo. When the pilot
/// observes *zero* failures the pilot resolution (~1e-3) is not informative, so the
/// estimate falls back to an analytic proxy: the probability that a strict majority
/// of nodes is simultaneously faulty under the *independent marginals* (a
/// Poisson-binomial tail, O(N²)). The proxy deliberately ignores correlation — it
/// only decides engine preference; a correlated common-mode event that is not
/// actually rare still yields a consistent importance-sampling estimate, just with
/// less of an efficiency edge over plain sampling.
pub fn naive_failure_estimate(
    model: &dyn ProtocolModel,
    scenario: Scenario<'_>,
    budget: &Budget,
) -> f64 {
    let target = scenario.to_correlation_model();
    naive_failure_estimate_with(model, &target, budget.seed)
}

/// [`naive_failure_estimate`] on an already-converted correlation model — shared
/// with the query API ([`crate::query`]), which caches the pilot per
/// (model, scenario, seed) group so a sweep pays for it once instead of per cell.
/// The estimate depends only on the model, the target and the seed, so the cached
/// value is exactly what the per-cell call would have computed.
pub(crate) fn naive_failure_estimate_with(
    model: &dyn ProtocolModel,
    target: &CorrelationModel,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(chunk_seed(seed, SELECTOR_SEED_TAG));
    let mut hits = 0usize;
    let mut config = FailureConfig::all_correct(target.len());
    for _ in 0..SELECTOR_PILOT_SAMPLES {
        target.sample_into(config.states_mut(), &mut rng);
        if !(model.is_safe(&config) && model.is_live(&config)) {
            hits += 1;
        }
    }
    if hits > 0 {
        return hits as f64 / SELECTOR_PILOT_SAMPLES as f64;
    }
    let marginals = target.marginal_fault_probabilities();
    majority_faulty_probability(&marginals)
}

/// `P[#faulty ≥ ⌈(n+1)/2⌉]` for independent per-node fault probabilities — the
/// 1-D Poisson-binomial tail used as the selector's analytic rare-event proxy.
fn majority_faulty_probability(marginals: &[f64]) -> f64 {
    let n = marginals.len();
    let mut pmf = vec![0.0f64; n + 1];
    pmf[0] = 1.0;
    for (added, &p) in marginals.iter().enumerate() {
        for k in (0..=added).rev() {
            let mass = pmf[k];
            if mass == 0.0 {
                continue;
            }
            pmf[k] = mass * (1.0 - p);
            pmf[k + 1] += mass * p;
        }
    }
    let majority = n / 2 + 1;
    pmf[majority..].iter().sum::<f64>().min(1.0)
}

/// Rare-event importance sampling: applies to every model and scenario; preferred by
/// the auto-selector when the failure event is too rare for plain Monte Carlo
/// (naive estimate below [`Budget::rare_event_threshold`](crate::engine::Budget))
/// and no exact engine took the scenario first.
#[derive(Debug, Clone, Copy, Default)]
pub struct ImportanceSamplingEngine;

impl AnalysisEngine for ImportanceSamplingEngine {
    fn choice(&self) -> EngineChoice {
        EngineChoice::ImportanceSampling
    }

    fn name(&self) -> &'static str {
        "importance-sampling"
    }

    fn supports(&self, model: &dyn ProtocolModel, scenario: Scenario<'_>, budget: &Budget) -> bool {
        // A zero threshold can never be undercut; bail before paying for the pilot,
        // so disabling the engine is free.
        budget.rare_event_threshold > 0.0
            && !scenario.is_empty()
            && naive_failure_estimate(model, scenario, budget) < budget.rare_event_threshold
    }

    fn run(
        &self,
        model: &dyn ProtocolModel,
        scenario: Scenario<'_>,
        budget: &Budget,
    ) -> AnalysisOutcome {
        let target = scenario.to_correlation_model();
        let proposal = select_proposal(model, &target, budget);
        run_importance_sampling(model, &target, &proposal, budget)
    }
}

/// The proposal the importance-sampling engine samples from for this budget: the
/// pinned uniform tilt when one is set, the adaptive pilot otherwise. Split out of
/// [`ImportanceSamplingEngine::run`] so the query API ([`crate::query`]) can cache
/// the (deterministic, seed-keyed) pilot result per cell group.
pub(crate) fn select_proposal(
    model: &dyn ProtocolModel,
    target: &CorrelationModel,
    budget: &Budget,
) -> Proposal {
    if budget.rare_event_tilt > 0.0 {
        Proposal::uniform_tilt(target, budget.rare_event_tilt.max(1.0))
    } else {
        Proposal::adaptive(model, target, budget.seed)
    }
}

/// The estimator half of [`ImportanceSamplingEngine::run`]: the weighted main run,
/// the one-shot ESS escalation, and the outcome wrapping. Shared verbatim with the
/// query API so a planned cell is bit-identical to the engine's own run.
pub(crate) fn run_importance_sampling(
    model: &dyn ProtocolModel,
    target: &CorrelationModel,
    proposal: &Proposal,
    budget: &Budget,
) -> AnalysisOutcome {
    let mut report = importance_sampling_reliability_par(
        model,
        target,
        proposal,
        budget.monte_carlo_samples,
        budget.seed,
    );
    // One escalation: if the weights collapsed below the ESS floor, spend a
    // doubled sample budget (fresh stream) before reporting.
    if !report.meets_min_ess(budget.min_effective_samples) {
        report = importance_sampling_reliability_par(
            model,
            target,
            proposal,
            budget.monte_carlo_samples.max(1) * 2,
            budget.seed ^ 0x9E37_79B9_7F4A_7C15,
        );
    }
    AnalysisOutcome {
        report: ReliabilityReport::from_raw(RawReliability {
            p_safe: report.safe.value,
            p_live: report.live.value,
            p_safe_and_live: report.safe_and_live.value,
        }),
        engine: EngineChoice::ImportanceSampling,
        monte_carlo: None,
        rare_event: Some(report),
        simulation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use crate::durability::PersistenceQuorumModel;
    use crate::engine::Budget;
    use crate::raft_model::RaftModel;
    use fault_model::correlation::CorrelationGroup;

    fn crash_model(n: usize, p: f64) -> CorrelationModel {
        CorrelationModel::independent(vec![FaultProfile::crash_only(p); n])
    }

    #[test]
    fn identity_proposal_reduces_to_plain_monte_carlo_weights() {
        let target = crash_model(5, 0.05);
        let proposal = Proposal::identity(&target);
        let model = RaftModel::standard(5);
        let report = importance_sampling_reliability_par(&model, &target, &proposal, 20_000, 3);
        // All weights are 1, so the ESS equals the sample count exactly.
        assert!((report.ess - 20_000.0).abs() < 1e-6, "ess {}", report.ess);
        assert!((report.proposal_mean_fault - 0.05).abs() < 1e-12);
    }

    #[test]
    fn uniform_tilt_matches_exact_counting_within_ci() {
        let model = RaftModel::standard(5);
        let deployment = Deployment::uniform_crash(5, 0.01);
        let exact = crate::counting::counting_reliability(&model, &deployment);
        let target = crash_model(5, 0.01);
        let proposal = Proposal::uniform_tilt(&target, 10.0);
        let report = importance_sampling_reliability_par(&model, &target, &proposal, 60_000, 11);
        assert!(
            report.live.contains(exact.p_live),
            "exact {} not in [{}, {}]",
            exact.p_live,
            report.live.lower,
            report.live.upper
        );
        // Tail event p ≈ 1e-5: a 60k-sample plain MC CI is ~an order of magnitude
        // wider than the tilted one.
        assert!(report.live.half_width() < 1e-5);
        assert!(report.ess > 100.0);
    }

    #[test]
    fn proposal_floors_at_target_and_caps_below_one() {
        let target = CorrelationModel::independent(vec![
            FaultProfile::crash_only(0.0),
            FaultProfile::crash_only(1e-6),
            FaultProfile::new(0.4, 0.2),
        ])
        .with_group(CorrelationGroup::crash_shock(vec![1, 2], 0.01));
        let proposal = Proposal::uniform_tilt(&target, 1e9);
        // Zero stays zero: never propose a state the target cannot produce.
        assert_eq!(proposal.profiles()[0].fault_probability(), 0.0);
        for q in &proposal.profiles()[1..] {
            assert!(q.fault_probability() <= MAX_PROPOSAL_FAULT + 1e-12);
        }
        // Crash/Byzantine ratio preserved under tilting.
        let q2 = proposal.profiles()[2];
        assert!((q2.crash_probability() / q2.byzantine_probability() - 2.0).abs() < 1e-9);
        assert!(proposal.shocks()[0] <= MAX_PROPOSAL_FAULT + 1e-12);
        // Tilt below 1 is rejected; tilt 1 is the identity.
        assert_eq!(
            Proposal::uniform_tilt(&target, 1.0),
            Proposal::identity(&target)
        );
    }

    #[test]
    #[should_panic(expected = "must not deflate")]
    fn deflating_tilt_is_rejected() {
        Proposal::uniform_tilt(&crash_model(3, 0.1), 0.5);
    }

    #[test]
    fn adaptive_proposal_tilts_quorum_members_only() {
        // 20 nodes; the failure event needs all of nodes 0..4 faulty (p = 1e-5).
        let target = crash_model(20, 0.05);
        let model = PersistenceQuorumModel::new(20, (0..4).collect());
        let proposal = Proposal::adaptive(&model, &target, 42);
        let q = proposal.profiles();
        for (member, profile) in q.iter().enumerate().take(4) {
            assert!(
                profile.fault_probability() > 0.5,
                "member {member} tilted to {}",
                profile.fault_probability()
            );
        }
        let bystander_mean = q[4..].iter().map(|p| p.fault_probability()).sum::<f64>() / 16.0;
        assert!(
            bystander_mean < 0.2,
            "bystanders should fall back toward the target, got {bystander_mean}"
        );
    }

    #[test]
    fn adaptive_estimate_nails_deep_tail_probability() {
        // P[loss] = 0.05^5 ≈ 3.1e-7 — ~3 million plain draws per hit, so a 40k-draw
        // plain Monte Carlo run would all but surely report zero.
        let target = crash_model(20, 0.05);
        let model = PersistenceQuorumModel::new(20, (0..5).collect());
        let proposal = Proposal::adaptive(&model, &target, 11);
        let report = importance_sampling_reliability_par(&model, &target, &proposal, 40_000, 11);
        let truth = 0.05f64.powi(5);
        let loss = 1.0 - report.safe.value;
        assert!(
            report.safe.contains(1.0 - truth),
            "truth {truth:.3e} outside CI [{:.3e}, {:.3e}]",
            1.0 - report.safe.upper,
            1.0 - report.safe.lower
        );
        assert!(loss > 0.0, "the tilted sampler must actually see the event");
        assert!(report.meets_min_ess(Budget::default().min_effective_samples));
    }

    #[test]
    fn weighted_estimator_is_bit_identical_across_thread_counts() {
        let target =
            crash_model(9, 0.02).with_group(CorrelationGroup::crash_shock((0..9).collect(), 0.001));
        let model = RaftModel::standard(9);
        let proposal = Proposal::uniform_tilt(&target, 8.0);
        // Ragged tail chunk on purpose.
        let samples = 2 * crate::montecarlo::MC_CHUNK_SIZE + 13;
        let reference =
            importance_sampling_reliability_par(&model, &target, &proposal, samples, 99);
        for threads in [1usize, 2, 3, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let report = pool.install(|| {
                importance_sampling_reliability_par(&model, &target, &proposal, samples, 99)
            });
            assert_eq!(report, reference, "divergence at {threads} threads");
        }
    }

    #[test]
    fn adaptive_pilot_is_bit_identical_across_thread_counts() {
        let target = crash_model(12, 0.03);
        let model = PersistenceQuorumModel::new(12, (0..3).collect());
        let reference = Proposal::adaptive(&model, &target, 5);
        for threads in [1usize, 2, 5] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let proposal = pool.install(|| Proposal::adaptive(&model, &target, 5));
            assert_eq!(proposal, reference, "pilot divergence at {threads} threads");
        }
    }

    #[test]
    fn correlated_target_weights_stay_exact() {
        // Independent part cannot fail (p = 0); the only route to data loss is the
        // shock, so the weighted estimate must recover the shock probability.
        let shock = 0.002;
        let target =
            crash_model(6, 0.0).with_group(CorrelationGroup::crash_shock((0..6).collect(), shock));
        let model = PersistenceQuorumModel::new(6, (0..6).collect());
        let proposal = Proposal::uniform_tilt(&target, 100.0);
        let report = importance_sampling_reliability_par(&model, &target, &proposal, 50_000, 21);
        assert!(
            report.safe.contains(1.0 - shock),
            "shock {} outside [{}, {}]",
            1.0 - shock,
            report.safe.lower,
            report.safe.upper
        );
    }

    #[test]
    fn zero_sample_budget_saturates_to_one_sample() {
        let target = crash_model(3, 0.1);
        let model = RaftModel::standard(3);
        let proposal = Proposal::identity(&target);
        let report = importance_sampling_reliability_par(&model, &target, &proposal, 0, 1);
        assert_eq!(report.samples, 1);
        for e in [report.safe, report.live, report.safe_and_live] {
            assert!(e.value.is_finite() && e.lower.is_finite() && e.upper.is_finite());
            assert!(0.0 <= e.lower && e.lower <= e.value && e.value <= e.upper && e.upper <= 1.0);
        }
    }

    #[test]
    fn selector_estimate_uses_pilot_for_common_failures() {
        let model = RaftModel::standard(3);
        let deployment = Deployment::uniform_crash(3, 0.25);
        let estimate = naive_failure_estimate(
            &model,
            Scenario::Independent(&deployment),
            &Budget::default(),
        );
        // Unlive ≈ 0.16: the pilot sees plenty of hits.
        assert!(estimate > 0.05, "got {estimate}");
    }

    #[test]
    fn selector_estimate_falls_back_to_analytic_proxy_in_the_tail() {
        let model = PersistenceQuorumModel::new(40, (0..8).collect());
        let deployment = Deployment::uniform_crash(40, 0.05);
        let estimate = naive_failure_estimate(
            &model,
            Scenario::Independent(&deployment),
            &Budget::default(),
        );
        // P[loss] ≈ 4e-11; the pilot sees nothing and the majority proxy takes over.
        assert!(estimate < 1e-6, "got {estimate}");
    }

    #[test]
    fn majority_proxy_matches_binomial_on_uniform_probabilities() {
        // n = 3, p = 0.5: P[#faulty >= 2] = 0.5.
        let proxy = majority_faulty_probability(&[0.5; 3]);
        assert!((proxy - 0.5).abs() < 1e-12, "got {proxy}");
        assert_eq!(majority_faulty_probability(&[0.0; 5]), 0.0);
    }
}
