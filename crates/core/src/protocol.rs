//! Protocol reliability models.
//!
//! A protocol reliability model answers, for one failure configuration, the two questions
//! the paper's analysis needs (§3): "We deem a configuration *safe* if all of its system
//! runs ensure agreement across non-failed nodes. We consider a configuration *live* if
//! in all runs, all non-failed nodes eventually commit all operations."

use crate::failure::FailureConfig;

/// The safety/liveness predicate of a consensus protocol over failure configurations.
///
/// Models are required to be `Sync` so the analysis engines can evaluate their
/// predicates from worker threads (see [`crate::montecarlo`]); they are plain
/// reliability predicates, so this is not a real restriction.
pub trait ProtocolModel: Sync {
    /// Short human-readable name ("Raft", "PBFT", ...).
    fn name(&self) -> String;

    /// Number of nodes in the protocol configuration.
    fn num_nodes(&self) -> usize;

    /// Whether every run under `config` preserves agreement among non-failed nodes.
    fn is_safe(&self, config: &FailureConfig) -> bool;

    /// Whether every run under `config` eventually commits all operations at non-failed
    /// nodes.
    fn is_live(&self, config: &FailureConfig) -> bool;

    /// Whether the configuration is both safe and live.
    fn is_safe_and_live(&self, config: &FailureConfig) -> bool {
        self.is_safe(config) && self.is_live(config)
    }

    /// The counting-model view of this model, if its predicates depend only on fault
    /// *counts* (see [`CountingModel`]).
    ///
    /// The engine auto-selector ([`crate::analyzer::analyze_auto`]) uses this to route
    /// counting models to the exact O(N³) engine; implementors of [`CountingModel`]
    /// should override it to return `Some(self)`.
    fn as_counting(&self) -> Option<&dyn CountingModel> {
        None
    }

    /// The executable-protocol view of this model, if an implementation of the
    /// protocol exists on the discrete-event simulator (see [`ExecutableSpec`]).
    ///
    /// The time-domain simulation engine
    /// ([`crate::simulation::SimulationEngine`]) uses this to decide whether a
    /// model's predictions can be validated empirically: [`crate::raft_model`] and
    /// [`crate::pbft_model`] override it; abstract models (placement-sensitive
    /// durability, custom quorum policies) keep the `None` default and stay
    /// analytic-only.
    fn executable(&self) -> Option<ExecutableSpec> {
        None
    }

    /// A stable *content fingerprint* identifying this model for cross-request
    /// scratch caching (see [`crate::cache`]).
    ///
    /// Two models may return the same fingerprint **only if** their safety and
    /// liveness predicates are identical on every failure configuration — the
    /// session cache will hand both the same compiled kernels and learned
    /// proposals. To make collisions structurally impossible, implementations
    /// encode their full defining content (type tag plus every parameter), not a
    /// hash of it; the cache compares fingerprints in full.
    ///
    /// `None` (the default) means the model has no stable identity, and every
    /// plan that uses it gets private, plan-local scratch — always correct, just
    /// not amortized across requests. [`crate::raft_model::RaftModel`],
    /// [`crate::pbft_model::PbftModel`] and
    /// [`crate::durability::PersistenceQuorumModel`] opt in.
    fn cache_signature(&self) -> Option<Vec<u64>> {
        None
    }
}

/// Type tags namespacing [`ProtocolModel::cache_signature`] fingerprints, so two
/// different model types can never encode the same words. New implementations
/// must take a fresh tag.
pub mod signature_tags {
    /// [`crate::raft_model::RaftModel`].
    pub const RAFT: u64 = 1;
    /// [`crate::pbft_model::PbftModel`].
    pub const PBFT: u64 = 2;
    /// [`crate::durability::PersistenceQuorumModel`].
    pub const PERSISTENCE_QUORUM: u64 = 3;
}

/// A description of an executable counterpart of a protocol model: enough to build
/// the corresponding `consensus-protocols` cluster at the model's configuration.
///
/// This is deliberately a plain value (not a trait object) so the simulation engine
/// can hand it across threads and build one independent cluster per trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutableSpec {
    /// Raft with explicit persistence (commit) and view-change (election) quorums —
    /// [`RaftConfig::standard`](consensus_protocols::raft::RaftConfig) with
    /// [`with_quorums`](consensus_protocols::raft::RaftConfig::with_quorums) applied.
    Raft {
        /// Cluster size.
        n: usize,
        /// Commit (persistence) quorum size, `|Q_per|`.
        commit_quorum: usize,
        /// Election (view-change) quorum size, `|Q_vc|`.
        election_quorum: usize,
    },
    /// PBFT with the standard `N = 3f + 1` quorum layout
    /// ([`PbftConfig::standard`](consensus_protocols::pbft::PbftConfig::standard)).
    Pbft {
        /// Cluster size.
        n: usize,
    },
}

impl ExecutableSpec {
    /// Cluster size of the executable configuration.
    pub fn num_nodes(&self) -> usize {
        match self {
            ExecutableSpec::Raft { n, .. } | ExecutableSpec::Pbft { n } => *n,
        }
    }
}

/// A protocol model whose predicates depend only on *how many* nodes crashed and how many
/// are Byzantine — not on *which* nodes they are.
///
/// Both Theorem 3.1 (PBFT) and Theorem 3.2 (Raft) have this form, which makes an exact
/// O(N³) dynamic-programming analysis possible even for heterogeneous per-node
/// probabilities (see [`crate::counting`]). Models that place requirements on specific
/// nodes (e.g. "quorums must contain a reliable node") are not counting models.
pub trait CountingModel: ProtocolModel {
    /// Safety predicate over fault counts.
    fn is_safe_counts(&self, crashed: usize, byzantine: usize) -> bool;

    /// Liveness predicate over fault counts.
    fn is_live_counts(&self, crashed: usize, byzantine: usize) -> bool;

    /// Combined predicate over fault counts.
    fn is_safe_and_live_counts(&self, crashed: usize, byzantine: usize) -> bool {
        self.is_safe_counts(crashed, byzantine) && self.is_live_counts(crashed, byzantine)
    }
}

/// Blanket check used by tests and debug assertions: a counting model must agree with its
/// configuration-level predicates on every configuration handed to it.
pub fn counting_model_is_consistent<M: CountingModel>(model: &M, config: &FailureConfig) -> bool {
    let crashed = config.num_crashed();
    let byz = config.num_byzantine();
    model.is_safe(config) == model.is_safe_counts(crashed, byz)
        && model.is_live(config) == model.is_live_counts(crashed, byz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pbft_model::PbftModel;
    use crate::raft_model::RaftModel;
    use fault_model::mode::NodeState;
    use proptest::prelude::*;

    fn arbitrary_config(n: usize) -> impl Strategy<Value = FailureConfig> {
        proptest::collection::vec(0u8..3, n).prop_map(|v| {
            FailureConfig::new(
                v.into_iter()
                    .map(|x| match x {
                        0 => NodeState::Correct,
                        1 => NodeState::Crashed,
                        _ => NodeState::Byzantine,
                    })
                    .collect(),
            )
        })
    }

    proptest! {
        #[test]
        fn raft_counting_model_is_consistent(config in arbitrary_config(7)) {
            let model = RaftModel::standard(7);
            prop_assert!(counting_model_is_consistent(&model, &config));
        }

        #[test]
        fn pbft_counting_model_is_consistent(config in arbitrary_config(7)) {
            let model = PbftModel::standard(7);
            prop_assert!(counting_model_is_consistent(&model, &config));
        }
    }
}
