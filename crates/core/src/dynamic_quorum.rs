//! Dynamic quorum sizing (§4, "probability-native consensus", first step).
//!
//! "We can choose quorum sizes dynamically such that they overlap with high probability."
//! Given a deployment's fault profiles and a target guarantee, these searches find the
//! smallest quorum configuration that still meets the target — smaller persistence
//! quorums mean a shorter data path, so the search minimizes `|Q_per|` first.

use crate::analyzer::analyze;
use crate::deployment::Deployment;
use crate::pbft_model::PbftModel;
use crate::raft_model::RaftModel;

/// The result of a dynamic quorum-sizing search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuorumSizing<M> {
    /// The chosen protocol configuration.
    pub model: M,
    /// The safe-and-live probability it achieves on the deployment.
    pub achieved: f64,
}

/// Finds the Raft quorum configuration with the smallest persistence quorum (breaking
/// ties toward a smaller view-change quorum) whose safe-and-live probability reaches
/// `target_nines`, keeping the structural safety conditions of Theorem 3.2.
///
/// Returns `None` when even `Q_per = Q_vc = N` misses the target.
pub fn smallest_raft_quorums(
    deployment: &Deployment,
    target_nines: f64,
) -> Option<QuorumSizing<RaftModel>> {
    let n = deployment.len();
    let mut best: Option<QuorumSizing<RaftModel>> = None;
    for q_per in 1..=n {
        for q_vc in 1..=n {
            let candidate = RaftModel::flexible(n, q_per, q_vc);
            if !candidate.quorums_intersect() {
                continue;
            }
            let report = analyze(&candidate, deployment);
            if !report.safe_and_live.meets(target_nines) {
                continue;
            }
            let better = match &best {
                None => true,
                Some(current) => {
                    let c = current.model;
                    (q_per, q_vc) < (c.q_per(), c.q_vc())
                }
            };
            if better {
                best = Some(QuorumSizing {
                    model: candidate,
                    achieved: report.safe_and_live.probability(),
                });
            }
        }
    }
    best
}

/// Finds the PBFT configuration with the smallest common quorum size `q`
/// (`Q_eq = Q_per = Q_vc = q`, `Q_vc_t = N − q + 1`) whose safety and liveness both reach
/// `target_nines` on the deployment.
pub fn smallest_pbft_quorums(
    deployment: &Deployment,
    target_nines: f64,
) -> Option<QuorumSizing<PbftModel>> {
    let n = deployment.len();
    for q in 1..=n {
        let q_vc_t = (n - q + 1).max(1);
        let candidate = PbftModel::new(n, q, q, q, q_vc_t);
        let report = analyze(&candidate, deployment);
        if report.safe.meets(target_nines) && report.live.meets(target_nines) {
            return Some(QuorumSizing {
                model: candidate,
                achieved: report.safe_and_live.probability(),
            });
        }
    }
    None
}

/// The §3.2 "linear size quorums can be overkill" comparison: the `f+1`-sized
/// view-change-trigger quorum mandated by the f-threshold model versus the smallest
/// sample size that contains at least one correct node with probability `target`,
/// assuming each node is faulty independently with probability `p_fault`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriggerQuorumComparison {
    /// Cluster size.
    pub n: usize,
    /// The f-threshold prescription (`⌊(N−1)/3⌋ + 1`).
    pub f_threshold_size: usize,
    /// The probabilistic prescription for the requested target.
    pub probabilistic_size: usize,
    /// Probability that the probabilistic-size sample contains a correct node.
    pub achieved: f64,
}

/// Computes the trigger-quorum comparison for an iid fault probability.
pub fn trigger_quorum_comparison(n: usize, p_fault: f64, target: f64) -> TriggerQuorumComparison {
    assert!((0.0..1.0).contains(&p_fault));
    assert!((0.0..1.0).contains(&target));
    let f_threshold_size = (n - 1) / 3 + 1;
    let mut probabilistic_size = n;
    let mut achieved = 1.0 - p_fault.powi(n as i32);
    for k in 1..=n {
        let p_all_faulty = p_fault.powi(k as i32);
        if 1.0 - p_all_faulty >= target {
            probabilistic_size = k;
            achieved = 1.0 - p_all_faulty;
            break;
        }
    }
    TriggerQuorumComparison {
        n,
        f_threshold_size,
        probabilistic_size,
        achieved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_model::mode::FaultProfile;

    #[test]
    fn reliable_fleets_admit_smaller_quorums() {
        // Very reliable 9-node fleet: 3 nines are achievable with quorums smaller than a
        // majority on the persistence path (compensated by a larger view-change quorum).
        let d = Deployment::uniform_crash(9, 0.001);
        let sizing = smallest_raft_quorums(&d, 3.0).unwrap();
        assert!(sizing.model.q_per() <= 5);
        assert!(sizing.model.quorums_intersect());
        assert!(sizing.achieved >= 0.999);
        // A flaky fleet needs bigger quorums (or cannot hit a high target at all).
        let flaky = Deployment::uniform_crash(9, 0.2);
        let flaky_sizing = smallest_raft_quorums(&flaky, 3.0);
        if let Some(s) = flaky_sizing {
            assert!(s.model.q_per().max(s.model.q_vc()) >= sizing.model.q_per());
        }
    }

    #[test]
    fn unreachable_targets_return_none() {
        let d = Deployment::uniform_crash(3, 0.3);
        assert!(smallest_raft_quorums(&d, 9.0).is_none());
        let b = Deployment::uniform_byzantine(4, 0.3);
        assert!(smallest_pbft_quorums(&b, 9.0).is_none());
    }

    #[test]
    fn pbft_sizing_respects_safety_and_liveness() {
        let d = Deployment::uniform_byzantine(7, 0.01);
        let sizing = smallest_pbft_quorums(&d, 3.0).unwrap();
        let report = analyze(&sizing.model, &d);
        assert!(report.safe.meets(3.0));
        assert!(report.live.meets(3.0));
        assert!(sizing.model.q_per() <= 7);
    }

    #[test]
    fn heterogeneous_deployment_sizing_uses_exact_probabilities() {
        let mut profiles = vec![FaultProfile::crash_only(0.001); 4];
        profiles.push(FaultProfile::crash_only(0.2));
        let d = Deployment::from_profiles(profiles);
        let sizing = smallest_raft_quorums(&d, 3.0).unwrap();
        assert!(sizing.achieved >= 0.999);
    }

    #[test]
    fn paper_trigger_quorum_overkill_claim() {
        // N = 100, p_u = 1%: the f-threshold model wants |Q_vc_t| = 34; five nodes give
        // ten nines of hitting a correct node.
        let c = trigger_quorum_comparison(100, 0.01, 1.0 - 1e-10);
        assert_eq!(c.f_threshold_size, 34);
        assert_eq!(c.probabilistic_size, 5);
        assert!(c.achieved >= 1.0 - 1e-10);
    }

    #[test]
    fn trigger_quorum_grows_with_fault_probability() {
        let low = trigger_quorum_comparison(100, 0.01, 0.999999);
        let high = trigger_quorum_comparison(100, 0.2, 0.999999);
        assert!(high.probabilistic_size > low.probabilistic_size);
    }
}
