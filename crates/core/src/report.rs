//! Plain-text table formatting for the benchmark harness and examples.

/// A simple column-aligned plain-text table, used by the `repro` harness to print the
/// paper's tables and claims.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the row must have exactly as many cells as there are headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Appends a row built from anything displayable.
    pub fn push_display_row(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The rows as strings (for tests and serialization).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        widths
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let widths = self.column_widths();
        writeln!(f, "{}", self.title)?;
        let format_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let header = format_row(&self.headers);
        writeln!(f, "{header}")?;
        writeln!(f, "{}", "-".repeat(header.len()))?;
        for row in &self.rows {
            writeln!(f, "{}", format_row(row))?;
        }
        Ok(())
    }
}

/// Formats a probability the way the paper's tables do (percentage with every leading
/// nine visible), delegating to [`fault_model::metrics::Nines`].
pub fn percent(probability: f64) -> String {
    fault_model::metrics::Nines::from_probability(probability).as_percent()
}

/// Formats a probability as a number of nines with two decimals (e.g. `3.52 nines`).
pub fn nines(probability: f64) -> String {
    let n = fault_model::metrics::nines(probability);
    if n.is_infinite() {
        "inf nines".to_string()
    } else {
        format!("{n:.2} nines")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Demo", &["N", "Safe %"]);
        t.push_row(vec!["3".into(), "99.97%".into()]);
        t.push_row(vec!["9".into(), "99.999998%".into()]);
        let rendered = format!("{t}");
        assert!(rendered.contains("Demo"));
        assert!(rendered.contains("N  Safe %"));
        assert!(rendered.lines().count() >= 5);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.rows()[0][1], "99.97%");
    }

    #[test]
    #[should_panic(expected = "cells but the table has")]
    fn row_arity_is_checked() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn percent_and_nines_formatting() {
        assert_eq!(percent(0.9997), "99.97%");
        assert_eq!(nines(0.999), "3.00 nines");
        assert_eq!(nines(1.0), "inf nines");
    }

    #[test]
    fn display_rows_accept_mixed_types() {
        let mut t = Table::new("Mixed", &["n", "p"]);
        t.push_display_row(&[&3usize, &0.01f64]);
        assert_eq!(t.rows()[0], vec!["3".to_string(), "0.01".to_string()]);
    }
}
