//! Theorem 3.1: the PBFT (BFT) reliability model.

use crate::failure::FailureConfig;
use crate::protocol::{CountingModel, ProtocolModel};

/// PBFT with configurable non-equivocation, persistence, view-change and
/// view-change-trigger quorum sizes.
///
/// Theorem 3.1 of the paper:
///
/// * PBFT is **safe** iff `|Byz| < 2|Q_eq| − N` and `|Byz| < |Q_per| + |Q_vc| − N`:
///   quorum intersections must contain at least one correct node.
/// * PBFT is **live** iff `|Correct| >= |Q_eq|, |Q_per|, |Q_vc|`, `|Byz| < |Q_vc_t|`,
///   and the Byzantine nodes cannot stall the view-change hand-off. The paper prints the
///   last condition as `|Byz| <= |Q_vc_t| − |Q_vc|`, which is negative for every
///   configuration in Table 1 and would make liveness impossible; the numbers in Table 1
///   are consistent with reading it as `|Byz| <= |Q_vc| − |Q_vc_t|`, which is what this
///   model implements (see DESIGN.md, "Theorem interpretation notes").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PbftModel {
    n: usize,
    q_eq: usize,
    q_per: usize,
    q_vc: usize,
    q_vc_t: usize,
}

impl PbftModel {
    /// Creates a PBFT model with explicit quorum sizes.
    ///
    /// # Panics
    ///
    /// Panics if any quorum size is zero or exceeds `n`.
    pub fn new(n: usize, q_eq: usize, q_per: usize, q_vc: usize, q_vc_t: usize) -> Self {
        assert!(n > 0, "cluster must be non-empty");
        for (label, q) in [
            ("Q_eq", q_eq),
            ("Q_per", q_per),
            ("Q_vc", q_vc),
            ("Q_vc_t", q_vc_t),
        ] {
            assert!((1..=n).contains(&q), "{label} must be in 1..=N (got {q})");
        }
        Self {
            n,
            q_eq,
            q_per,
            q_vc,
            q_vc_t,
        }
    }

    /// The standard PBFT configuration for `n` nodes used in Table 1:
    /// `f = ⌊(N−1)/3⌋`, `|Q_eq| = |Q_per| = |Q_vc| = N − f`, `|Q_vc_t| = f + 1`.
    pub fn standard(n: usize) -> Self {
        let f = (n - 1) / 3;
        Self::new(n, n - f, n - f, n - f, f + 1)
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Non-equivocation quorum size.
    pub fn q_eq(&self) -> usize {
        self.q_eq
    }

    /// Persistence quorum size.
    pub fn q_per(&self) -> usize {
        self.q_per
    }

    /// View-change quorum size.
    pub fn q_vc(&self) -> usize {
        self.q_vc
    }

    /// View-change trigger quorum size.
    pub fn q_vc_t(&self) -> usize {
        self.q_vc_t
    }

    /// The nominal fault threshold implied by the configuration (`⌊(N−1)/3⌋` for the
    /// standard layout).
    pub fn nominal_f(&self) -> usize {
        self.n - self.q_per
    }
}

impl ProtocolModel for PbftModel {
    fn name(&self) -> String {
        format!("PBFT(N={})", self.n)
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn is_safe(&self, config: &FailureConfig) -> bool {
        assert_eq!(config.len(), self.n, "configuration size mismatch");
        self.is_safe_counts(config.num_crashed(), config.num_byzantine())
    }

    fn is_live(&self, config: &FailureConfig) -> bool {
        assert_eq!(config.len(), self.n, "configuration size mismatch");
        self.is_live_counts(config.num_crashed(), config.num_byzantine())
    }

    fn as_counting(&self) -> Option<&dyn CountingModel> {
        Some(self)
    }

    fn executable(&self) -> Option<crate::protocol::ExecutableSpec> {
        // The simulator's PBFT is built for the standard N = 3f + 1 layout (its
        // view-change hand-off assumes it); non-standard quorum variants stay
        // analytic-only. PBFT needs at least 4 nodes to run.
        let standard = PbftModel::standard(self.n);
        (self.n >= 4 && *self == standard)
            .then_some(crate::protocol::ExecutableSpec::Pbft { n: self.n })
    }

    fn cache_signature(&self) -> Option<Vec<u64>> {
        // All four quorum sizes enter Theorem 3.1's predicates.
        Some(vec![
            crate::protocol::signature_tags::PBFT,
            self.n as u64,
            self.q_eq as u64,
            self.q_per as u64,
            self.q_vc as u64,
            self.q_vc_t as u64,
        ])
    }
}

impl CountingModel for PbftModel {
    fn is_safe_counts(&self, _crashed: usize, byzantine: usize) -> bool {
        // Crashed nodes cannot violate agreement; only Byzantine nodes can, by sitting in
        // quorum intersections. Conditions (1) and (2) of Theorem 3.1; a subtraction that
        // would underflow means the quorums do not even intersect, hence unsafe for any
        // number of Byzantine nodes... unless there are none and the intersection holds
        // trivially (still required: the bound must be positive).
        let eq_bound = (2 * self.q_eq).checked_sub(self.n);
        let per_vc_bound = (self.q_per + self.q_vc).checked_sub(self.n);
        match (eq_bound, per_vc_bound) {
            (Some(eq), Some(pv)) => byzantine < eq && byzantine < pv,
            _ => false,
        }
    }

    fn is_live_counts(&self, crashed: usize, byzantine: usize) -> bool {
        let faulty = crashed + byzantine;
        let correct = self.n.saturating_sub(faulty);
        let max_quorum = self.q_eq.max(self.q_per).max(self.q_vc);
        // (2) Enough correct nodes to form every quorum.
        let can_form = correct >= max_quorum;
        // (3) Byzantine nodes cannot trigger spurious view changes on their own.
        let no_spurious_vc = byzantine < self.q_vc_t;
        // (1) Byzantine nodes cannot stall the view-change hand-off (see module docs for
        // the reading of this condition).
        let vc_slack = byzantine <= self.q_vc.saturating_sub(self.q_vc_t);
        can_form && no_spurious_vc && vc_slack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn standard_configurations_match_table1_quorum_sizes() {
        let rows = [(4usize, 3usize, 2usize), (5, 4, 2), (7, 5, 3), (8, 6, 3)];
        for (n, q, q_vc_t) in rows {
            let m = PbftModel::standard(n);
            assert_eq!(m.q_eq(), q, "N={n}");
            assert_eq!(m.q_per(), q, "N={n}");
            assert_eq!(m.q_vc(), q, "N={n}");
            assert_eq!(m.q_vc_t(), q_vc_t, "N={n}");
        }
    }

    #[test]
    fn four_node_pbft_tolerates_one_byzantine_fault() {
        let m = PbftModel::standard(4);
        assert!(m.is_safe_counts(0, 1));
        assert!(!m.is_safe_counts(0, 2));
        assert!(m.is_live_counts(0, 1));
        assert!(!m.is_live_counts(0, 2));
        assert!(!m.is_live_counts(2, 0), "crashes also break liveness");
    }

    #[test]
    fn crashes_do_not_break_safety() {
        let m = PbftModel::standard(7);
        assert!(m.is_safe(&FailureConfig::with_crashed(7, &[0, 1, 2, 3, 4, 5, 6])));
    }

    #[test]
    fn safety_tolerates_more_byzantine_nodes_with_larger_quorums() {
        // N=5 with quorums of 4: safe up to 2 Byzantine nodes (Table 1 discussion).
        let m = PbftModel::standard(5);
        assert!(m.is_safe_counts(0, 2));
        assert!(!m.is_safe_counts(0, 3));
        // But live only up to 1 fault.
        assert!(!m.is_live_counts(0, 2));
    }

    #[test]
    fn undersized_quorums_are_never_safe() {
        // Quorums of 2 over 4 nodes cannot intersect in a correct node.
        let m = PbftModel::new(4, 2, 2, 2, 2);
        assert!(!m.is_safe_counts(0, 0));
    }

    #[test]
    fn nominal_f_matches_standard_layout() {
        assert_eq!(PbftModel::standard(4).nominal_f(), 1);
        assert_eq!(PbftModel::standard(7).nominal_f(), 2);
        assert_eq!(PbftModel::standard(10).nominal_f(), 3);
    }

    proptest! {
        #[test]
        fn safety_and_liveness_are_monotone_in_byzantine_count(n in 4usize..16) {
            let m = PbftModel::standard(n);
            let mut was_safe = true;
            let mut was_live = true;
            for byz in 0..=n {
                let safe = m.is_safe_counts(0, byz);
                let live = m.is_live_counts(0, byz);
                // Once lost, never regained as faults increase.
                prop_assert!(was_safe || !safe);
                prop_assert!(was_live || !live);
                was_safe = safe;
                was_live = live;
            }
        }

        #[test]
        fn standard_pbft_is_safe_and_live_at_nominal_f(n in 4usize..20) {
            let m = PbftModel::standard(n);
            let f = m.nominal_f();
            prop_assert!(m.is_safe_counts(0, f));
            prop_assert!(m.is_live_counts(0, f));
        }
    }
}
