//! Exact analysis by enumerating failure configurations.
//!
//! The paper's method (§3): enumerate every failure configuration, decide for each
//! whether the protocol stays safe / live, weight it by its probability under the
//! deployment, and sum. With only one failure mode per node the space is 2^N; with both
//! crash and Byzantine probabilities it is 3^N. This engine is exact and fully general
//! (it works for *any* [`ProtocolModel`], including non-counting ones) but exponential,
//! so it is intended for the paper-scale clusters (N ≲ 20).

use fault_model::mode::NodeState;

use crate::deployment::Deployment;
use crate::failure::FailureConfig;
use crate::protocol::ProtocolModel;

/// Raw probabilities produced by an analysis engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawReliability {
    /// Probability that the deployment is safe.
    pub p_safe: f64,
    /// Probability that the deployment is live.
    pub p_live: f64,
    /// Probability that the deployment is both safe and live.
    pub p_safe_and_live: f64,
}

impl RawReliability {
    /// Clamps tiny numerical excursions outside `[0, 1]`.
    pub fn clamped(self) -> Self {
        Self {
            p_safe: self.p_safe.clamp(0.0, 1.0),
            p_live: self.p_live.clamp(0.0, 1.0),
            p_safe_and_live: self.p_safe_and_live.clamp(0.0, 1.0),
        }
    }
}

/// The hard ceiling on nodes for exhaustive enumeration (3^20 ≈ 3.5e9 would already be
/// too slow; 2^20 is fine, so the bound depends on the deployment's failure modes).
/// Admissibility is exposed via [`enumeration_supported`] so the engine auto-selector
/// and this module cannot drift.
const MAX_BINARY_NODES: usize = 24;
const MAX_TERNARY_NODES: usize = 15;

/// The per-node failure modes enumeration considers for these profiles. Shared by
/// [`enumerate_reliability`], [`enumeration_supported`] and
/// [`enumeration_config_count`] so the three can never disagree.
fn active_modes(profiles: &[fault_model::mode::FaultProfile]) -> Vec<NodeState> {
    let crash = profiles.iter().any(|p| p.crash_probability() > 0.0);
    let byzantine = profiles.iter().any(|p| p.byzantine_probability() > 0.0);
    if crash && byzantine {
        vec![NodeState::Correct, NodeState::Crashed, NodeState::Byzantine]
    } else if byzantine {
        vec![NodeState::Correct, NodeState::Byzantine]
    } else {
        vec![NodeState::Correct, NodeState::Crashed]
    }
}

/// Number of failure configurations [`enumerate_reliability`] would visit for these
/// profiles, saturating at `u64::MAX`.
pub fn enumeration_config_count(profiles: &[fault_model::mode::FaultProfile]) -> u64 {
    let modes = active_modes(profiles).len() as u64;
    let mut total: u64 = 1;
    for _ in 0..profiles.len() {
        total = total.saturating_mul(modes);
    }
    total
}

/// Whether [`enumerate_reliability`] accepts these profiles without panicking — the
/// module's own admissibility rule, for the engine auto-selector.
pub fn enumeration_supported(profiles: &[fault_model::mode::FaultProfile]) -> bool {
    let cap = if active_modes(profiles).len() == 3 {
        MAX_TERNARY_NODES
    } else {
        MAX_BINARY_NODES
    };
    profiles.len() <= cap
}

/// Exhaustively enumerates failure configurations and returns the exact safety/liveness
/// probabilities of `model` under `deployment`.
///
/// # Panics
///
/// Panics if the deployment size does not match the model, or if the configuration space
/// is too large to enumerate (use [`crate::counting`] or [`crate::montecarlo`] instead).
pub fn enumerate_reliability<M: ProtocolModel + ?Sized>(
    model: &M,
    deployment: &Deployment,
) -> RawReliability {
    assert_eq!(
        model.num_nodes(),
        deployment.len(),
        "model and deployment disagree on the cluster size"
    );
    let n = deployment.len();
    let modes = active_modes(deployment.profiles());
    assert!(
        enumeration_supported(deployment.profiles()),
        "{}-mode enumeration limited to {} nodes, got {n}",
        modes.len(),
        if modes.len() == 3 {
            MAX_TERNARY_NODES
        } else {
            MAX_BINARY_NODES
        }
    );

    let mut p_safe = 0.0;
    let mut p_live = 0.0;
    let mut p_both = 0.0;
    let mut states = vec![NodeState::Correct; n];
    enumerate_recursive(
        model,
        deployment,
        &modes,
        &mut states,
        0,
        1.0,
        &mut p_safe,
        &mut p_live,
        &mut p_both,
    );
    RawReliability {
        p_safe,
        p_live,
        p_safe_and_live: p_both,
    }
    .clamped()
}

#[allow(clippy::too_many_arguments)]
fn enumerate_recursive<M: ProtocolModel + ?Sized>(
    model: &M,
    deployment: &Deployment,
    modes: &[NodeState],
    states: &mut Vec<NodeState>,
    node: usize,
    prefix_probability: f64,
    p_safe: &mut f64,
    p_live: &mut f64,
    p_both: &mut f64,
) {
    // Prune zero-probability branches early; they contribute nothing.
    if prefix_probability == 0.0 {
        return;
    }
    if node == states.len() {
        let config = FailureConfig::new(states.clone());
        let safe = model.is_safe(&config);
        let live = model.is_live(&config);
        if safe {
            *p_safe += prefix_probability;
        }
        if live {
            *p_live += prefix_probability;
        }
        if safe && live {
            *p_both += prefix_probability;
        }
        return;
    }
    let profile = deployment.profile(node);
    for &mode in modes {
        let p = profile.probability_of(mode);
        states[node] = mode;
        enumerate_recursive(
            model,
            deployment,
            modes,
            states,
            node + 1,
            prefix_probability * p,
            p_safe,
            p_live,
            p_both,
        );
    }
    states[node] = NodeState::Correct;
}

/// Enumerates every failure configuration (with non-zero probability mass structure
/// ignored) and returns those for which `predicate` holds, together with their
/// probabilities. Useful for debugging small models and for the tradeoff explorer's
/// "which configurations hurt us" reports.
pub fn configurations_where<M: ProtocolModel + ?Sized>(
    model: &M,
    deployment: &Deployment,
    predicate: impl Fn(&M, &FailureConfig) -> bool,
) -> Vec<(FailureConfig, f64)> {
    let n = deployment.len();
    assert!(n <= 16, "configuration listing limited to 16 nodes");
    let ternary = deployment.has_crash() && deployment.has_byzantine();
    let modes: Vec<NodeState> = if ternary {
        vec![NodeState::Correct, NodeState::Crashed, NodeState::Byzantine]
    } else if deployment.has_byzantine() {
        vec![NodeState::Correct, NodeState::Byzantine]
    } else {
        vec![NodeState::Correct, NodeState::Crashed]
    };
    let mut out = Vec::new();
    let mut indices = vec![0usize; n];
    loop {
        let states: Vec<NodeState> = indices.iter().map(|&i| modes[i]).collect();
        let config = FailureConfig::new(states);
        if predicate(model, &config) {
            let p = config.probability(deployment);
            out.push((config, p));
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == n {
                return out;
            }
            indices[pos] += 1;
            if indices[pos] < modes.len() {
                break;
            }
            indices[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pbft_model::PbftModel;
    use crate::raft_model::RaftModel;

    #[test]
    fn raft_three_nodes_one_percent_matches_paper() {
        let model = RaftModel::standard(3);
        let deployment = Deployment::uniform_crash(3, 0.01);
        let r = enumerate_reliability(&model, &deployment);
        // Safety is structural; liveness = P(at most 1 crash).
        assert!((r.p_safe - 1.0).abs() < 1e-12);
        let expected_live = 0.99f64.powi(3) + 3.0 * 0.01 * 0.99f64.powi(2);
        assert!((r.p_live - expected_live).abs() < 1e-12);
        assert!((r.p_safe_and_live - expected_live).abs() < 1e-12);
        // 99.97% as quoted in the paper.
        assert!((r.p_safe_and_live - 0.9997).abs() < 5e-5);
    }

    #[test]
    fn pbft_four_nodes_one_percent_matches_table1() {
        let model = PbftModel::standard(4);
        let deployment = Deployment::uniform_byzantine(4, 0.01);
        let r = enumerate_reliability(&model, &deployment);
        let p_at_most_one = 0.99f64.powi(4) + 4.0 * 0.01 * 0.99f64.powi(3);
        assert!((r.p_safe - p_at_most_one).abs() < 1e-12);
        assert!((r.p_live - p_at_most_one).abs() < 1e-12);
    }

    #[test]
    fn probabilities_are_consistent() {
        let model = PbftModel::standard(7);
        let deployment = Deployment::uniform_byzantine(7, 0.05);
        let r = enumerate_reliability(&model, &deployment);
        assert!(r.p_safe_and_live <= r.p_safe + 1e-12);
        assert!(r.p_safe_and_live <= r.p_live + 1e-12);
        assert!(r.p_safe <= 1.0 && r.p_live <= 1.0);
        assert!(r.p_safe_and_live >= r.p_safe + r.p_live - 1.0 - 1e-12);
    }

    #[test]
    fn ternary_enumeration_handles_mixed_deployments() {
        let model = PbftModel::standard(4);
        let deployment = Deployment::uniform_mixed(4, 0.04, 0.001);
        let r = enumerate_reliability(&model, &deployment);
        // Crashes cannot break PBFT safety, so safety only depends on Byzantine faults.
        let p_byz_at_most_1 = {
            let pb = 0.001f64;
            let keep = 1.0 - pb;
            keep.powi(4) + 4.0 * pb * keep.powi(3)
        };
        assert!((r.p_safe - p_byz_at_most_1).abs() < 1e-9, "{}", r.p_safe);
        assert!(r.p_live < r.p_safe);
    }

    #[test]
    fn heterogeneous_deployment_enumeration() {
        // Node 0 never fails; nodes 1 and 2 fail with certainty: Raft(3) loses liveness.
        let deployment = Deployment::from_profiles(vec![
            fault_model::mode::FaultProfile::crash_only(0.0),
            fault_model::mode::FaultProfile::crash_only(1.0),
            fault_model::mode::FaultProfile::crash_only(1.0),
        ]);
        let r = enumerate_reliability(&RaftModel::standard(3), &deployment);
        assert_eq!(r.p_live, 0.0);
        assert_eq!(r.p_safe, 1.0);
    }

    #[test]
    fn configurations_where_lists_unsafe_cases() {
        let model = PbftModel::standard(4);
        let deployment = Deployment::uniform_byzantine(4, 0.01);
        let unsafe_configs = configurations_where(&model, &deployment, |m, c| !m.is_safe(c));
        // Unsafe iff at least 2 Byzantine nodes: C(4,2)+C(4,3)+C(4,4) = 11 configurations.
        assert_eq!(unsafe_configs.len(), 11);
        let total: f64 = unsafe_configs.iter().map(|(_, p)| p).sum();
        let r = enumerate_reliability(&model, &deployment);
        assert!((total - (1.0 - r.p_safe)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "disagree on the cluster size")]
    fn size_mismatch_panics() {
        enumerate_reliability(&RaftModel::standard(3), &Deployment::uniform_crash(4, 0.01));
    }
}
