//! Committee selection under heterogeneous reliability (§4).
//!
//! "In deployments where nodes' reliability exceeds application requirements,
//! probabilistic protocols can sample committees, in particular, to select only the
//! reliable nodes." This module evaluates how reliable a committee-run protocol is, both
//! for explicitly chosen committees (the most reliable `k` nodes) and for randomly
//! sampled ones (Algorand-style sortition over a heterogeneous fleet).

use quorum::committee::{CommitteeSampler, CommitteeSpec};
use rand::Rng;

use crate::analyzer::{analyze, ReliabilityReport};
use crate::deployment::Deployment;
use crate::protocol::CountingModel;

/// Restricts a deployment to the given member indices (in the given order), producing the
/// sub-deployment the committee runs on.
pub fn sub_deployment(deployment: &Deployment, members: &[usize]) -> Deployment {
    assert!(!members.is_empty(), "committee must be non-empty");
    Deployment::from_profiles(
        members
            .iter()
            .map(|&i| {
                assert!(i < deployment.len(), "committee member {i} out of range");
                deployment.profile(i)
            })
            .collect(),
    )
}

/// Selects the `size` most reliable nodes as the committee.
pub fn most_reliable_committee(deployment: &Deployment, size: usize) -> Vec<usize> {
    assert!(size >= 1 && size <= deployment.len());
    deployment.nodes_by_reliability()[..size].to_vec()
}

/// Analyzes the protocol produced by `model_for(committee_size)` when run on the `size`
/// most reliable nodes of the deployment.
pub fn committee_reliability<M, F>(
    deployment: &Deployment,
    size: usize,
    model_for: F,
) -> ReliabilityReport
where
    M: CountingModel,
    F: Fn(usize) -> M,
{
    let committee = most_reliable_committee(deployment, size);
    let sub = sub_deployment(deployment, &committee);
    analyze(&model_for(size), &sub)
}

/// Compares running the protocol on the whole cluster against running it on a committee
/// of the most reliable nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommitteeComparison {
    /// Reliability when every node participates.
    pub full_cluster: ReliabilityReport,
    /// Reliability when only the committee participates.
    pub committee: ReliabilityReport,
    /// Committee size used.
    pub committee_size: usize,
    /// Message-complexity proxy: committee size over cluster size (quadratic protocols
    /// gain the square of this).
    pub participation_fraction: f64,
}

/// Runs the comparison for a committee of the `size` most reliable nodes.
pub fn committee_vs_full_cluster<M, F>(
    deployment: &Deployment,
    size: usize,
    model_for: F,
) -> CommitteeComparison
where
    M: CountingModel,
    F: Fn(usize) -> M,
{
    CommitteeComparison {
        full_cluster: analyze(&model_for(deployment.len()), deployment),
        committee: committee_reliability(deployment, size, &model_for),
        committee_size: size,
        participation_fraction: size as f64 / deployment.len() as f64,
    }
}

/// Estimates, by sampling committees and fault draws, the probability that a *randomly
/// sampled* committee of `spec.committee_size` nodes keeps the protocol safe and live.
///
/// Sampling is uniform when `reliability_weighted` is false and inversely proportional to
/// each node's fault probability when true (the probability-native refinement).
pub fn sampled_committee_reliability<M, F, R>(
    deployment: &Deployment,
    spec: CommitteeSpec,
    model_for: F,
    reliability_weighted: bool,
    rounds: usize,
    rng: &mut R,
) -> f64
where
    M: CountingModel,
    F: Fn(usize) -> M,
    R: Rng + ?Sized,
{
    assert!(rounds > 0);
    assert_eq!(spec.universe, deployment.len(), "spec/deployment mismatch");
    let sampler = CommitteeSampler::new(spec, rng.gen());
    let weights: Vec<f64> = deployment
        .profiles()
        .iter()
        .map(|p| 1.0 / (p.fault_probability() + 1e-6))
        .collect();
    let model = model_for(spec.committee_size);
    let mut ok = 0usize;
    for round in 0..rounds {
        let committee = if reliability_weighted {
            sampler.sample_weighted(round as u64, &weights)
        } else {
            sampler.sample_uniform(round as u64)
        };
        let members: Vec<usize> = committee.iter().collect();
        let sub = sub_deployment(deployment, &members);
        // Draw one fault configuration for the committee members and check the counts.
        let mut crashed = 0usize;
        let mut byz = 0usize;
        for profile in sub.profiles() {
            let u: f64 = rng.gen();
            if u < profile.byzantine_probability() {
                byz += 1;
            } else if u < profile.fault_probability() {
                crashed += 1;
            }
        }
        if model.is_safe_counts(crashed, byz) && model.is_live_counts(crashed, byz) {
            ok += 1;
        }
    }
    ok as f64 / rounds as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raft_model::RaftModel;
    use fault_model::mode::FaultProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn heterogeneous(n_reliable: usize, n_flaky: usize) -> Deployment {
        let mut profiles = vec![FaultProfile::crash_only(0.005); n_reliable];
        profiles.extend(vec![FaultProfile::crash_only(0.10); n_flaky]);
        Deployment::from_profiles(profiles)
    }

    #[test]
    fn sub_deployment_extracts_members() {
        let d = heterogeneous(2, 2);
        let sub = sub_deployment(&d, &[0, 3]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.profile(1).crash_probability(), 0.10);
    }

    #[test]
    fn most_reliable_committee_prefers_good_nodes() {
        let d = heterogeneous(3, 6);
        let committee = most_reliable_committee(&d, 3);
        assert_eq!(committee, vec![0, 1, 2]);
    }

    #[test]
    fn reliable_committee_beats_flaky_full_cluster() {
        // 3 reliable + 6 flaky nodes: a 3-node committee of reliable nodes is more
        // reliable than the 9-node cluster dominated by flaky nodes? Not necessarily —
        // but it must beat a 3-node committee of the *least* reliable nodes, and be
        // close to the full cluster while using a third of the machines.
        let d = heterogeneous(3, 6);
        let cmp = committee_vs_full_cluster(&d, 3, RaftModel::standard);
        let flaky_sub = sub_deployment(&d, &[6, 7, 8]);
        let flaky_report = analyze(&RaftModel::standard(3), &flaky_sub);
        assert!(
            cmp.committee.safe_and_live.probability() > flaky_report.safe_and_live.probability()
        );
        assert!((cmp.participation_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert!(cmp.committee.safe_and_live.probability() > 0.999);
    }

    #[test]
    fn sampled_committee_reliability_weighting_helps() {
        let d = heterogeneous(5, 15);
        let spec = CommitteeSpec::new(20, 5, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let uniform =
            sampled_committee_reliability(&d, spec, RaftModel::standard, false, 4_000, &mut rng);
        let weighted =
            sampled_committee_reliability(&d, spec, RaftModel::standard, true, 4_000, &mut rng);
        assert!(
            weighted >= uniform,
            "weighted {weighted} should beat uniform {uniform}"
        );
        assert!(weighted > 0.99);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sub_deployment_checks_indices() {
        sub_deployment(&heterogeneous(1, 1), &[5]);
    }
}
