//! Cost- and sustainability-aware deployment search.
//!
//! §1/§3.2: "one can run Raft on nine, less reliable nodes that suffer a 8% failure rate
//! and obtain the same 99.97% safety and liveness. If these resources are 10× cheaper
//! (e.g., spot instances, older hardware), this yields a 3× reduction in cost." This
//! module provides an instance catalogue, the deployment search that finds the cheapest
//! (or lowest-carbon) cluster meeting a reliability target, and the cost-equivalence
//! comparison behind the claim.

use fault_model::metrics::Nines;

use crate::analyzer::{analyze, ReliabilityReport};
use crate::deployment::Deployment;
use crate::protocol::CountingModel;

/// One procurable machine type.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceType {
    /// Human-readable name.
    pub name: String,
    /// Probability of failing over the mission window (annual, for the default window).
    pub fault_probability: f64,
    /// Price in dollars per node-hour.
    pub hourly_cost: f64,
    /// Carbon intensity in gCO2e per node-hour (embodied + operational).
    pub carbon_per_hour: f64,
}

impl InstanceType {
    /// Creates an instance type.
    pub fn new(
        name: impl Into<String>,
        fault_probability: f64,
        hourly_cost: f64,
        carbon_per_hour: f64,
    ) -> Self {
        assert!((0.0..1.0).contains(&fault_probability));
        assert!(hourly_cost >= 0.0 && carbon_per_hour >= 0.0);
        Self {
            name: name.into(),
            fault_probability,
            hourly_cost,
            carbon_per_hour,
        }
    }
}

/// The default catalogue used by the examples and the `repro` harness: a reliable
/// on-demand machine, a spot instance ten times cheaper but failing at 8%/year (the
/// paper's example), and reused, aged hardware with a lower carbon footprint.
pub fn default_catalogue() -> Vec<InstanceType> {
    vec![
        InstanceType::new("on-demand", 0.01, 1.00, 120.0),
        InstanceType::new("spot", 0.08, 0.10, 120.0),
        InstanceType::new("aged-reuse", 0.04, 0.25, 40.0),
    ]
}

/// A candidate deployment: `n` nodes of a single instance type, with its analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentOption {
    /// The instance type used for every node.
    pub instance: InstanceType,
    /// Cluster size.
    pub n: usize,
    /// Reliability of the candidate.
    pub report: ReliabilityReport,
    /// Total cost in dollars per hour.
    pub hourly_cost: f64,
    /// Total carbon in gCO2e per hour.
    pub carbon_per_hour: f64,
}

/// Objective to minimize when searching deployments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimize dollars per hour.
    Cost,
    /// Minimize gCO2e per hour.
    Carbon,
}

/// Enumerates homogeneous deployments (one instance type, odd sizes up to `max_n`),
/// keeping those whose safe-and-live probability reaches `target_nines`.
///
/// `model_for` maps a cluster size to the protocol model to analyze (e.g.
/// `RaftModel::standard`).
pub fn feasible_deployments<M, F>(
    catalogue: &[InstanceType],
    max_n: usize,
    target_nines: f64,
    model_for: F,
) -> Vec<DeploymentOption>
where
    M: CountingModel,
    F: Fn(usize) -> M,
{
    assert!(max_n >= 1);
    let mut options = Vec::new();
    for instance in catalogue {
        for n in (1..=max_n).filter(|n| n % 2 == 1) {
            let deployment = Deployment::uniform_crash(n, instance.fault_probability);
            let model = model_for(n);
            let report = analyze(&model, &deployment);
            if report.safe_and_live.meets(target_nines) {
                options.push(DeploymentOption {
                    instance: instance.clone(),
                    n,
                    report,
                    hourly_cost: instance.hourly_cost * n as f64,
                    carbon_per_hour: instance.carbon_per_hour * n as f64,
                });
            }
        }
    }
    options
}

/// Picks the best feasible deployment under an objective, or `None` if nothing meets the
/// target within `max_n` nodes.
pub fn cheapest_deployment<M, F>(
    catalogue: &[InstanceType],
    max_n: usize,
    target_nines: f64,
    objective: Objective,
    model_for: F,
) -> Option<DeploymentOption>
where
    M: CountingModel,
    F: Fn(usize) -> M,
{
    let mut options = feasible_deployments(catalogue, max_n, target_nines, model_for);
    options.sort_by(|a, b| {
        let key = |o: &DeploymentOption| match objective {
            Objective::Cost => o.hourly_cost,
            Objective::Carbon => o.carbon_per_hour,
        };
        key(a).partial_cmp(&key(b)).unwrap().then(a.n.cmp(&b.n))
    });
    options.into_iter().next()
}

/// The paper's cost-equivalence comparison: two deployments delivering (at least) the
/// same nines, with their price ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct CostEquivalence {
    /// The expensive baseline (e.g. 3 on-demand nodes at 1%).
    pub baseline: DeploymentOption,
    /// The cheap alternative (e.g. 9 spot nodes at 8%).
    pub alternative: DeploymentOption,
}

impl CostEquivalence {
    /// Ratio of baseline cost to alternative cost (>1 means the alternative is cheaper).
    pub fn cost_reduction_factor(&self) -> f64 {
        self.baseline.hourly_cost / self.alternative.hourly_cost
    }

    /// Difference in safe-and-live nines (alternative − baseline).
    pub fn nines_difference(&self) -> f64 {
        self.alternative.report.safe_and_live.nines() - self.baseline.report.safe_and_live.nines()
    }

    /// Whether the alternative matches the baseline's reliability to within `tol` nines.
    pub fn reliability_matches(&self, tol: f64) -> bool {
        self.nines_difference() >= -tol
    }
}

/// Builds the paper's "3 reliable nodes vs 9 spot nodes" comparison for a given protocol
/// family.
pub fn cost_equivalence<M, F>(
    reliable: &InstanceType,
    cheap: &InstanceType,
    baseline_n: usize,
    alternative_n: usize,
    model_for: F,
) -> CostEquivalence
where
    M: CountingModel,
    F: Fn(usize) -> M,
{
    let make = |instance: &InstanceType, n: usize| {
        let deployment = Deployment::uniform_crash(n, instance.fault_probability);
        let report = analyze(&model_for(n), &deployment);
        DeploymentOption {
            instance: instance.clone(),
            n,
            report,
            hourly_cost: instance.hourly_cost * n as f64,
            carbon_per_hour: instance.carbon_per_hour * n as f64,
        }
    };
    CostEquivalence {
        baseline: make(reliable, baseline_n),
        alternative: make(cheap, alternative_n),
    }
}

/// Convenience: the reliability of a homogeneous deployment as plain nines, used by the
/// search examples.
pub fn homogeneous_nines<M: CountingModel>(model: &M, p: f64) -> Nines {
    let deployment = Deployment::uniform_crash(model.num_nodes(), p);
    analyze(model, &deployment).safe_and_live
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raft_model::RaftModel;

    #[test]
    fn paper_cost_claim_three_reliable_vs_nine_spot() {
        let catalogue = default_catalogue();
        let eq = cost_equivalence(&catalogue[0], &catalogue[1], 3, 9, RaftModel::standard);
        // Same reliability (99.97% both, to the paper's two-decimal precision),
        // ~3.3x cheaper with 10x cheaper nodes.
        assert!(eq.reliability_matches(0.05));
        assert!(
            eq.cost_reduction_factor() > 3.0,
            "cost reduction {}",
            eq.cost_reduction_factor()
        );
        assert!((eq.baseline.report.safe_and_live.probability() - 0.9997).abs() < 5e-5);
        assert!((eq.alternative.report.safe_and_live.probability() - 0.9997).abs() < 5e-5);
    }

    #[test]
    fn cheapest_deployment_prefers_spot_when_target_is_modest() {
        let best = cheapest_deployment(
            &default_catalogue(),
            11,
            3.0,
            Objective::Cost,
            RaftModel::standard,
        )
        .expect("a feasible deployment exists");
        assert_eq!(best.instance.name, "spot");
        assert!(
            best.hourly_cost < 1.0,
            "cheaper than a single on-demand node"
        );
        assert!(best.report.safe_and_live.meets(3.0));
    }

    #[test]
    fn carbon_objective_prefers_aged_hardware() {
        let best = cheapest_deployment(
            &default_catalogue(),
            11,
            3.0,
            Objective::Carbon,
            RaftModel::standard,
        )
        .unwrap();
        assert_eq!(best.instance.name, "aged-reuse");
    }

    #[test]
    fn unreachable_targets_return_none() {
        let none = cheapest_deployment(
            &default_catalogue(),
            3,
            12.0,
            Objective::Cost,
            RaftModel::standard,
        );
        assert!(none.is_none());
    }

    #[test]
    fn feasible_deployments_all_meet_target() {
        let options = feasible_deployments(&default_catalogue(), 9, 4.0, RaftModel::standard);
        assert!(!options.is_empty());
        assert!(options.iter().all(|o| o.report.safe_and_live.meets(4.0)));
        assert!(options.iter().all(|o| o.n % 2 == 1));
    }

    #[test]
    fn homogeneous_nines_matches_table() {
        let n = homogeneous_nines(&RaftModel::standard(3), 0.01);
        assert!((n.probability() - 0.999702).abs() < 1e-6);
    }
}
