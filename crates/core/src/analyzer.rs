//! The analysis front-end: pick an engine, return a report in "nines".
//!
//! [`analyze_auto`] is the single front door: it routes the model/scenario/budget
//! triple through the [`crate::engine`] auto-selector (exact counting when possible,
//! enumeration for small non-counting models, parallel Monte Carlo otherwise) and tags
//! the result with the engine that produced it. The explicit entry points [`analyze`]
//! (counting) and [`analyze_exact`] (enumeration) remain for callers that need to pin
//! an engine deliberately — e.g. cross-engine agreement tests.

use fault_model::metrics::Nines;

use crate::counting::counting_reliability;
use crate::deployment::Deployment;
use crate::engine::{select_engine, AnalysisOutcome, Budget, EngineChoice, Scenario};
use crate::enumeration::{enumerate_reliability, RawReliability};
use crate::protocol::{CountingModel, ProtocolModel};

/// Probabilistic safety and liveness guarantees of one protocol on one deployment — the
/// shape of guarantee the paper argues consensus should report (e.g. "Raft with N = 3 is
/// only 99.97% safe and live at p_u = 1%").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityReport {
    /// Probability that the deployment is safe over the mission window.
    pub safe: Nines,
    /// Probability that the deployment is live over the mission window.
    pub live: Nines,
    /// Probability that the deployment is both safe and live.
    pub safe_and_live: Nines,
}

impl ReliabilityReport {
    /// Wraps raw probabilities.
    pub fn from_raw(raw: RawReliability) -> Self {
        let raw = raw.clamped();
        Self {
            safe: Nines::from_probability(raw.p_safe),
            live: Nines::from_probability(raw.p_live),
            safe_and_live: Nines::from_probability(raw.p_safe_and_live),
        }
    }

    /// The probability of a safety violation (complement of safety).
    pub fn unsafety(&self) -> f64 {
        self.safe.complement()
    }

    /// The probability of losing liveness (complement of liveness).
    pub fn unliveness(&self) -> f64 {
        self.live.complement()
    }

    /// Whether both guarantees meet a target expressed in nines.
    pub fn meets(&self, target_nines: f64) -> bool {
        self.safe_and_live.meets(target_nines)
    }
}

impl std::fmt::Display for ReliabilityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "safe {} | live {} | safe&live {}",
            self.safe, self.live, self.safe_and_live
        )
    }
}

/// Analyzes `model` on an independent `deployment`, automatically selecting the right
/// engine within `budget` — the single front door of the analysis layer.
///
/// Selection follows the structure of the problem: exact counting for counting models,
/// exhaustive enumeration for small non-counting models, parallel Monte Carlo for
/// everything else. The outcome says which engine ran and, for sampling, carries the
/// confidence intervals.
///
/// ```
/// use prob_consensus::analyzer::analyze_auto;
/// use prob_consensus::engine::{Budget, EngineChoice};
/// use prob_consensus::deployment::Deployment;
/// use prob_consensus::raft_model::RaftModel;
///
/// let deployment = Deployment::uniform_crash(3, 0.01);
/// let outcome = analyze_auto(&RaftModel::standard(3), &deployment, &Budget::default());
/// assert_eq!(outcome.engine, EngineChoice::Counting);
/// assert_eq!(outcome.report.safe_and_live.as_percent(), "99.97%");
/// ```
pub fn analyze_auto(
    model: &dyn ProtocolModel,
    deployment: &Deployment,
    budget: &Budget,
) -> AnalysisOutcome {
    // A one-line wrapper over a single-cell query: the sweep-native front door
    // ([`crate::query`]) runs this exact code path per cell, which is what makes a
    // planned sweep bit-identical to a hand-rolled per-cell loop.
    crate::query::analyze_single(model, Scenario::Independent(deployment), budget)
}

/// Why an analysis request cannot be answered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnalysisError {
    /// The scenario covers zero nodes. A reliability statement about an empty
    /// deployment is vacuous — neither "100% safe" nor "0% safe" is meaningful — so
    /// the front door refuses instead of answering silently.
    EmptyScenario,
    /// The protocol model and the scenario disagree on the cluster size.
    SizeMismatch {
        /// Nodes the protocol model is configured for.
        model_nodes: usize,
        /// Nodes the scenario covers.
        scenario_nodes: usize,
    },
    /// The budget's sampling knobs are malformed (NaN tilt, zero ESS floor,
    /// threshold outside `(0, 1)` — see [`Budget::validate`]); rejected when a
    /// query is planned, instead of silently poisoning the estimators.
    InvalidBudget(crate::engine::InvalidBudget),
    /// A trajectory cell ([`crate::query::Query::trajectory_cell`]) was given a
    /// model without a counting view: sweeping a guarantee over mission windows
    /// re-analyzes the fleet at every step, which is only tractable through the
    /// O(N³) counting engine. Placement-sensitive models stay steady-state-only.
    TrajectoryNotCounting,
    /// The query's [`TimeAxis`](crate::query::TimeAxis) is malformed (non-finite
    /// or negative horizon, non-positive step or window, NaN target). The
    /// constructor asserts these, but the axis fields are public — a
    /// struct-literal axis with a zero step would otherwise make the trajectory
    /// sampler unbounded — so planning re-checks them.
    InvalidTimeAxis,
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::EmptyScenario => {
                write!(f, "cannot analyze an empty scenario (zero nodes)")
            }
            AnalysisError::SizeMismatch {
                model_nodes,
                scenario_nodes,
            } => write!(
                f,
                "model covers {model_nodes} nodes but the scenario covers {scenario_nodes}"
            ),
            AnalysisError::InvalidBudget(invalid) => write!(f, "invalid budget: {invalid}"),
            AnalysisError::TrajectoryNotCounting => write!(
                f,
                "trajectory cells require a counting model (fault-count predicates)"
            ),
            AnalysisError::InvalidTimeAxis => write!(
                f,
                "time axis must have a finite non-negative horizon and finite \
                 positive step/window"
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Analyzes `model` on an arbitrary [`Scenario`] (independent or correlated),
/// automatically selecting the engine within `budget`.
///
/// Unlike [`analyze_auto`] — whose [`Deployment`] argument is non-empty by
/// construction — a [`Scenario`] can wrap a correlation model over zero nodes, so
/// this front door is fallible: an empty scenario or a model/scenario size mismatch
/// yields a clear [`AnalysisError`] instead of a deep panic or a vacuous report.
pub fn analyze_scenario(
    model: &dyn ProtocolModel,
    scenario: Scenario<'_>,
    budget: &Budget,
) -> Result<AnalysisOutcome, AnalysisError> {
    if scenario.is_empty() {
        return Err(AnalysisError::EmptyScenario);
    }
    if model.num_nodes() != scenario.len() {
        return Err(AnalysisError::SizeMismatch {
            model_nodes: model.num_nodes(),
            scenario_nodes: scenario.len(),
        });
    }
    Ok(crate::query::analyze_single(model, scenario, budget))
}

/// The engine [`analyze_auto`] would run for this triple, without running it.
pub fn chosen_engine(
    model: &dyn ProtocolModel,
    scenario: Scenario<'_>,
    budget: &Budget,
) -> EngineChoice {
    select_engine(model, scenario, budget)
}

/// Analyzes a counting model with the exact O(N³) fault-count engine.
///
/// Explicit-engine entry point; prefer [`analyze_auto`], which selects this engine on
/// its own whenever it applies.
pub fn analyze<M: CountingModel + ?Sized>(model: &M, deployment: &Deployment) -> ReliabilityReport {
    ReliabilityReport::from_raw(counting_reliability(model, deployment))
}

/// Analyzes an arbitrary (possibly non-counting) model by exhaustive enumeration of
/// failure configurations. Exponential in the cluster size; intended for N ≲ 20.
///
/// Explicit-engine entry point; prefer [`analyze_auto`], which falls back to
/// enumeration only when it is the right tool.
pub fn analyze_exact<M: ProtocolModel + ?Sized>(
    model: &M,
    deployment: &Deployment,
) -> ReliabilityReport {
    ReliabilityReport::from_raw(enumerate_reliability(model, deployment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pbft_model::PbftModel;
    use crate::raft_model::RaftModel;

    /// Asserts that a computed probability matches a percentage exactly as printed in the
    /// paper, to within one unit in the paper's last printed digit (the paper's tables
    /// mix rounding and truncation, so exact string equality is not meaningful).
    fn assert_matches_paper_percent(probability: f64, paper: &str, context: &str) {
        let decimals = paper.split('.').nth(1).map_or(0, str::len);
        let unit = 10f64.powi(-(decimals as i32)) / 100.0;
        let expected: f64 = paper.parse::<f64>().unwrap() / 100.0;
        assert!(
            (probability - expected).abs() <= unit,
            "{context}: computed {probability} vs paper {paper}% (tolerance {unit})"
        );
    }

    /// Table 2 of the paper: Raft "Safe & Live" percentages for uniform p_u.
    #[test]
    fn table2_raft_reliability_matches_paper() {
        let expected: &[(usize, f64, &str)] = &[
            (3, 0.01, "99.97"),
            (3, 0.02, "99.88"),
            (3, 0.04, "99.53"),
            (3, 0.08, "98.18"),
            (5, 0.01, "99.9990"),
            (5, 0.02, "99.992"),
            (5, 0.04, "99.94"),
            (5, 0.08, "99.55"),
            (7, 0.01, "99.99997"),
            (7, 0.02, "99.9995"),
            (7, 0.04, "99.992"),
            (7, 0.08, "99.88"),
            (9, 0.01, "99.999998"),
            (9, 0.02, "99.99996"),
            (9, 0.04, "99.9988"),
            (9, 0.08, "99.97"),
        ];
        for &(n, p, paper) in expected {
            let report = analyze(&RaftModel::standard(n), &Deployment::uniform_crash(n, p));
            assert_matches_paper_percent(
                report.safe_and_live.probability(),
                paper,
                &format!("Raft N={n}, p={p}"),
            );
            // Safety is structural for standard Raft under crash faults.
            assert!(report.safe.probability() > 1.0 - 1e-12);
        }
    }

    /// Table 1 of the paper: PBFT safety/liveness percentages at p_u = 1%.
    #[test]
    fn table1_pbft_reliability_matches_paper() {
        let expected: &[(usize, &str, &str)] = &[
            (4, "99.94", "99.94"),
            (5, "99.9990", "99.90"),
            (7, "99.997", "99.997"),
            (8, "99.99993", "99.995"),
        ];
        for &(n, safe, live) in expected {
            let report = analyze(
                &PbftModel::standard(n),
                &Deployment::uniform_byzantine(n, 0.01),
            );
            assert_matches_paper_percent(
                report.safe.probability(),
                safe,
                &format!("PBFT N={n} safety"),
            );
            assert_matches_paper_percent(
                report.live.probability(),
                live,
                &format!("PBFT N={n} liveness"),
            );
            assert_matches_paper_percent(
                report.safe_and_live.probability(),
                live,
                &format!("PBFT N={n} safe&live"),
            );
        }
    }

    /// §3.2: "a three-node Raft cluster (p_u = 1%) has equal safety/liveness probability
    /// as a nine node cluster with p_u = 8%".
    #[test]
    fn nine_cheap_nodes_match_three_reliable_nodes() {
        let three = analyze(&RaftModel::standard(3), &Deployment::uniform_crash(3, 0.01));
        let nine = analyze(&RaftModel::standard(9), &Deployment::uniform_crash(9, 0.08));
        assert_eq!(three.safe_and_live.as_percent(), "99.97%");
        assert_eq!(nine.safe_and_live.as_percent(), "99.97%");
    }

    #[test]
    fn exact_and_counting_engines_agree() {
        let model = PbftModel::standard(5);
        let deployment = Deployment::uniform_byzantine(5, 0.03);
        let a = analyze(&model, &deployment);
        let b = analyze_exact(&model, &deployment);
        assert!((a.safe.probability() - b.safe.probability()).abs() < 1e-12);
        assert!((a.live.probability() - b.live.probability()).abs() < 1e-12);
    }

    #[test]
    fn empty_scenario_yields_a_clear_error() {
        use fault_model::correlation::CorrelationModel;
        // An empty correlation model is the one way a zero-node scenario can reach
        // the analyzer (Deployment rejects zero nodes at construction).
        let empty = CorrelationModel::independent(Vec::new());
        let model = RaftModel::standard(3);
        let err = analyze_scenario(&model, (&empty).into(), &crate::engine::Budget::default())
            .expect_err("empty scenario must not produce a report");
        // A 3-node model over a 0-node scenario is first and foremost empty.
        assert_eq!(err, AnalysisError::EmptyScenario);
        assert!(err.to_string().contains("empty scenario"));
    }

    #[test]
    fn size_mismatch_yields_a_clear_error() {
        use fault_model::correlation::CorrelationModel;
        use fault_model::mode::FaultProfile;
        let four = CorrelationModel::independent(vec![FaultProfile::crash_only(0.1); 4]);
        let model = RaftModel::standard(3);
        let err = analyze_scenario(&model, (&four).into(), &crate::engine::Budget::default())
            .expect_err("size mismatch must not produce a report");
        assert_eq!(
            err,
            AnalysisError::SizeMismatch {
                model_nodes: 3,
                scenario_nodes: 4
            }
        );
        assert!(err.to_string().contains("3 nodes"));
    }

    #[test]
    fn analyze_scenario_agrees_with_analyze_auto_on_well_formed_input() {
        let model = RaftModel::standard(5);
        let deployment = Deployment::uniform_crash(5, 0.02);
        let budget = crate::engine::Budget::default();
        let auto = analyze_auto(&model, &deployment, &budget);
        let scenario = analyze_scenario(&model, (&deployment).into(), &budget)
            .expect("well-formed scenario analyzes");
        assert_eq!(auto.report, scenario.report);
        assert_eq!(auto.engine, scenario.engine);
    }

    #[test]
    fn meets_holds_at_exact_nines_boundaries() {
        // Regression: `meets` compared nines with a strict float `>=` and exact
        // boundaries like 0.999-vs-3-nines failed by a few ulps (1 - 10^-k is not
        // representable). The comparison is now log-space with a tolerance.
        let exactly_three = ReliabilityReport::from_raw(crate::enumeration::RawReliability {
            p_safe: 1.0,
            p_live: 0.999,
            p_safe_and_live: 0.999,
        });
        assert!(exactly_three.meets(3.0));
        assert!(!exactly_three.meets(3.001));
        let exactly_five = ReliabilityReport::from_raw(crate::enumeration::RawReliability {
            p_safe: 0.99999,
            p_live: 0.99999,
            p_safe_and_live: 0.99999,
        });
        assert!(exactly_five.meets(5.0));
        assert!(!exactly_five.meets(5.1));
    }

    #[test]
    fn report_accessors() {
        let report = analyze(&RaftModel::standard(3), &Deployment::uniform_crash(3, 0.01));
        assert!(report.unsafety() < 1e-12);
        assert!((report.unliveness() - 2.98e-4).abs() < 5e-6);
        assert!(report.meets(3.0));
        assert!(!report.meets(4.0));
        assert!(format!("{report}").contains("safe&live"));
    }
}
