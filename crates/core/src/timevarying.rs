//! Time-varying guarantees from fault curves (§2: "fault likelihood evolves over time").
//!
//! Evaluating a fleet's fault curves at successive ages turns the static analysis into a
//! guarantee *trajectory*: how many nines the deployment offers this quarter, next
//! quarter, after the hardware enters wear-out, or during a rollout window. The
//! trajectory drives preemptive reconfiguration (§4): replace nodes *before* the
//! deployment's guarantee dips below the target.

use fault_model::node::Fleet;

use crate::analyzer::{analyze, ReliabilityReport};
use crate::deployment::Deployment;
use crate::protocol::CountingModel;

/// The deployment's guarantee evaluated at one point in time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimePoint {
    /// Hours from now at which the mission window starts.
    pub at_hours: f64,
    /// The guarantee over `[at_hours, at_hours + window]`.
    pub report: ReliabilityReport,
}

/// Evaluates the guarantee of `model` over a sliding mission window of `window_hours`,
/// starting every `step_hours` from now up to `horizon_hours`.
///
/// The trajectory is never empty: the first point is always `t = 0` (the current
/// guarantee), so boundary queries like [`first_time_below_target`] can report a
/// fleet that is *already* below target as dipping at time zero.
pub fn reliability_trajectory<M: CountingModel + ?Sized>(
    model: &M,
    fleet: &Fleet,
    window_hours: f64,
    horizon_hours: f64,
    step_hours: f64,
) -> Vec<TimePoint> {
    assert!(window_hours > 0.0 && step_hours > 0.0 && horizon_hours >= 0.0);
    assert_eq!(model.num_nodes(), fleet.len(), "model/fleet size mismatch");
    let mut points = Vec::new();
    // Sample at i·step (not by accumulating t += step): float drift would
    // otherwise silently drop the horizon sample when horizon/step is a whole
    // number that is not exactly representable (e.g. step = 0.1).
    let steps = (horizon_hours / step_hours * (1.0 + 1e-12)).floor() as usize;
    for i in 0..=steps {
        let t = i as f64 * step_hours;
        let profiles = fleet
            .iter()
            .map(|node| {
                // Shift each node's age by t and evaluate its window profile.
                let mut shifted = node.clone();
                shifted.age_hours += t;
                shifted.profile(window_hours)
            })
            .collect();
        let deployment = Deployment::from_profiles(profiles);
        points.push(TimePoint {
            at_hours: t,
            report: analyze(model, &deployment),
        });
    }
    points
}

/// The first time (hours from now) at which the safe-and-live guarantee drops below
/// `target_nines`, if it does within the trajectory — the moment preemptive
/// reconfiguration should have happened by.
///
/// Boundary semantics, pinned by regression tests: a trajectory that *starts*
/// below the target returns the first sample time (`Some(0.0)` for trajectories
/// from [`reliability_trajectory`], whose first point is always `t = 0`) — not
/// `None`, which is reserved for "the target held throughout" (including the
/// vacuous empty trajectory).
pub fn first_time_below_target(trajectory: &[TimePoint], target_nines: f64) -> Option<f64> {
    trajectory
        .iter()
        .find(|p| !p.report.safe_and_live.meets(target_nines))
        .map(|p| p.at_hours)
}

/// Summary of a trajectory: the worst point and whether the target held throughout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectorySummary {
    /// The minimum safe-and-live probability along the trajectory.
    pub worst_probability: f64,
    /// The time (hours from now) at which that minimum occurs.
    pub worst_at_hours: f64,
    /// Whether every point met the target.
    pub target_held: bool,
}

/// Summarizes a trajectory against a target. Returns `None` for an empty
/// trajectory — there is no worst point to report — instead of panicking, so
/// callers that compute trajectories from external inputs can surface "nothing to
/// summarize" as a value.
///
/// NaN probabilities cannot occur inside a trajectory: every [`TimePoint`] carries
/// a [`ReliabilityReport`] whose probabilities are [`fault_model::metrics::Nines`]
/// values, and `Nines::from_probability` rejects anything outside `[0, 1]` (NaN
/// included) at construction — covered by tests here.
pub fn summarize(trajectory: &[TimePoint], target_nines: f64) -> Option<TrajectorySummary> {
    let mut points = trajectory.iter();
    let mut worst = points.next()?;
    for p in points {
        if p.report.safe_and_live.probability() < worst.report.safe_and_live.probability() {
            worst = p;
        }
    }
    Some(TrajectorySummary {
        worst_probability: worst.report.safe_and_live.probability(),
        worst_at_hours: worst.at_hours,
        target_held: first_time_below_target(trajectory, target_nines).is_none(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raft_model::RaftModel;
    use fault_model::curve::{StepCurve, WeibullCurve};
    use fault_model::metrics::HOURS_PER_YEAR;
    use fault_model::node::NodeSpec;
    use std::sync::Arc;

    fn wearout_fleet(n: usize) -> Fleet {
        (0..n)
            .map(|i| {
                NodeSpec::with_constant_crash(i, 0.0, HOURS_PER_YEAR)
                    .with_crash_curve(Arc::new(WeibullCurve::new(3.0, 70_000.0)))
                    .with_age(10_000.0)
            })
            .collect()
    }

    #[test]
    fn wearout_degrades_the_guarantee_over_time() {
        let fleet = wearout_fleet(5);
        let traj = reliability_trajectory(
            &RaftModel::standard(5),
            &fleet,
            HOURS_PER_YEAR / 4.0,
            6.0 * HOURS_PER_YEAR,
            HOURS_PER_YEAR,
        );
        assert!(traj.len() >= 6);
        let first = traj.first().unwrap().report.safe_and_live.probability();
        let last = traj.last().unwrap().report.safe_and_live.probability();
        assert!(last < first, "guarantee should degrade: {first} -> {last}");
        let summary = summarize(&traj, 3.0).expect("non-empty trajectory");
        assert!((summary.worst_probability - last).abs() < 1e-12);
        assert!(summary.worst_at_hours > 0.0);
    }

    #[test]
    fn first_time_below_target_detects_the_dip() {
        let fleet = wearout_fleet(3);
        let traj = reliability_trajectory(
            &RaftModel::standard(3),
            &fleet,
            HOURS_PER_YEAR,
            8.0 * HOURS_PER_YEAR,
            HOURS_PER_YEAR / 2.0,
        );
        // A 3-node cluster on aging hardware eventually drops below four nines.
        let dip = first_time_below_target(&traj, 4.0);
        assert!(dip.is_some());
        let summary = summarize(&traj, 4.0).expect("non-empty trajectory");
        assert!(!summary.target_held);
    }

    #[test]
    fn rollout_windows_show_as_transient_dips() {
        // Nodes with a baseline hazard plus a correlated rollout spike 1000h from now.
        let fleet: Fleet = (0..3)
            .map(|i| {
                NodeSpec::with_constant_crash(i, 0.0, HOURS_PER_YEAR).with_crash_curve(Arc::new(
                    StepCurve::new(1e-6).with_spike(1_000.0, 1_200.0, 5e-4),
                ))
            })
            .collect();
        let traj = reliability_trajectory(&RaftModel::standard(3), &fleet, 200.0, 2_000.0, 200.0);
        let during: Vec<&TimePoint> = traj
            .iter()
            .filter(|p| p.at_hours >= 1_000.0 && p.at_hours < 1_200.0)
            .collect();
        let before: Vec<&TimePoint> = traj.iter().filter(|p| p.at_hours < 1_000.0).collect();
        let worst_during = during
            .iter()
            .map(|p| p.report.safe_and_live.probability())
            .fold(1.0, f64::min);
        let worst_before = before
            .iter()
            .map(|p| p.report.safe_and_live.probability())
            .fold(1.0, f64::min);
        assert!(worst_during < worst_before);
    }

    #[test]
    fn stable_fleets_hold_their_target() {
        let fleet = Fleet::homogeneous_crash(5, 0.01);
        let traj = reliability_trajectory(
            &RaftModel::standard(5),
            &fleet,
            HOURS_PER_YEAR,
            2.0 * HOURS_PER_YEAR,
            HOURS_PER_YEAR / 2.0,
        );
        assert!(summarize(&traj, 4.0).expect("non-empty").target_held);
        assert!(first_time_below_target(&traj, 4.0).is_none());
    }

    #[test]
    fn trajectory_starting_below_target_dips_at_the_first_sample_time() {
        // Boundary regression: a fleet that is *already* below target must report
        // the first sample time (t = 0), not None — None means "target held".
        let fleet = Fleet::homogeneous_crash(3, 0.2);
        let traj = reliability_trajectory(
            &RaftModel::standard(3),
            &fleet,
            HOURS_PER_YEAR,
            2.0 * HOURS_PER_YEAR,
            HOURS_PER_YEAR,
        );
        let p0 = traj[0].report.safe_and_live.probability();
        assert!(p0 < 0.999, "the fixture must start below three nines: {p0}");
        assert_eq!(first_time_below_target(&traj, 3.0), Some(0.0));
        let summary = summarize(&traj, 3.0).expect("non-empty trajectory");
        assert!(!summary.target_held);
        // The same trajectory against an already-met target keeps the None = held
        // reading.
        assert_eq!(first_time_below_target(&traj, 0.5), None);
        assert!(summarize(&traj, 0.5).expect("non-empty").target_held);
    }

    #[test]
    fn works_through_a_dyn_counting_model() {
        // The query layer stores models as trait objects; the trajectory helpers
        // must accept unsized models.
        let fleet = Fleet::homogeneous_crash(3, 0.05);
        let model = RaftModel::standard(3);
        let dynamic: &dyn crate::protocol::CountingModel = &model;
        let traj = reliability_trajectory(dynamic, &fleet, 100.0, 200.0, 100.0);
        assert_eq!(traj.len(), 3);
    }

    #[test]
    fn empty_trajectory_summarizes_to_none_and_holds_any_target() {
        assert_eq!(summarize(&[], 3.0), None);
        assert_eq!(first_time_below_target(&[], 3.0), None);
    }

    #[test]
    #[should_panic(expected = "probability must be in [0,1]")]
    fn nan_probabilities_cannot_enter_a_trajectory() {
        // TimePoint probabilities are Nines values, which reject NaN at
        // construction — the reason summarize never has to define NaN ordering.
        let _ = fault_model::metrics::Nines::from_probability(f64::NAN);
    }
}
