//! The concurrent cross-request session cache.
//!
//! An [`AnalysisSession`](crate::query::AnalysisSession) amortizes per-cell setup —
//! scenario conversion, packed-kernel compilation, selector pilots, learned
//! importance-sampling proposals — by keying reusable
//! [`GroupScratch`](crate::query) off the *cell signature*: a content fingerprint
//! of the (model, scenario) pair. Before the service layer existed, one plan at a
//! time touched that map and a plain `Mutex<HashMap>` with clear-on-cap was
//! enough. A long-running `repro serve` process executes many plans concurrently,
//! so the map here is a real cache:
//!
//! * **Sharded.** Keys hash to one of up to `SessionCache::MAX_SHARDS` (16)
//!   independently locked shards, so simultaneous `plan`/`execute` calls from many
//!   requests contend only when they touch the same shard, not on one global lock.
//! * **Size-bounded with LRU eviction.** Each shard holds at most
//!   `capacity / shards` entries; inserting past the bound evicts that shard's
//!   least-recently-used entry (a per-shard clock stamps every touch). Scratch is
//!   a pure cache — everything in it is a deterministic function of the key — so
//!   eviction can never change results, only cost recomputation. Plans in flight
//!   hold their own `Arc`s, so evicting an entry never invalidates planned work.
//! * **Observable.** Hit / miss / eviction counters ([`CacheStats`]) are the
//!   service's first observability hook, exposed through the server protocol's
//!   `stats` request and [`AnalysisSession::cache_stats`](crate::query::AnalysisSession::cache_stats).
//!
//! # Key construction and collision safety
//!
//! A `CacheKey` is a flat word vector, compared in full — the map never equates
//! two keys whose contents differ, so *distinct models can never share scratch*
//! (pinned by tests). Grid cells encode their axis coordinates (protocol spec,
//! cluster size, fault-probability bits, fault axis, correlation variant).
//! Explicit cells encode the model's
//! [`cache_signature`](crate::protocol::ProtocolModel::cache_signature) (a
//! length-prefixed content fingerprint) followed by the full scenario content:
//! every per-node profile's probability bits plus every correlation group's
//! members, shock-probability bits and shock mode. Models without a stable
//! signature (`cache_signature() == None`) fall back to plan-local scratch —
//! correctness never depends on a model opting in.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::query::GroupScratch;

/// A point-in-time snapshot of the cache counters, the service layer's first
/// observability surface (rendered by the server protocol's `stats` request).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an existing scratch group.
    pub hits: u64,
    /// Lookups that inserted a fresh scratch group.
    pub misses: u64,
    /// Entries dropped to keep a shard within its capacity bound.
    pub evictions: u64,
    /// Scratch groups currently resident across all shards.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups so far (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The structural identity of a cell's (model, scenario) pair: a flat word
/// vector compared in full, so keys collide only when their entire content is
/// identical. See the module docs for the encodings.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey(Box<[u64]>);

impl CacheKey {
    /// Wraps an already-encoded key. Callers are responsible for making the
    /// encoding self-delimiting (lead with a namespace tag; length-prefix any
    /// variable-length section that is followed by more content).
    pub(crate) fn from_words(words: Vec<u64>) -> Self {
        Self(words.into_boxed_slice())
    }

    /// The shard a key lands in: a seeded multiplicative hash folded over the
    /// words, reduced modulo `shards`. (The per-shard `HashMap` re-hashes with
    /// its own `RandomState`, so shard choice and bucket choice stay independent.)
    fn shard(&self, shards: usize) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.0.hash(&mut hasher);
        (hasher.finish() % shards as u64) as usize
    }
}

/// One resident scratch group plus its recency stamp.
struct Entry {
    scratch: Arc<GroupScratch>,
    last_used: u64,
}

/// One independently locked slice of the key space.
#[derive(Default)]
struct Shard {
    entries: HashMap<CacheKey, Entry>,
    /// Monotonic per-shard clock; every touch stamps the entry, so the minimum
    /// stamp identifies the least-recently-used entry at eviction time.
    clock: u64,
}

/// The sharded, size-bounded, LRU-evicting concurrent scratch cache behind
/// [`AnalysisSession`](crate::query::AnalysisSession). See the module docs.
pub(crate) struct SessionCache {
    shards: Box<[Mutex<Shard>]>,
    /// Per-shard entry bound (`capacity.div_ceil(shards)`).
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl SessionCache {
    /// Upper bound on the shard count; small capacities use fewer shards so the
    /// total entry bound stays exactly `capacity` for `capacity <= MAX_SHARDS`.
    const MAX_SHARDS: usize = 16;

    /// A cache bounded to roughly `capacity` total entries (exactly `capacity`
    /// when `capacity` is a multiple of the shard count). A zero capacity is
    /// treated as one: the cache always admits the entry it is about to return.
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = capacity.min(Self::MAX_SHARDS);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: capacity.div_ceil(shards),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The scratch group for `key`, inserting a fresh one (and evicting the
    /// shard's least-recently-used entry if the shard is full) on miss.
    ///
    /// Only the key's shard is locked, and only for the duration of the map
    /// operation — never while scratch contents are being computed, so
    /// simultaneous `execute` calls from many requests serialize on the shard
    /// lock for nanoseconds, not for kernel-compilation times.
    pub(crate) fn get_or_insert(&self, key: CacheKey) -> Arc<GroupScratch> {
        let mut shard = self.shards[key.shard(self.shards.len())].lock().unwrap();
        shard.clock += 1;
        let clock = shard.clock;
        if let Some(entry) = shard.entries.get_mut(&key) {
            entry.last_used = clock;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return entry.scratch.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        if shard.entries.len() >= self.shard_capacity {
            if let Some(victim) = shard
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let scratch = Arc::new(GroupScratch::new());
        shard.entries.insert(
            key,
            Entry {
                scratch: scratch.clone(),
                last_used: clock,
            },
        );
        scratch
    }

    /// Drops every resident entry (counters keep accumulating; eviction counts
    /// do not include clears — a clear is a caller decision, not a capacity
    /// decision).
    pub(crate) fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().unwrap().entries.clear();
        }
    }

    /// A snapshot of the counters and the current resident-entry count.
    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|shard| shard.lock().unwrap().entries.len())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(words: &[u64]) -> CacheKey {
        CacheKey::from_words(words.to_vec())
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let cache = SessionCache::new(8);
        let a = cache.get_or_insert(key(&[1, 2, 3]));
        let b = cache.get_or_insert(key(&[1, 2, 3]));
        let c = cache.get_or_insert(key(&[4, 5, 6]));
        assert!(Arc::ptr_eq(&a, &b), "identical keys share one scratch");
        assert!(!Arc::ptr_eq(&a, &c), "distinct keys get distinct scratch");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_bounds_resident_entries_and_evicts_lru() {
        // Capacity below MAX_SHARDS: the total bound is exactly the capacity.
        let cache = SessionCache::new(2);
        let a = cache.get_or_insert(key(&[1]));
        let _b = cache.get_or_insert(key(&[2]));
        // Touch [1] so [2] becomes the least recently used of its shard.
        let a2 = cache.get_or_insert(key(&[1]));
        assert!(Arc::ptr_eq(&a, &a2));
        // Insert keys until something must be evicted.
        for w in 3..40 {
            cache.get_or_insert(key(&[w]));
            assert!(
                cache.stats().entries <= 2,
                "resident entries exceeded the capacity bound"
            );
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "a full cache must evict");
        // The cache still serves after heavy eviction, re-inserting on demand.
        let a3 = cache.get_or_insert(key(&[1]));
        assert!(!Arc::ptr_eq(&a, &a3) || stats.evictions == 0);
    }

    #[test]
    fn lru_victim_is_the_least_recently_used() {
        // One shard (capacity 1 shard via capacity=1? use capacity 3 => 3 shards
        // of 1)... force a single shard by using capacity 1 and checking the
        // reinsert cycle instead: with shard capacity 1 every distinct insert
        // evicts the previous occupant of that shard.
        let cache = SessionCache::new(1);
        let a = cache.get_or_insert(key(&[10]));
        let _ = cache.get_or_insert(key(&[11]));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 1);
        let a2 = cache.get_or_insert(key(&[10]));
        assert!(
            !Arc::ptr_eq(&a, &a2),
            "the evicted entry must have been recomputed"
        );
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = SessionCache::new(8);
        cache.get_or_insert(key(&[1]));
        cache.get_or_insert(key(&[1]));
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn concurrent_lookups_converge_on_one_scratch_per_key() {
        let cache = std::sync::Arc::new(SessionCache::new(64));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                let mut ptrs = Vec::new();
                for i in 0..100u64 {
                    let scratch = cache.get_or_insert(key(&[i % 16]));
                    ptrs.push((i % 16, Arc::as_ptr(&scratch) as usize));
                    std::hint::black_box(t);
                }
                ptrs
            }));
        }
        let mut by_key: HashMap<u64, usize> = HashMap::new();
        for handle in handles {
            for (k, ptr) in handle.join().unwrap() {
                // No evictions happen at this capacity, so every thread must see
                // the same scratch allocation for a given key.
                let entry = by_key.entry(k).or_insert(ptr);
                assert_eq!(*entry, ptr, "threads disagree on the scratch for {k}");
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 800);
        assert_eq!(stats.entries, 16);
    }
}
