//! Theorem 3.2: the Raft (CFT) reliability model.

use crate::failure::FailureConfig;
use crate::protocol::{CountingModel, ProtocolModel};

/// Raft with configurable persistence- and view-change-quorum sizes.
///
/// Theorem 3.2 of the paper:
///
/// * Raft is **safe** iff `N < |Q_per| + |Q_vc|` and `N < 2 |Q_vc|` — purely structural
///   conditions: crash faults cannot break agreement as long as the quorums intersect.
///   Because Raft assumes crash faults only, any Byzantine node voids safety.
/// * Raft is **live** iff `|Correct| >= |Q_per|, |Q_vc|` — enough correct nodes remain
///   to form both quorums.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaftModel {
    n: usize,
    q_per: usize,
    q_vc: usize,
}

impl RaftModel {
    /// Creates a Raft model with explicit quorum sizes.
    ///
    /// # Panics
    ///
    /// Panics if either quorum size is zero or exceeds `n`.
    pub fn new(n: usize, q_per: usize, q_vc: usize) -> Self {
        assert!(n > 0, "cluster must be non-empty");
        assert!((1..=n).contains(&q_per), "Q_per must be in 1..=N");
        assert!((1..=n).contains(&q_vc), "Q_vc must be in 1..=N");
        Self { n, q_per, q_vc }
    }

    /// The standard Raft configuration: both quorums are simple majorities
    /// (`⌊N/2⌋ + 1`), as in Table 2.
    pub fn standard(n: usize) -> Self {
        let majority = n / 2 + 1;
        Self::new(n, majority, majority)
    }

    /// A Flexible-Paxos style configuration with distinct persistence and view-change
    /// quorum sizes.
    pub fn flexible(n: usize, q_per: usize, q_vc: usize) -> Self {
        Self::new(n, q_per, q_vc)
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Persistence-quorum size.
    pub fn q_per(&self) -> usize {
        self.q_per
    }

    /// View-change-quorum size.
    pub fn q_vc(&self) -> usize {
        self.q_vc
    }

    /// The structural safety conditions of Theorem 3.2 (they do not depend on the failure
    /// configuration).
    pub fn quorums_intersect(&self) -> bool {
        self.n < self.q_per + self.q_vc && self.n < 2 * self.q_vc
    }
}

impl ProtocolModel for RaftModel {
    fn name(&self) -> String {
        if self.q_per == self.n / 2 + 1 && self.q_vc == self.n / 2 + 1 {
            format!("Raft(N={})", self.n)
        } else {
            format!(
                "Raft(N={}, Q_per={}, Q_vc={})",
                self.n, self.q_per, self.q_vc
            )
        }
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn is_safe(&self, config: &FailureConfig) -> bool {
        assert_eq!(config.len(), self.n, "configuration size mismatch");
        self.is_safe_counts(config.num_crashed(), config.num_byzantine())
    }

    fn is_live(&self, config: &FailureConfig) -> bool {
        assert_eq!(config.len(), self.n, "configuration size mismatch");
        self.is_live_counts(config.num_crashed(), config.num_byzantine())
    }

    fn as_counting(&self) -> Option<&dyn CountingModel> {
        Some(self)
    }

    fn executable(&self) -> Option<crate::protocol::ExecutableSpec> {
        // Any quorum configuration is executable: the simulator's Raft takes
        // explicit commit/election quorum sizes (Flexible-Paxos style).
        Some(crate::protocol::ExecutableSpec::Raft {
            n: self.n,
            commit_quorum: self.q_per,
            election_quorum: self.q_vc,
        })
    }

    fn cache_signature(&self) -> Option<Vec<u64>> {
        // (n, q_per, q_vc) fully determine the counting predicates.
        Some(vec![
            crate::protocol::signature_tags::RAFT,
            self.n as u64,
            self.q_per as u64,
            self.q_vc as u64,
        ])
    }
}

impl CountingModel for RaftModel {
    fn is_safe_counts(&self, _crashed: usize, byzantine: usize) -> bool {
        // Theorem 3.2: safety is structural under crash faults. A Byzantine node,
        // however, is outside Raft's fault model and can equivocate its votes/log,
        // so safety is forfeited as soon as one exists.
        byzantine == 0 && self.quorums_intersect()
    }

    fn is_live_counts(&self, crashed: usize, byzantine: usize) -> bool {
        // Liveness: enough correct nodes remain to form the larger quorum. A Byzantine
        // node is counted as not contributing (it may refuse to vote).
        let faulty = crashed + byzantine;
        let correct = self.n.saturating_sub(faulty);
        correct >= self.q_per.max(self.q_vc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn standard_quorums_are_majorities() {
        assert_eq!(RaftModel::standard(3).q_per(), 2);
        assert_eq!(RaftModel::standard(9).q_vc(), 5);
        assert!(RaftModel::standard(7).quorums_intersect());
    }

    #[test]
    fn safety_is_structural_for_crash_faults() {
        let m = RaftModel::standard(3);
        for crashed in 0..=3 {
            assert!(m.is_safe_counts(crashed, 0));
        }
        // A Byzantine node breaks the CFT assumption.
        assert!(!m.is_safe_counts(0, 1));
    }

    #[test]
    fn misconfigured_quorums_are_unsafe() {
        // Q_per = Q_vc = 2 over 5 nodes: two disjoint quorums can exist.
        let m = RaftModel::flexible(5, 2, 2);
        assert!(!m.quorums_intersect());
        assert!(!m.is_safe_counts(0, 0));
    }

    #[test]
    fn flexible_quorum_safety_condition() {
        // Q_per = 2, Q_vc = 4 over 5 nodes satisfies both conditions.
        assert!(RaftModel::flexible(5, 2, 4).quorums_intersect());
        // Q_per = 4, Q_vc = 2 violates N < 2*Q_vc.
        assert!(!RaftModel::flexible(5, 4, 2).quorums_intersect());
    }

    #[test]
    fn liveness_requires_a_correct_majority() {
        let m = RaftModel::standard(5);
        assert!(m.is_live(&FailureConfig::with_crashed(5, &[0, 1])));
        assert!(!m.is_live(&FailureConfig::with_crashed(5, &[0, 1, 2])));
        // Byzantine nodes count against liveness too.
        assert!(!m.is_live(&FailureConfig::with_byzantine(5, &[0, 1, 2])));
    }

    #[test]
    fn liveness_uses_the_larger_quorum() {
        let m = RaftModel::flexible(5, 2, 4);
        // 3 correct nodes can form Q_per=2 but not Q_vc=4.
        assert!(!m.is_live_counts(2, 0));
        assert!(m.is_live_counts(1, 0));
    }

    proptest! {
        #[test]
        fn liveness_is_monotone_in_failures(n in 1usize..12, crashed in 0usize..12) {
            let crashed = crashed.min(n);
            let m = RaftModel::standard(n);
            if m.is_live_counts(crashed, 0) {
                for fewer in 0..crashed {
                    prop_assert!(m.is_live_counts(fewer, 0));
                }
            }
        }

        #[test]
        fn standard_raft_is_always_safe_under_crashes(n in 1usize..30, crashed in 0usize..30) {
            let m = RaftModel::standard(n);
            prop_assert!(m.is_safe_counts(crashed.min(n), 0));
        }
    }
}
