//! Heterogeneous fleets: quorum placement policies and node-replacement what-ifs.
//!
//! §3.2: "Raft and PBFT underutilize reliable nodes. ... As Raft does not know which
//! nodes are more reliable, it may persist data only on the unreliable nodes. If we
//! required quorums to include at least one reliable node (by leveraging knowledge of
//! fault curves), data durability would increase." This module implements the policies
//! that experiment compares and the helpers for upgrading subsets of a fleet.

use fault_model::metrics::Nines;
use fault_model::mode::FaultProfile;

use crate::deployment::Deployment;
use crate::durability::quorum_durability;

/// How the protocol picks the persistence quorum that ends up holding the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuorumPolicy {
    /// The protocol is oblivious to fault curves; in the worst case the quorum is formed
    /// from the *least* reliable nodes (e.g. because they happened to respond first).
    ObliviousWorstCase,
    /// The quorum must include at least this many of the most reliable nodes; the rest
    /// are filled, worst-case, from the least reliable nodes.
    RequireReliable(usize),
    /// The quorum is formed from the most reliable nodes available (the best case an
    /// oracle placement could achieve).
    MostReliable,
}

/// Selects the members of a persistence quorum of `size` under a policy.
///
/// # Panics
///
/// Panics if `size` exceeds the deployment, or a `RequireReliable` count exceeds `size`.
pub fn select_quorum(deployment: &Deployment, size: usize, policy: QuorumPolicy) -> Vec<usize> {
    assert!(size <= deployment.len(), "quorum larger than deployment");
    let ranked = deployment.nodes_by_reliability();
    match policy {
        QuorumPolicy::ObliviousWorstCase => ranked[ranked.len() - size..].to_vec(),
        QuorumPolicy::MostReliable => ranked[..size].to_vec(),
        QuorumPolicy::RequireReliable(k) => {
            assert!(
                k <= size,
                "cannot require more reliable nodes than the quorum size"
            );
            let mut members: Vec<usize> = ranked[..k].to_vec();
            members.extend_from_slice(&ranked[ranked.len() - (size - k)..]);
            members
        }
    }
}

/// Durability of data written to a quorum selected under `policy`.
pub fn durability_under_policy(
    deployment: &Deployment,
    quorum_size: usize,
    policy: QuorumPolicy,
) -> Nines {
    let quorum = select_quorum(deployment, quorum_size, policy);
    quorum_durability(deployment, &quorum)
}

/// Returns a deployment where the `count` *least reliable* nodes are replaced by nodes
/// with the given profile — the paper's "replace three nodes with more reliable ones"
/// upgrade.
pub fn replace_least_reliable(
    deployment: &Deployment,
    count: usize,
    replacement: FaultProfile,
) -> Deployment {
    assert!(
        count <= deployment.len(),
        "cannot replace more nodes than exist"
    );
    let ranked = deployment.nodes_by_reliability();
    let mut upgraded = deployment.clone();
    for &node in ranked.iter().rev().take(count) {
        upgraded = upgraded.with_profile(node, replacement);
    }
    upgraded
}

/// The quantities compared by the paper's heterogeneous-Raft example (§3.2): a baseline
/// all-unreliable cluster, the same cluster with some nodes upgraded, and the durability
/// of the persistence quorum under an oblivious vs. a reliability-aware policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeterogeneityAnalysis {
    /// Safe-and-live probability of the baseline (un-upgraded) deployment.
    pub baseline_safe_and_live: Nines,
    /// Safe-and-live probability after upgrading some nodes.
    pub upgraded_safe_and_live: Nines,
    /// Durability when the protocol is oblivious to fault curves (worst-case quorum of
    /// unreliable nodes).
    pub oblivious_durability: Nines,
    /// Durability when quorums are required to include at least one reliable node.
    pub aware_durability: Nines,
}

/// Runs the §3.2 heterogeneous-Raft comparison.
///
/// * `baseline` — the all-unreliable deployment (e.g. 7 nodes at 8%).
/// * `upgraded_count` / `replacement` — how many nodes to replace and with what profile.
/// * `quorum_size` — the persistence-quorum size (majority for standard Raft).
/// * `analyze` — maps a deployment to its safe-and-live probability (callers pass the
///   protocol they care about, typically `|d| analyze(&RaftModel::standard(n), d)`).
pub fn heterogeneity_analysis(
    baseline: &Deployment,
    upgraded_count: usize,
    replacement: FaultProfile,
    quorum_size: usize,
    analyze: impl Fn(&Deployment) -> Nines,
) -> HeterogeneityAnalysis {
    let upgraded = replace_least_reliable(baseline, upgraded_count, replacement);
    HeterogeneityAnalysis {
        baseline_safe_and_live: analyze(baseline),
        upgraded_safe_and_live: analyze(&upgraded),
        oblivious_durability: durability_under_policy(
            &upgraded,
            quorum_size,
            QuorumPolicy::ObliviousWorstCase,
        ),
        aware_durability: durability_under_policy(
            &upgraded,
            quorum_size,
            QuorumPolicy::RequireReliable(1),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::analyze;
    use crate::raft_model::RaftModel;

    fn mixed_deployment() -> Deployment {
        // Four unreliable (8%) and three reliable (1%) nodes.
        let mut profiles = vec![FaultProfile::crash_only(0.08); 4];
        profiles.extend(vec![FaultProfile::crash_only(0.01); 3]);
        Deployment::from_profiles(profiles)
    }

    #[test]
    fn policies_pick_expected_nodes() {
        let d = mixed_deployment();
        let worst = select_quorum(&d, 4, QuorumPolicy::ObliviousWorstCase);
        assert!(
            worst.iter().all(|&i| i < 4),
            "worst case picks the 8% nodes: {worst:?}"
        );
        let best = select_quorum(&d, 3, QuorumPolicy::MostReliable);
        assert!(
            best.iter().all(|&i| i >= 4),
            "best case picks the 1% nodes: {best:?}"
        );
        let mixed = select_quorum(&d, 4, QuorumPolicy::RequireReliable(1));
        assert_eq!(mixed.len(), 4);
        assert!(mixed.iter().any(|&i| i >= 4));
    }

    #[test]
    fn requiring_a_reliable_node_improves_durability() {
        let d = mixed_deployment();
        let oblivious = durability_under_policy(&d, 4, QuorumPolicy::ObliviousWorstCase);
        let aware = durability_under_policy(&d, 4, QuorumPolicy::RequireReliable(1));
        let best = durability_under_policy(&d, 4, QuorumPolicy::MostReliable);
        assert!(aware.probability() > oblivious.probability());
        assert!(best.probability() >= aware.probability());
        // Oblivious worst case: all four 8% nodes → loss probability 0.08^4.
        assert!((oblivious.complement() - 0.08f64.powi(4)).abs() < 1e-12);
        // Aware: three 8% nodes and one 1% node.
        assert!((aware.complement() - 0.08f64.powi(3) * 0.01).abs() < 1e-12);
    }

    #[test]
    fn replacement_upgrades_least_reliable_nodes() {
        let d = Deployment::uniform_crash(7, 0.08);
        let upgraded = replace_least_reliable(&d, 3, FaultProfile::crash_only(0.01));
        let count_reliable = upgraded
            .profiles()
            .iter()
            .filter(|p| (p.fault_probability() - 0.01).abs() < 1e-12)
            .count();
        assert_eq!(count_reliable, 3);
        assert_eq!(
            d.profiles()
                .iter()
                .filter(|p| p.fault_probability() > 0.05)
                .count(),
            7
        );
    }

    #[test]
    fn paper_heterogeneous_raft_example_shape() {
        // Seven 8% nodes; replace three with 1% nodes; majority quorum of 4.
        let baseline = Deployment::uniform_crash(7, 0.08);
        let analysis =
            heterogeneity_analysis(&baseline, 3, FaultProfile::crash_only(0.01), 4, |d| {
                analyze(&RaftModel::standard(7), d).safe_and_live
            });
        // Baseline matches Table 2 (N=7, 8%): 99.88%.
        assert!((analysis.baseline_safe_and_live.probability() - 0.9988).abs() < 2e-4);
        // Upgrading improves the S&L probability, but only modestly (paper: ~99.98%).
        assert!(
            analysis.upgraded_safe_and_live.probability()
                > analysis.baseline_safe_and_live.probability()
        );
        assert!(analysis.upgraded_safe_and_live.probability() > 0.9995);
        // Reliability-aware quorums beat oblivious ones on durability (paper: 99.994%).
        assert!(
            analysis.aware_durability.probability() > analysis.oblivious_durability.probability()
        );
        assert!(analysis.aware_durability.probability() > 0.9999);
    }

    #[test]
    #[should_panic(expected = "cannot require more reliable nodes")]
    fn require_reliable_bound_is_checked() {
        select_quorum(&mixed_deployment(), 2, QuorumPolicy::RequireReliable(3));
    }
}
