//! Monte Carlo reliability estimation.
//!
//! Exact engines cover independent faults. Once failures are *correlated* (§2(3)) the
//! joint distribution no longer factorizes and the paper notes that "Markov models ...
//! are unable to capture dependent system transitions"; sampling remains applicable.
//! This engine draws failure configurations from a [`CorrelationModel`] (which can also
//! express plain independent deployments) and estimates safety/liveness probabilities
//! with binomial-proportion confidence intervals.

use fault_model::correlation::CorrelationModel;
use rand::Rng;

use crate::deployment::Deployment;
use crate::failure::FailureConfig;
use crate::protocol::ProtocolModel;

/// A probability estimated from samples, with a 95% Wilson confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Point estimate (sample proportion).
    pub value: f64,
    /// Lower bound of the 95% confidence interval.
    pub lower: f64,
    /// Upper bound of the 95% confidence interval.
    pub upper: f64,
}

impl Estimate {
    fn from_counts(hits: usize, samples: usize) -> Self {
        assert!(samples > 0);
        let n = samples as f64;
        let p = hits as f64 / n;
        let z = 1.959964f64;
        let denom = 1.0 + z * z / n;
        let center = (p + z * z / (2.0 * n)) / denom;
        let margin = (z / denom) * ((p * (1.0 - p) / n) + (z * z / (4.0 * n * n))).sqrt();
        Self {
            value: p,
            lower: (center - margin).max(0.0),
            upper: (center + margin).min(1.0),
        }
    }

    /// Whether the interval contains `p`.
    pub fn contains(&self, p: f64) -> bool {
        self.lower <= p && p <= self.upper
    }

    /// Half-width of the confidence interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }
}

/// Monte Carlo estimates of safety and liveness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloReport {
    /// Estimated probability of safety.
    pub safe: Estimate,
    /// Estimated probability of liveness.
    pub live: Estimate,
    /// Estimated probability of both.
    pub safe_and_live: Estimate,
    /// Number of samples drawn.
    pub samples: usize,
}

/// Estimates the reliability of `model` under a (possibly correlated) failure model by
/// drawing `samples` failure configurations.
pub fn monte_carlo_reliability<M: ProtocolModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    failure_model: &CorrelationModel,
    samples: usize,
    rng: &mut R,
) -> MonteCarloReport {
    assert!(samples > 0, "need at least one sample");
    assert_eq!(
        model.num_nodes(),
        failure_model.len(),
        "model and failure model disagree on the cluster size"
    );
    let mut safe_hits = 0usize;
    let mut live_hits = 0usize;
    let mut both_hits = 0usize;
    for _ in 0..samples {
        let config = FailureConfig::new(failure_model.sample(rng));
        let safe = model.is_safe(&config);
        let live = model.is_live(&config);
        if safe {
            safe_hits += 1;
        }
        if live {
            live_hits += 1;
        }
        if safe && live {
            both_hits += 1;
        }
    }
    MonteCarloReport {
        safe: Estimate::from_counts(safe_hits, samples),
        live: Estimate::from_counts(live_hits, samples),
        safe_and_live: Estimate::from_counts(both_hits, samples),
        samples,
    }
}

/// Convenience wrapper: Monte Carlo over an *independent* deployment (no correlation
/// groups), e.g. to cross-check the exact engines or to handle non-counting models at
/// large N.
pub fn monte_carlo_independent<M: ProtocolModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    deployment: &Deployment,
    samples: usize,
    rng: &mut R,
) -> MonteCarloReport {
    let failure_model = CorrelationModel::independent(deployment.profiles().to_vec());
    monte_carlo_reliability(model, &failure_model, samples, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::counting_reliability;
    use crate::raft_model::RaftModel;
    use fault_model::correlation::CorrelationGroup;
    use fault_model::mode::FaultProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimate_interval_contains_truth_for_fair_coin() {
        let e = Estimate::from_counts(5_050, 10_000);
        assert!(e.contains(0.5));
        assert!(e.half_width() < 0.02);
    }

    #[test]
    fn monte_carlo_agrees_with_exact_analysis() {
        let model = RaftModel::standard(5);
        let deployment = Deployment::uniform_crash(5, 0.05);
        let exact = counting_reliability(&model, &deployment);
        let mut rng = StdRng::seed_from_u64(11);
        let mc = monte_carlo_independent(&model, &deployment, 200_000, &mut rng);
        assert!(
            mc.live.contains(exact.p_live),
            "exact {} not in [{}, {}]",
            exact.p_live,
            mc.live.lower,
            mc.live.upper
        );
        assert!((mc.safe.value - 1.0).abs() < 1e-12);
        assert_eq!(mc.samples, 200_000);
    }

    #[test]
    fn correlated_failures_reduce_liveness() {
        let model = RaftModel::standard(5);
        let profiles = vec![FaultProfile::crash_only(0.02); 5];
        let independent = CorrelationModel::independent(profiles.clone());
        let correlated = CorrelationModel::independent(profiles)
            .with_group(CorrelationGroup::crash_shock((0..5).collect(), 0.01));
        let mut rng = StdRng::seed_from_u64(5);
        let ind = monte_carlo_reliability(&model, &independent, 100_000, &mut rng);
        let cor = monte_carlo_reliability(&model, &correlated, 100_000, &mut rng);
        assert!(cor.live.value < ind.live.value - 0.005);
    }

    #[test]
    #[should_panic(expected = "disagree on the cluster size")]
    fn size_mismatch_panics() {
        let model = RaftModel::standard(3);
        let failure_model = CorrelationModel::independent(vec![FaultProfile::crash_only(0.1); 4]);
        let mut rng = StdRng::seed_from_u64(1);
        monte_carlo_reliability(&model, &failure_model, 10, &mut rng);
    }
}
