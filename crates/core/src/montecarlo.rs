//! Monte Carlo reliability estimation.
//!
//! Exact engines cover independent faults. Once failures are *correlated* (§2(3)) the
//! joint distribution no longer factorizes and the paper notes that "Markov models ...
//! are unable to capture dependent system transitions"; sampling remains applicable.
//! This engine draws failure configurations from a [`CorrelationModel`] (which can also
//! express plain independent deployments) and estimates safety/liveness probabilities
//! with binomial-proportion confidence intervals.
//!
//! # Kernels
//!
//! Two sampling kernels implement the same estimator:
//!
//! * **Scalar** — one scenario at a time, allocation-free: each work chunk reuses a
//!   single scratch [`FailureConfig`] filled in place by
//!   [`CorrelationModel::sample_into`]. The only kernel that can evaluate arbitrary
//!   (placement-sensitive) protocol models.
//! * **Packed** ([`crate::packed`]) — 64 scenarios per pass in bit-sliced `u64`
//!   lanes, for [`CountingModel`](crate::protocol::CountingModel)s. Roughly an order
//!   of magnitude more throughput per core; its RNG stream necessarily differs from
//!   the scalar kernel's, so the two agree statistically, not bit-for-bit.
//!
//! [`monte_carlo_reliability_par`] auto-selects (packed when the model supports
//! counting, scalar otherwise); [`monte_carlo_reliability_par_kernel`] pins a kernel
//! explicitly (see [`McKernel`], exposed to callers through
//! [`Budget::mc_kernel`](crate::engine::Budget)).
//!
//! # Parallelism and determinism
//!
//! Sampling is embarrassingly parallel, and it is the hot path for every correlated or
//! large-N scenario, so [`monte_carlo_reliability_par`] fans the work out with rayon's
//! persistent worker pool. Determinism is preserved by construction: the sample budget
//! is split into fixed-size chunks (independent of the thread count), every chunk gets
//! its own RNG seeded from the run seed and the chunk index, and the per-chunk hit
//! counters are integers whose sum is associative and commutative. The result is
//! therefore bit-identical for a fixed seed no matter how many worker threads execute
//! it — per kernel: the two kernels are distinct deterministic streams.

use fault_model::correlation::CorrelationModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::deployment::Deployment;
use crate::failure::FailureConfig;
use crate::protocol::ProtocolModel;

/// The 97.5% standard-normal quantile: the `z` of every 95% confidence interval in
/// the analysis layer (Wilson intervals here, delta-method intervals in
/// [`crate::rare_event`], sample-equivalence math in the bench harness).
pub const Z_95: f64 = 1.959964;

/// A probability estimated from samples, with a 95% Wilson confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Point estimate (sample proportion).
    pub value: f64,
    /// Lower bound of the 95% confidence interval.
    pub lower: f64,
    /// Upper bound of the 95% confidence interval.
    pub upper: f64,
}

impl Estimate {
    /// A Wilson-interval estimate from `hits` successes out of `samples` draws.
    /// Shared by the sampling kernels and the simulation engine
    /// ([`crate::simulation`]), whose trial frequencies are binomial proportions of
    /// exactly this shape.
    pub(crate) fn from_counts(hits: usize, samples: usize) -> Self {
        assert!(samples > 0);
        assert!(hits <= samples, "more hits than samples");
        let n = samples as f64;
        let p = hits as f64 / n;
        let z = Z_95;
        let denom = 1.0 + z * z / n;
        let center = (p + z * z / (2.0 * n)) / denom;
        let margin = (z / denom) * ((p * (1.0 - p) / n) + (z * z / (4.0 * n * n))).sqrt();
        // At the degenerate corners (0 hits, all hits, n = 1) the Wilson bounds are
        // exactly 0 or 1 mathematically, but the floating-point evaluation can drift a
        // few ulps past the point estimate or outside [0, 1]; clamp both ways so the
        // interval invariant 0 <= lower <= value <= upper <= 1 always holds.
        Self::checked(
            p,
            (center - margin).clamp(0.0, 1.0).min(p),
            (center + margin).clamp(0.0, 1.0).max(p),
        )
    }

    /// An estimate `value` with a symmetric `margin`, clamped into `[0, 1]` while
    /// keeping the interval around the point estimate. Used by the weighted
    /// (importance-sampling) estimator, whose delta-method standard error is symmetric.
    pub fn from_value_and_margin(value: f64, margin: f64) -> Self {
        assert!(margin >= 0.0, "margin must be non-negative, got {margin}");
        let value = value.clamp(0.0, 1.0);
        Self::checked(
            value,
            (value - margin).clamp(0.0, 1.0),
            (value + margin).clamp(0.0, 1.0),
        )
    }

    fn checked(value: f64, lower: f64, upper: f64) -> Self {
        debug_assert!(
            (0.0..=1.0).contains(&lower)
                && (0.0..=1.0).contains(&upper)
                && lower <= value
                && value <= upper,
            "estimate invariant violated: lower {lower} <= value {value} <= upper {upper}"
        );
        Self {
            value,
            lower,
            upper,
        }
    }

    /// Whether the interval contains `p`.
    pub fn contains(&self, p: f64) -> bool {
        self.lower <= p && p <= self.upper
    }

    /// Half-width of the confidence interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }
}

/// Monte Carlo estimates of safety and liveness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloReport {
    /// Estimated probability of safety.
    pub safe: Estimate,
    /// Estimated probability of liveness.
    pub live: Estimate,
    /// Estimated probability of both.
    pub safe_and_live: Estimate,
    /// Number of samples drawn.
    pub samples: usize,
    /// The kernel that actually drew the samples — never [`McKernel::Auto`]. In
    /// particular, a run pinned to [`McKernel::Packed`] on a model without a
    /// counting view reports [`McKernel::Scalar`] here, so kernel comparisons can
    /// detect that they did not measure what they pinned.
    pub kernel: McKernel,
}

/// Per-chunk hit counters. Integer sums are exact and order-independent, which is what
/// makes the parallel reduction deterministic regardless of scheduling. Shared with
/// the bit-sliced kernel in [`crate::packed`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct HitCounts {
    pub(crate) safe: usize,
    pub(crate) live: usize,
    pub(crate) both: usize,
}

impl std::ops::Add for HitCounts {
    type Output = HitCounts;

    fn add(self, other: HitCounts) -> HitCounts {
        HitCounts {
            safe: self.safe + other.safe,
            live: self.live + other.live,
            both: self.both + other.both,
        }
    }
}

/// Draws `count` configurations from `failure_model` with `rng` and tallies hits.
///
/// Allocation-free inner loop: one scratch [`FailureConfig`] is allocated per chunk
/// and refilled in place by [`CorrelationModel::sample_into`] for every draw. For
/// [`CountingModel`](crate::protocol::CountingModel)s the per-draw predicate calls
/// collapse to one fault-count scan and three table lookups (see
/// [`counting_sample_chunk`]).
pub(crate) fn sample_chunk<M: ProtocolModel + ?Sized>(
    model: &M,
    failure_model: &CorrelationModel,
    count: usize,
    rng: &mut impl Rng,
) -> HitCounts {
    if let Some(counting) = model.as_counting() {
        return counting_sample_chunk(counting, failure_model, count, rng);
    }
    let mut hits = HitCounts::default();
    let mut scratch = FailureConfig::all_correct(failure_model.len());
    for _ in 0..count {
        failure_model.sample_into(scratch.states_mut(), rng);
        let safe = model.is_safe(&scratch);
        let live = model.is_live(&scratch);
        if safe {
            hits.safe += 1;
        }
        if live {
            hits.live += 1;
        }
        if safe && live {
            hits.both += 1;
        }
    }
    hits
}

/// [`sample_chunk`] for counting models: one scan of the sampled states collapses
/// to a `(crashed, byzantine)` pair and three count predicates, instead of the two
/// full state-vector scans (`is_safe`, `is_live`) the generic path pays per draw.
/// Bit-identical to the generic path by the [`CountingModel`](crate::protocol::CountingModel)
/// contract — the RNG stream and the predicate values are unchanged.
fn counting_sample_chunk(
    model: &dyn crate::protocol::CountingModel,
    failure_model: &CorrelationModel,
    count: usize,
    rng: &mut impl Rng,
) -> HitCounts {
    use fault_model::mode::NodeState;
    let mut hits = HitCounts::default();
    let mut scratch = FailureConfig::all_correct(failure_model.len());
    for _ in 0..count {
        failure_model.sample_into(scratch.states_mut(), rng);
        let mut crashed = 0usize;
        let mut byzantine = 0usize;
        for &state in scratch.states() {
            crashed += usize::from(state == NodeState::Crashed);
            byzantine += usize::from(state == NodeState::Byzantine);
        }
        let safe = model.is_safe_counts(crashed, byzantine);
        let live = model.is_live_counts(crashed, byzantine);
        if safe {
            hits.safe += 1;
        }
        if live {
            hits.live += 1;
        }
        if safe && live {
            hits.both += 1;
        }
    }
    hits
}

pub(crate) fn report_from_counts(
    hits: HitCounts,
    samples: usize,
    kernel: McKernel,
) -> MonteCarloReport {
    debug_assert_ne!(kernel, McKernel::Auto, "reports name a concrete kernel");
    MonteCarloReport {
        safe: Estimate::from_counts(hits.safe, samples),
        live: Estimate::from_counts(hits.live, samples),
        safe_and_live: Estimate::from_counts(hits.both, samples),
        samples,
        kernel,
    }
}

/// Estimates the reliability of `model` under a (possibly correlated) failure model by
/// drawing `samples` failure configurations from a caller-provided generator, on the
/// calling thread.
///
/// This is the single-threaded reference path; [`monte_carlo_reliability_par`] is the
/// parallel engine used by the analyzer.
///
/// A zero sample budget saturates to one sample, so the result is always a
/// well-defined (if maximally uncertain) estimate — never a division by zero.
pub fn monte_carlo_reliability<M: ProtocolModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    failure_model: &CorrelationModel,
    samples: usize,
    rng: &mut R,
) -> MonteCarloReport {
    let samples = samples.max(1);
    assert_eq!(
        model.num_nodes(),
        failure_model.len(),
        "model and failure model disagree on the cluster size"
    );
    let mut rng = rng;
    let hits = sample_chunk(model, failure_model, samples, &mut rng);
    report_from_counts(hits, samples, McKernel::Scalar)
}

/// Number of samples per parallel work unit.
///
/// The chunk count depends only on the sample budget — never on the thread count — so a
/// fixed seed yields a bit-identical report on any machine. 4096 samples amortise
/// scheduling overhead while still giving a 16-way pool enough units to balance a
/// 200k-sample run.
pub const MC_CHUNK_SIZE: usize = 4096;

/// The SplitMix64 finalizer (Steele et al., OOPSLA '14): a bijective avalanche mix,
/// shared by [`chunk_seed`] and the packed kernel's position-addressed draws
/// ([`crate::packed`]).
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the RNG seed of chunk `index` within a run seeded with `seed` (SplitMix64
/// finalizer over the pair, so neighbouring chunks get decorrelated streams).
pub(crate) fn chunk_seed(seed: u64, index: u64) -> u64 {
    mix64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Number of [`MC_CHUNK_SIZE`]-sized work units a sample budget splits into (a zero
/// budget saturates to one sample first). The single source of the chunk layout,
/// shared by [`map_sample_chunks`] and the sweep scheduler
/// ([`crate::query`]), which decomposes Monte Carlo cells into exactly these chunks —
/// identical layout is what keeps the scheduled merge bit-identical to a whole-cell
/// run.
pub(crate) fn chunk_count(samples: usize) -> usize {
    samples.max(1).div_ceil(MC_CHUNK_SIZE)
}

/// Sample count of chunk `index` within a budget of `samples`: every chunk is
/// [`MC_CHUNK_SIZE`] except a ragged last one.
pub(crate) fn chunk_len(samples: usize, index: usize) -> usize {
    let samples = samples.max(1);
    let chunks = samples.div_ceil(MC_CHUNK_SIZE);
    debug_assert!(index < chunks);
    if index == chunks - 1 {
        samples - index * MC_CHUNK_SIZE
    } else {
        MC_CHUNK_SIZE
    }
}

/// The shared chunked-sampling scaffolding behind the plain and tilted
/// (importance-sampling, see [`crate::rare_event`]) parallel samplers.
///
/// Splits `samples` into [`MC_CHUNK_SIZE`]-sized work units (the last one ragged),
/// runs `per_chunk(rng, count)` for each across the rayon pool with chunk `i`'s RNG
/// seeded from `chunk_seed(seed, i)`, and returns the per-chunk results **in chunk
/// order**. Collecting in chunk order (rather than reducing on the fly) is what lets
/// callers with non-associative accumulators — floating-point weight sums — fold the
/// results sequentially and still be bit-identical at any thread count.
pub(crate) fn map_sample_chunks<T, F>(samples: usize, seed: u64, per_chunk: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut StdRng, usize) -> T + Sync,
{
    let chunks = chunk_count(samples);
    (0..chunks)
        .into_par_iter()
        .map(|index| {
            let mut rng = StdRng::seed_from_u64(chunk_seed(seed, index as u64));
            per_chunk(&mut rng, chunk_len(samples, index))
        })
        .collect()
}

/// Which sampling kernel the parallel Monte Carlo engine runs.
///
/// The default (`Auto`) uses the bit-sliced packed kernel whenever the model is a
/// [`CountingModel`](crate::protocol::CountingModel) and the scalar kernel otherwise.
/// Pinning a kernel is for benchmarks and cross-kernel agreement tests; results of
/// the two kernels agree statistically but come from different RNG streams.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum McKernel {
    /// Packed for counting models, scalar for everything else.
    #[default]
    Auto,
    /// The allocation-free one-scenario-at-a-time kernel (works for every model).
    Scalar,
    /// The bit-sliced 64-scenarios-per-pass kernel ([`crate::packed`]); requires a
    /// counting model, falls back to scalar when the model is not one.
    Packed,
}

/// Estimates the reliability of `model` under a (possibly correlated) failure model by
/// drawing `samples` failure configurations across the persistent thread pool,
/// auto-selecting the sampling kernel ([`McKernel::Auto`]).
///
/// Deterministic for a fixed `seed` regardless of thread count: samples are split into
/// [`MC_CHUNK_SIZE`]-sized chunks, chunk `i` uses a `StdRng` seeded with
/// `chunk_seed(seed, i)`, and the integer hit counters are summed.
///
/// A zero sample budget saturates to one sample (see [`monte_carlo_reliability`]).
pub fn monte_carlo_reliability_par<M: ProtocolModel + ?Sized>(
    model: &M,
    failure_model: &CorrelationModel,
    samples: usize,
    seed: u64,
) -> MonteCarloReport {
    monte_carlo_reliability_par_kernel(model, failure_model, samples, seed, McKernel::Auto)
}

/// [`monte_carlo_reliability_par`] with an explicitly pinned sampling kernel.
pub fn monte_carlo_reliability_par_kernel<M: ProtocolModel + ?Sized>(
    model: &M,
    failure_model: &CorrelationModel,
    samples: usize,
    seed: u64,
    kernel: McKernel,
) -> MonteCarloReport {
    monte_carlo_reliability_par_kernel_lanes(
        model,
        failure_model,
        samples,
        seed,
        kernel,
        crate::packed::DEFAULT_LANE_WORDS,
    )
}

/// [`monte_carlo_reliability_par_kernel`] with an explicit packed pass width
/// ([`Budget::mc_lane_words`](crate::engine::Budget)); the width is ignored by the
/// scalar kernel and never changes a packed result, only its throughput.
pub fn monte_carlo_reliability_par_kernel_lanes<M: ProtocolModel + ?Sized>(
    model: &M,
    failure_model: &CorrelationModel,
    samples: usize,
    seed: u64,
    kernel: McKernel,
    lane_words: usize,
) -> MonteCarloReport {
    assert_eq!(
        model.num_nodes(),
        failure_model.len(),
        "model and failure model disagree on the cluster size"
    );
    if kernel != McKernel::Scalar {
        if let Some(counting) = model.as_counting() {
            return crate::packed::monte_carlo_reliability_packed_par_lanes(
                counting,
                failure_model,
                samples,
                seed,
                lane_words,
            );
        }
    }
    monte_carlo_scalar_par(model, failure_model, samples, seed)
}

/// The scalar kernel across the pool on an already-prepared failure model — the tail
/// of [`monte_carlo_reliability_par_kernel`], shared with the query API
/// ([`crate::query`]), whose planned cells convert a scenario to its correlation
/// model once per cell group instead of once per call.
pub(crate) fn monte_carlo_scalar_par<M: ProtocolModel + ?Sized>(
    model: &M,
    failure_model: &CorrelationModel,
    samples: usize,
    seed: u64,
) -> MonteCarloReport {
    assert_eq!(
        model.num_nodes(),
        failure_model.len(),
        "model and failure model disagree on the cluster size"
    );
    let samples = samples.max(1);
    let hits = map_sample_chunks(samples, seed, |rng, count| {
        sample_chunk(model, failure_model, count, rng)
    })
    .into_iter()
    .fold(HitCounts::default(), std::ops::Add::add);
    report_from_counts(hits, samples, McKernel::Scalar)
}

/// Convenience wrapper: Monte Carlo over an *independent* deployment (no correlation
/// groups), e.g. to cross-check the exact engines or to handle non-counting models at
/// large N.
pub fn monte_carlo_independent<M: ProtocolModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    deployment: &Deployment,
    samples: usize,
    rng: &mut R,
) -> MonteCarloReport {
    let failure_model = CorrelationModel::independent(deployment.profiles().to_vec());
    monte_carlo_reliability(model, &failure_model, samples, rng)
}

/// Parallel counterpart of [`monte_carlo_independent`].
pub fn monte_carlo_independent_par<M: ProtocolModel + ?Sized>(
    model: &M,
    deployment: &Deployment,
    samples: usize,
    seed: u64,
) -> MonteCarloReport {
    let failure_model = CorrelationModel::independent(deployment.profiles().to_vec());
    monte_carlo_reliability_par(model, &failure_model, samples, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::counting_reliability;
    use crate::raft_model::RaftModel;
    use fault_model::correlation::CorrelationGroup;
    use fault_model::mode::FaultProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimate_interval_contains_truth_for_fair_coin() {
        let e = Estimate::from_counts(5_050, 10_000);
        assert!(e.contains(0.5));
        assert!(e.half_width() < 0.02);
    }

    /// Asserts the interval invariant `0 <= lower <= value <= upper <= 1`.
    fn assert_estimate_invariants(e: Estimate, context: &str) {
        assert!(
            e.lower.is_finite() && e.value.is_finite() && e.upper.is_finite(),
            "{context}: non-finite estimate {e:?}"
        );
        assert!(
            0.0 <= e.lower && e.lower <= e.value && e.value <= e.upper && e.upper <= 1.0,
            "{context}: invariant violated {e:?}"
        );
    }

    #[test]
    fn wilson_interval_holds_at_degenerate_corners() {
        // 0 hits, all hits, and n = 1 are where naive Wilson evaluation drifts.
        for n in [1usize, 2, 3, 10, 1_000] {
            for hits in [0, n / 2, n] {
                let e = Estimate::from_counts(hits, n);
                assert_estimate_invariants(e, &format!("hits={hits} n={n}"));
            }
        }
        let zero = Estimate::from_counts(0, 1);
        assert_eq!(zero.value, 0.0);
        assert_eq!(zero.lower, 0.0);
        let all = Estimate::from_counts(7, 7);
        assert_eq!(all.value, 1.0);
        assert_eq!(all.upper, 1.0);
    }

    proptest::proptest! {
        #[test]
        fn wilson_interval_invariants_across_hit_sample_grid(
            samples in 1usize..5_000,
            hit_fraction in 0.0..=1.0f64,
        ) {
            let hits = ((samples as f64) * hit_fraction).round() as usize;
            let hits = hits.min(samples);
            let e = Estimate::from_counts(hits, samples);
            proptest::prop_assert!(e.lower >= 0.0 && e.upper <= 1.0);
            proptest::prop_assert!(e.lower <= e.value && e.value <= e.upper);
            proptest::prop_assert!(e.contains(e.value));
        }
    }

    #[test]
    fn from_value_and_margin_clamps_into_unit_interval() {
        let e = Estimate::from_value_and_margin(1.0 - 1e-12, 1e-6);
        assert_estimate_invariants(e, "near-one with margin");
        assert_eq!(e.upper, 1.0);
        let tiny = Estimate::from_value_and_margin(1e-10, 5e-11);
        assert_estimate_invariants(tiny, "tiny with margin");
        assert!(tiny.contains(1e-10));
    }

    #[test]
    fn zero_sample_budget_saturates_to_one_sample() {
        let model = RaftModel::standard(3);
        let failure_model = CorrelationModel::independent(vec![FaultProfile::crash_only(0.1); 3]);
        let mut rng = StdRng::seed_from_u64(9);
        let seq = monte_carlo_reliability(&model, &failure_model, 0, &mut rng);
        assert_eq!(seq.samples, 1);
        let par = monte_carlo_reliability_par(&model, &failure_model, 0, 9);
        assert_eq!(par.samples, 1);
        for e in [seq.safe, seq.live, seq.safe_and_live, par.safe, par.live] {
            assert!(e.value.is_finite() && e.lower.is_finite() && e.upper.is_finite());
            assert!(0.0 <= e.lower && e.lower <= e.value && e.value <= e.upper && e.upper <= 1.0);
        }
    }

    #[test]
    fn monte_carlo_agrees_with_exact_analysis() {
        let model = RaftModel::standard(5);
        let deployment = Deployment::uniform_crash(5, 0.05);
        let exact = counting_reliability(&model, &deployment);
        let mut rng = StdRng::seed_from_u64(11);
        let mc = monte_carlo_independent(&model, &deployment, 200_000, &mut rng);
        assert!(
            mc.live.contains(exact.p_live),
            "exact {} not in [{}, {}]",
            exact.p_live,
            mc.live.lower,
            mc.live.upper
        );
        assert!((mc.safe.value - 1.0).abs() < 1e-12);
        assert_eq!(mc.samples, 200_000);
    }

    #[test]
    fn correlated_failures_reduce_liveness() {
        let model = RaftModel::standard(5);
        let profiles = vec![FaultProfile::crash_only(0.02); 5];
        let independent = CorrelationModel::independent(profiles.clone());
        let correlated = CorrelationModel::independent(profiles)
            .with_group(CorrelationGroup::crash_shock((0..5).collect(), 0.01));
        let mut rng = StdRng::seed_from_u64(5);
        let ind = monte_carlo_reliability(&model, &independent, 100_000, &mut rng);
        let cor = monte_carlo_reliability(&model, &correlated, 100_000, &mut rng);
        assert!(cor.live.value < ind.live.value - 0.005);
    }

    #[test]
    #[should_panic(expected = "disagree on the cluster size")]
    fn size_mismatch_panics() {
        let model = RaftModel::standard(3);
        let failure_model = CorrelationModel::independent(vec![FaultProfile::crash_only(0.1); 4]);
        let mut rng = StdRng::seed_from_u64(1);
        monte_carlo_reliability(&model, &failure_model, 10, &mut rng);
    }

    #[test]
    fn parallel_estimate_agrees_with_exact_analysis() {
        let model = RaftModel::standard(5);
        let deployment = Deployment::uniform_crash(5, 0.05);
        let exact = counting_reliability(&model, &deployment);
        let mc = monte_carlo_independent_par(&model, &deployment, 200_000, 11);
        assert!(
            mc.live.contains(exact.p_live),
            "exact {} not in [{}, {}]",
            exact.p_live,
            mc.live.lower,
            mc.live.upper
        );
        assert!((mc.safe.value - 1.0).abs() < 1e-12);
        assert_eq!(mc.samples, 200_000);
    }

    #[test]
    fn parallel_is_bit_identical_across_thread_counts() {
        let model = RaftModel::standard(7);
        let profiles = vec![FaultProfile::crash_only(0.04); 7];
        let failure_model = CorrelationModel::independent(profiles)
            .with_group(CorrelationGroup::crash_shock((0..7).collect(), 0.01));
        // An awkward sample count: exercises the short tail chunk.
        let samples = 3 * MC_CHUNK_SIZE + 17;
        let reference = monte_carlo_reliability_par(&model, &failure_model, samples, 42);
        for threads in [1usize, 2, 3, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            let report =
                pool.install(|| monte_carlo_reliability_par(&model, &failure_model, samples, 42));
            assert_eq!(report, reference, "divergence at {threads} threads");
        }
    }

    #[test]
    fn parallel_is_deterministic_per_seed_and_sensitive_to_it() {
        let model = RaftModel::standard(5);
        let deployment = Deployment::uniform_crash(5, 0.08);
        let a = monte_carlo_independent_par(&model, &deployment, 20_000, 1);
        let b = monte_carlo_independent_par(&model, &deployment, 20_000, 1);
        assert_eq!(a, b);
        // Two seeds can collide on the same hit count by chance; across five seeds at
        // ~12 hits of standard deviation, identical counts everywhere would mean the
        // seed is being ignored.
        let distinct = (2u64..=6)
            .map(|seed| monte_carlo_independent_par(&model, &deployment, 20_000, seed))
            .filter(|r| *r != a)
            .count();
        assert!(
            distinct > 0,
            "different seeds should draw different samples"
        );
    }
}
