//! Data-loss (durability) analysis.
//!
//! §4 of the paper: quorum systems that enforce durability are conservative because they
//! assume the worst case — "in theory, they no longer guarantee safety if *any*
//! combination of |Q_per| nodes fail. But, in reality, the probability that |Q_per|
//! failures leads to data loss is vanishingly unlikely": in a 100-node cluster with
//! |Q_per| = 10 and p_u = 10% there is a ~50% chance that 10 nodes fail, but only ~1 in
//! 10 billion that the failures cover the most recently formed persistence quorum.
//! This module quantifies both sides of that argument, plus repair-aware MTTDL.

use fault_model::markov::RepairableGroup;
use fault_model::metrics::Nines;

use crate::counting::FaultCountDistribution;
use crate::deployment::Deployment;
use crate::failure::FailureConfig;
use crate::protocol::ProtocolModel;

/// Probability that at least `k` nodes of the deployment are faulty over the window —
/// the "scary" number the f-threshold model reacts to.
pub fn probability_at_least_faults(deployment: &Deployment, k: usize) -> f64 {
    FaultCountDistribution::cached(deployment).probability_at_least_faults(k)
}

/// Probability that *every* member of `quorum` is faulty over the window — i.e. the most
/// recently written persistence quorum loses all of its copies.
///
/// # Panics
///
/// Panics if any member index is out of range or repeated.
pub fn quorum_loss_probability(deployment: &Deployment, quorum: &[usize]) -> f64 {
    let mut seen = vec![false; deployment.len()];
    let mut p = 1.0;
    for &m in quorum {
        assert!(m < deployment.len(), "quorum member {m} out of range");
        assert!(!seen[m], "quorum member {m} repeated");
        seen[m] = true;
        p *= deployment.profile(m).fault_probability();
    }
    p
}

/// Durability of data persisted on `quorum`: the probability that at least one member
/// survives the window.
pub fn quorum_durability(deployment: &Deployment, quorum: &[usize]) -> Nines {
    Nines::from_probability(1.0 - quorum_loss_probability(deployment, quorum))
}

/// The two sides of the paper's §4 durability argument for one deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurabilityClaim {
    /// Probability that at least `quorum_size` nodes fail (the f-threshold "alarm").
    pub p_threshold_exceeded: f64,
    /// Probability that the specific, most recently formed persistence quorum loses all
    /// of its members (actual data loss).
    pub p_data_loss: f64,
    /// The persistence-quorum size used.
    pub quorum_size: usize,
}

impl DurabilityClaim {
    /// How many times more likely "more than |Q_per| faults" is than actual data loss.
    pub fn pessimism_factor(&self) -> f64 {
        if self.p_data_loss == 0.0 {
            f64::INFINITY
        } else {
            self.p_threshold_exceeded / self.p_data_loss
        }
    }
}

/// Evaluates the §4 claim for a deployment: compares the probability of `quorum_size`
/// simultaneous faults with the probability that a *specific* quorum of the
/// `quorum_size` least reliable nodes is wiped out.
pub fn durability_claim(deployment: &Deployment, quorum_size: usize) -> DurabilityClaim {
    assert!(
        quorum_size <= deployment.len(),
        "quorum cannot exceed the deployment"
    );
    let p_threshold_exceeded = probability_at_least_faults(deployment, quorum_size);
    // The adversarial placement: data persisted on the least reliable nodes.
    let ranked = deployment.nodes_by_reliability();
    let worst: Vec<usize> = ranked[ranked.len() - quorum_size..].to_vec();
    let p_data_loss = quorum_loss_probability(deployment, &worst);
    DurabilityClaim {
        p_threshold_exceeded,
        p_data_loss,
        quorum_size,
    }
}

/// The §4 durability event as a [`ProtocolModel`]: "safe" iff at least one member of
/// a *specific* persistence quorum survives the window.
///
/// This is deliberately a *placement-sensitive* (non-counting) model — which nodes
/// fail matters, not just how many — so the exact counting engine cannot take it and
/// the analysis has to go through enumeration (tiny N), importance sampling (rare
/// loss events, the [`crate::rare_event`] engine) or Monte Carlo. It is the workhorse
/// of the `claim-durability-correlated` experiment, where the quorum's rack placement
/// interacts with correlated shocks. Liveness is vacuously true: the model speaks
/// only about data loss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistenceQuorumModel {
    n: usize,
    quorum: Vec<usize>,
}

impl PersistenceQuorumModel {
    /// A durability model over `n` nodes whose most recent persistence quorum is
    /// `quorum`.
    ///
    /// # Panics
    ///
    /// Panics if the quorum is empty, repeats a member, or indexes out of range.
    pub fn new(n: usize, quorum: Vec<usize>) -> Self {
        assert!(!quorum.is_empty(), "persistence quorum cannot be empty");
        let mut seen = vec![false; n];
        for &m in &quorum {
            assert!(m < n, "quorum member {m} out of range for {n} nodes");
            assert!(!seen[m], "quorum member {m} repeated");
            seen[m] = true;
        }
        Self { n, quorum }
    }

    /// The quorum members.
    pub fn quorum(&self) -> &[usize] {
        &self.quorum
    }
}

impl ProtocolModel for PersistenceQuorumModel {
    fn name(&self) -> String {
        format!("PersistenceQuorum(|Q|={})", self.quorum.len())
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    /// Data survives iff any quorum member is still correct.
    fn is_safe(&self, config: &FailureConfig) -> bool {
        self.quorum.iter().any(|&m| config.state(m).is_correct())
    }

    /// Durability-only model: liveness is out of scope and vacuously true.
    fn is_live(&self, _config: &FailureConfig) -> bool {
        true
    }

    fn cache_signature(&self) -> Option<Vec<u64>> {
        // Placement-sensitive: the exact member set (not just its size) is the
        // model's content, so every member index goes into the fingerprint.
        let mut sig = Vec::with_capacity(3 + self.quorum.len());
        sig.push(crate::protocol::signature_tags::PERSISTENCE_QUORUM);
        sig.push(self.n as u64);
        sig.push(self.quorum.len() as u64);
        sig.extend(self.quorum.iter().map(|&m| m as u64));
        Some(sig)
    }
}

/// Mean time (hours) until more than `tolerated_failures` nodes of an `n`-node group are
/// down simultaneously, with per-node failure rate `lambda` and repair rate `mu` — the
/// consensus analogue of MTTDL the storage community computes (§2).
pub fn consensus_mttdl(n: usize, lambda: f64, mu: f64, tolerated_failures: usize) -> f64 {
    RepairableGroup::new(n, lambda, mu, tolerated_failures).mean_time_to_threshold_exceeded()
}

/// Long-run probability that a quorum of `n - tolerated_failures` nodes is available in a
/// repairable group.
pub fn steady_state_quorum_availability(
    n: usize,
    lambda: f64,
    mu: f64,
    tolerated_failures: usize,
) -> f64 {
    RepairableGroup::new(n, lambda, mu, tolerated_failures).steady_state_availability()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_model::mode::FaultProfile;

    #[test]
    fn paper_hundred_node_claim() {
        // N = 100, |Q_per| = 10, p_u = 10%.
        let deployment = Deployment::uniform_crash(100, 0.10);
        let claim = durability_claim(&deployment, 10);
        // "there is a 50% chance that |Q_per| faults occur"
        assert!(
            (claim.p_threshold_exceeded - 0.5).abs() < 0.1,
            "got {}",
            claim.p_threshold_exceeded
        );
        // "one in ten billion probability" that those faults cover the quorum.
        assert!((claim.p_data_loss - 1e-10).abs() < 1e-12);
        assert!(claim.pessimism_factor() > 1e9);
    }

    #[test]
    fn quorum_loss_probability_is_product_of_members() {
        let deployment = Deployment::uniform_crash(5, 0.1);
        let p = quorum_loss_probability(&deployment, &[0, 1, 2]);
        assert!((p - 1e-3).abs() < 1e-12);
        assert!((quorum_durability(&deployment, &[0, 1, 2]).probability() - 0.999).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_quorum_durability_depends_on_members() {
        let deployment = Deployment::from_profiles(vec![
            FaultProfile::crash_only(0.01),
            FaultProfile::crash_only(0.08),
            FaultProfile::crash_only(0.08),
            FaultProfile::crash_only(0.08),
        ]);
        let unreliable_only = quorum_loss_probability(&deployment, &[1, 2, 3]);
        let with_reliable = quorum_loss_probability(&deployment, &[0, 2, 3]);
        assert!(with_reliable < unreliable_only / 5.0);
    }

    #[test]
    fn durability_claim_uses_least_reliable_nodes() {
        let deployment = Deployment::from_profiles(vec![
            FaultProfile::crash_only(0.001),
            FaultProfile::crash_only(0.5),
            FaultProfile::crash_only(0.5),
        ]);
        let claim = durability_claim(&deployment, 2);
        assert!((claim.p_data_loss - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mttdl_improves_with_repair_and_tolerance() {
        let without_repair = consensus_mttdl(5, 1e-4, 0.0, 2);
        let with_repair = consensus_mttdl(5, 1e-4, 1e-2, 2);
        assert!(with_repair > 10.0 * without_repair);
        let more_tolerant = consensus_mttdl(5, 1e-4, 1e-2, 3);
        assert!(more_tolerant > with_repair);
    }

    #[test]
    fn steady_state_availability_is_high_with_fast_repair() {
        let a = steady_state_quorum_availability(5, 1e-4, 1.0, 2);
        assert!(a > 0.999999999);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn repeated_quorum_members_are_rejected() {
        let deployment = Deployment::uniform_crash(3, 0.1);
        quorum_loss_probability(&deployment, &[0, 0]);
    }

    #[test]
    fn persistence_quorum_model_tracks_member_survival() {
        use fault_model::mode::NodeState;
        let model = PersistenceQuorumModel::new(5, vec![1, 3]);
        assert_eq!(model.num_nodes(), 5);
        assert_eq!(model.quorum(), &[1, 3]);
        // All members faulty: data lost even though other nodes are fine.
        let lost = FailureConfig::new(vec![
            NodeState::Correct,
            NodeState::Crashed,
            NodeState::Correct,
            NodeState::Byzantine,
            NodeState::Correct,
        ]);
        assert!(!model.is_safe(&lost));
        // One member survives: safe, regardless of the rest of the cluster.
        let saved = FailureConfig::new(vec![
            NodeState::Crashed,
            NodeState::Correct,
            NodeState::Crashed,
            NodeState::Crashed,
            NodeState::Crashed,
        ]);
        assert!(model.is_safe(&saved));
        assert!(model.is_live(&lost) && model.is_live(&saved));
        // Not a counting model: placement matters.
        assert!(model.as_counting().is_none());
    }

    #[test]
    fn persistence_quorum_model_agrees_with_analytic_loss_probability() {
        // Small enough for exhaustive enumeration: the model's unsafety equals the
        // closed-form quorum loss probability.
        let deployment = Deployment::uniform_crash(6, 0.2);
        let model = PersistenceQuorumModel::new(6, vec![0, 2, 4]);
        let report = crate::analyzer::analyze_exact(&model, &deployment);
        let analytic = quorum_loss_probability(&deployment, &[0, 2, 4]);
        assert!((report.unsafety() - analytic).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn persistence_quorum_model_rejects_bad_members() {
        PersistenceQuorumModel::new(3, vec![0, 7]);
    }
}
