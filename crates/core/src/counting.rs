//! Exact analysis by dynamic programming over fault counts.
//!
//! Both Theorem 3.1 and Theorem 3.2 only look at *how many* nodes crashed and how many
//! are Byzantine. For such [`CountingModel`]s the exact joint distribution of
//! `(#crashed, #byzantine)` can be computed in O(N³) time for arbitrary heterogeneous
//! (but independent) per-node probabilities — a Poisson-binomial generalization — which
//! scales to the 100-node clusters of §4 where 2^N enumeration cannot go.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::deployment::Deployment;
use crate::enumeration::RawReliability;
use crate::protocol::CountingModel;

/// Memo key for [`FaultCountDistribution::cached`]: the exact per-node
/// `(crash, byzantine)` probability bit patterns. Keying on the bits (not on any
/// rounded or derived form) means a cache hit returns a distribution identical to
/// what the miss path would recompute, so memoization is observationally pure.
type ProfileKey = Vec<(u64, u64)>;

/// Cap on memoized distributions. A sweep touches at most a handful of deployments
/// per (N, p, axis) group; 128 covers every workload in the repository while
/// bounding memory at ~128 · O(N²) floats. Crossing the cap clears the map
/// wholesale — eviction only ever costs recomputation, never changes a result.
const MAX_CACHED_DISTRIBUTIONS: usize = 128;

static DISTRIBUTION_CACHE: OnceLock<Mutex<HashMap<ProfileKey, Arc<FaultCountDistribution>>>> =
    OnceLock::new();

/// The exact joint probability mass function of the number of crashed and Byzantine
/// nodes in a deployment with independent, heterogeneous per-node profiles.
#[derive(Debug, Clone)]
pub struct FaultCountDistribution {
    n: usize,
    /// `pmf[c][b]` = P[#crashed = c, #byzantine = b].
    pmf: Vec<Vec<f64>>,
    /// `tail[k]` = P[#crashed + #byzantine >= k], precomputed as a suffix sum so
    /// [`FaultCountDistribution::probability_at_least_faults`] is an O(1) lookup
    /// instead of an O(N²) re-summation per query (quadratic per sweep for callers
    /// like the durability analysis that query every threshold).
    tail: Vec<f64>,
}

impl FaultCountDistribution {
    /// Computes the distribution for a deployment.
    pub fn from_deployment(deployment: &Deployment) -> Self {
        let n = deployment.len();
        let mut pmf = vec![vec![0.0f64; n + 1]; n + 1];
        pmf[0][0] = 1.0;
        if deployment
            .profiles()
            .iter()
            .all(|p| p.byzantine_probability() == 0.0)
        {
            // Crash-only deployments (most of the paper's sweeps) have all their
            // mass in the `b = 0` column, so the DP collapses to a plain
            // Poisson-binomial over crashed counts: O(N²) instead of O(N³). Same
            // multiply/add sequence per surviving entry as the general loop below,
            // so the specialization is bit-identical to it.
            for (added, profile) in deployment.profiles().iter().enumerate() {
                let p_crash = profile.crash_probability();
                let p_ok = profile.correct_probability();
                for c in (0..=added).rev() {
                    let mass = pmf[c][0];
                    if mass == 0.0 {
                        continue;
                    }
                    pmf[c][0] = mass * p_ok;
                    pmf[c + 1][0] += mass * p_crash;
                }
            }
        } else {
            for (added, profile) in deployment.profiles().iter().enumerate() {
                let p_crash = profile.crash_probability();
                let p_byz = profile.byzantine_probability();
                let p_ok = profile.correct_probability();
                // Iterate downwards so each node is only counted once.
                for c in (0..=added).rev() {
                    for b in (0..=(added - c)).rev() {
                        let mass = pmf[c][b];
                        if mass == 0.0 {
                            continue;
                        }
                        pmf[c][b] = mass * p_ok;
                        pmf[c + 1][b] += mass * p_crash;
                        pmf[c][b + 1] += mass * p_byz;
                    }
                }
            }
        }
        // Suffix-sum the total-fault masses once; summing from the deep tail upward
        // keeps the small tail masses from being absorbed by the bulk.
        let mut tail = vec![0.0f64; n + 2];
        for k in (0..=n).rev() {
            let total_k: f64 = (0..=k).map(|c| pmf[c][k - c]).sum();
            tail[k] = tail[k + 1] + total_k;
        }
        Self { n, pmf, tail }
    }

    /// The distribution for `deployment`, memoized process-wide.
    ///
    /// Sweeps, trajectories and benches evaluate the same deployment's
    /// distribution over and over (every counting-engine cell of a samples sweep,
    /// every repeated bench call); the DP is a pure function of the per-node
    /// probability bits, so a bounded memo keyed on exactly those bits returns
    /// the identical value without the O(N²)–O(N³) recomputation. The cache is
    /// cleared wholesale when full (128 entries) rather than tracking recency:
    /// real workloads cycle over far fewer distinct deployments.
    pub fn cached(deployment: &Deployment) -> Arc<Self> {
        let key: ProfileKey = deployment
            .profiles()
            .iter()
            .map(|p| {
                (
                    p.crash_probability().to_bits(),
                    p.byzantine_probability().to_bits(),
                )
            })
            .collect();
        let cache = DISTRIBUTION_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(hit) = cache.lock().unwrap().get(&key) {
            return hit.clone();
        }
        // Compute outside the lock: a 100-node DP must not serialize other sweeps.
        let dist = Arc::new(Self::from_deployment(deployment));
        let mut cache = cache.lock().unwrap();
        if cache.len() >= MAX_CACHED_DISTRIBUTIONS && !cache.contains_key(&key) {
            cache.clear();
        }
        cache.entry(key).or_insert(dist).clone()
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `P[#crashed = crashed, #byzantine = byzantine]`.
    pub fn probability(&self, crashed: usize, byzantine: usize) -> f64 {
        if crashed + byzantine > self.n {
            return 0.0;
        }
        self.pmf[crashed][byzantine]
    }

    /// `P[#crashed + #byzantine = faulty]`.
    pub fn probability_total_faults(&self, faulty: usize) -> f64 {
        (0..=faulty.min(self.n))
            .map(|c| self.probability(c, faulty - c))
            .sum()
    }

    /// `P[#crashed + #byzantine >= faulty]` — an O(1) lookup into the precomputed
    /// suffix sums.
    pub fn probability_at_least_faults(&self, faulty: usize) -> f64 {
        if faulty > self.n {
            return 0.0;
        }
        self.tail[faulty].min(1.0)
    }

    /// Sums `P[c, b]` over all count pairs where `predicate(c, b)` holds.
    pub fn probability_where(&self, predicate: impl Fn(usize, usize) -> bool) -> f64 {
        let mut total = 0.0;
        for c in 0..=self.n {
            for b in 0..=(self.n - c) {
                let mass = self.pmf[c][b];
                // Zero-mass pairs cannot change the sum; skipping them drops the
                // whole `b > 0` triangle of a crash-only distribution, which is
                // most of the predicate calls on a 100-node scan.
                if mass != 0.0 && predicate(c, b) {
                    total += mass;
                }
            }
        }
        total.min(1.0)
    }
}

/// Computes the exact safety/liveness probabilities of a counting model under a
/// deployment with independent (possibly heterogeneous) nodes.
pub fn counting_reliability<M: CountingModel + ?Sized>(
    model: &M,
    deployment: &Deployment,
) -> RawReliability {
    assert_eq!(
        model.num_nodes(),
        deployment.len(),
        "model and deployment disagree on the cluster size"
    );
    let dist = FaultCountDistribution::cached(deployment);
    let p_safe = dist.probability_where(|c, b| model.is_safe_counts(c, b));
    let p_live = dist.probability_where(|c, b| model.is_live_counts(c, b));
    let p_both = dist.probability_where(|c, b| model.is_safe_and_live_counts(c, b));
    RawReliability {
        p_safe,
        p_live,
        p_safe_and_live: p_both,
    }
    .clamped()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumeration::enumerate_reliability;
    use crate::pbft_model::PbftModel;
    use crate::raft_model::RaftModel;
    use fault_model::mode::FaultProfile;
    use proptest::prelude::*;

    #[test]
    fn distribution_sums_to_one() {
        let d = Deployment::uniform_mixed(9, 0.05, 0.01);
        let dist = FaultCountDistribution::from_deployment(&d);
        let total: f64 = (0..=9)
            .flat_map(|c| (0..=(9 - c)).map(move |b| (c, b)))
            .map(|(c, b)| dist.probability(c, b))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_crash_distribution_is_binomial() {
        let d = Deployment::uniform_crash(6, 0.1);
        let dist = FaultCountDistribution::from_deployment(&d);
        for k in 0..=6 {
            let expected = quorum::metrics::binomial_pmf(6, k, 0.1);
            assert!((dist.probability(k, 0) - expected).abs() < 1e-12);
            assert!((dist.probability_total_faults(k) - expected).abs() < 1e-12);
        }
        assert!((dist.probability_at_least_faults(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counting_matches_enumeration_for_raft() {
        for (n, p) in [(3usize, 0.01), (5, 0.02), (7, 0.04), (9, 0.08)] {
            let model = RaftModel::standard(n);
            let d = Deployment::uniform_crash(n, p);
            let exact = enumerate_reliability(&model, &d);
            let fast = counting_reliability(&model, &d);
            assert!((exact.p_safe - fast.p_safe).abs() < 1e-12);
            assert!((exact.p_live - fast.p_live).abs() < 1e-12);
            assert!((exact.p_safe_and_live - fast.p_safe_and_live).abs() < 1e-12);
        }
    }

    #[test]
    fn counting_matches_enumeration_for_pbft_mixed_faults() {
        let model = PbftModel::standard(7);
        let d = Deployment::uniform_mixed(7, 0.03, 0.005);
        let exact = enumerate_reliability(&model, &d);
        let fast = counting_reliability(&model, &d);
        assert!((exact.p_safe - fast.p_safe).abs() < 1e-12);
        assert!((exact.p_live - fast.p_live).abs() < 1e-12);
        assert!((exact.p_safe_and_live - fast.p_safe_and_live).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_profiles_are_exact() {
        let model = RaftModel::standard(5);
        let d = Deployment::from_profiles(vec![
            FaultProfile::crash_only(0.01),
            FaultProfile::crash_only(0.02),
            FaultProfile::crash_only(0.08),
            FaultProfile::crash_only(0.04),
            FaultProfile::crash_only(0.005),
        ]);
        let exact = enumerate_reliability(&model, &d);
        let fast = counting_reliability(&model, &d);
        assert!((exact.p_safe_and_live - fast.p_safe_and_live).abs() < 1e-12);
    }

    #[test]
    fn scales_to_one_hundred_nodes() {
        let model = RaftModel::standard(99);
        let d = Deployment::uniform_crash(99, 0.1);
        let r = counting_reliability(&model, &d);
        assert!(r.p_live > 0.999999);
        assert_eq!(r.p_safe, 1.0);
    }

    #[test]
    fn cached_tail_sums_match_a_naive_resummation() {
        // Heterogeneous mixed-mode deployment, so no symmetry hides an indexing bug.
        let d = Deployment::from_profiles(
            (0..12)
                .map(|i| FaultProfile::new(0.01 * (i + 1) as f64, 0.002 * (i % 4) as f64))
                .collect(),
        );
        let dist = FaultCountDistribution::from_deployment(&d);
        for faulty in 0..=13 {
            let naive: f64 = (faulty..=dist.n())
                .map(|k| dist.probability_total_faults(k))
                .sum::<f64>()
                .min(1.0);
            let cached = dist.probability_at_least_faults(faulty);
            assert!(
                (cached - naive).abs() < 1e-12,
                "faulty={faulty}: cached {cached} vs naive {naive}"
            );
        }
        assert_eq!(dist.probability_at_least_faults(13), 0.0);
        assert!((dist.probability_at_least_faults(0) - 1.0).abs() < 1e-12);
    }

    /// The crash-only O(N²) specialization and the memo cache are both pinned
    /// bit-identical to a fresh run of the general O(N³) DP.
    #[test]
    fn crash_only_specialization_and_cache_are_bit_identical_to_the_general_dp() {
        let d = Deployment::from_profiles(
            (0..40)
                .map(|i| FaultProfile::crash_only(0.002 * (i + 1) as f64))
                .collect(),
        );
        // General-path reference: force the 2-D DP by a zero-mass byzantine column
        // trick is unavailable (any nonzero p_byz changes the numbers), so replay
        // the general recurrence by hand instead.
        let mut pmf = vec![vec![0.0f64; 41]; 41];
        pmf[0][0] = 1.0;
        for (added, profile) in d.profiles().iter().enumerate() {
            let p_crash = profile.crash_probability();
            let p_byz = profile.byzantine_probability();
            let p_ok = profile.correct_probability();
            for c in (0..=added).rev() {
                for b in (0..=(added - c)).rev() {
                    let mass = pmf[c][b];
                    if mass == 0.0 {
                        continue;
                    }
                    pmf[c][b] = mass * p_ok;
                    pmf[c + 1][b] += mass * p_crash;
                    pmf[c][b + 1] += mass * p_byz;
                }
            }
        }
        let fast = FaultCountDistribution::from_deployment(&d);
        for (c, row) in pmf.iter().enumerate() {
            for (b, &expected) in row.iter().enumerate().take(41 - c) {
                assert_eq!(
                    fast.probability(c, b).to_bits(),
                    expected.to_bits(),
                    "pmf[{c}][{b}] diverged from the general DP"
                );
            }
        }
        let first = FaultCountDistribution::cached(&d);
        let second = FaultCountDistribution::cached(&d);
        assert!(
            Arc::ptr_eq(&first, &second),
            "the second lookup must hit the memo"
        );
        for c in 0..=40usize {
            assert_eq!(
                first.probability(c, 0).to_bits(),
                fast.probability(c, 0).to_bits()
            );
        }
    }

    proptest! {
        #[test]
        fn counting_always_matches_enumeration(
            n in 3usize..9,
            p_crash in 0.0..0.3f64,
            p_byz in 0.0..0.1f64,
        ) {
            let model = PbftModel::standard(n);
            let d = Deployment::uniform_mixed(n, p_crash, p_byz);
            let exact = enumerate_reliability(&model, &d);
            let fast = counting_reliability(&model, &d);
            prop_assert!((exact.p_safe - fast.p_safe).abs() < 1e-9);
            prop_assert!((exact.p_live - fast.p_live).abs() < 1e-9);
            prop_assert!((exact.p_safe_and_live - fast.p_safe_and_live).abs() < 1e-9);
        }
    }
}
