//! Probabilistic reliability analysis of consensus protocols.
//!
//! This crate is the primary contribution of the reproduction: it turns the position of
//! "Real Life Is Uncertain. Consensus Should Be Too!" (HotOS '25) into an executable
//! analysis and design library. Given a *deployment* (per-node probabilities of crashing
//! or turning Byzantine over a mission window, derived from fault curves) and a
//! *protocol model* (which failure configurations keep the protocol safe and live —
//! Theorems 3.1 and 3.2 of the paper), it computes probabilistic safety and liveness
//! guarantees, and uses them to drive the probability-native mechanisms the paper
//! sketches in §4.
//!
//! # Layout
//!
//! * [`deployment`] — deployments: per-node [`fault_model::FaultProfile`]s plus helpers
//!   to build them from fleets and fault curves.
//! * [`failure`] — failure configurations (who crashed, who is Byzantine) and their
//!   probabilities under a deployment.
//! * [`protocol`] — the [`protocol::ProtocolModel`] and [`protocol::CountingModel`]
//!   traits.
//! * [`raft_model`], [`pbft_model`] — Theorem 3.2 and Theorem 3.1 as predicates, with
//!   configurable quorum sizes.
//! * [`enumeration`], [`counting`], [`montecarlo`], [`rare_event`], [`simulation`] —
//!   the five analysis engines: exact enumeration over failure configurations, exact
//!   dynamic programming over fault counts, rayon-parallel Monte Carlo sampling,
//!   importance sampling with per-node probability tilting for rare failure events
//!   (tail probabilities plain sampling cannot resolve), and empirical discrete-event
//!   simulation of the executable protocols (the validation loop: analytic
//!   prediction ↔ measured system behaviour).
//! * [`packed`] — the bit-sliced Monte Carlo kernel: 64 scenarios per pass for
//!   counting models, auto-selected by the Monte Carlo engine
//!   (see [`montecarlo::McKernel`]).
//! * [`engine`] — the unified engine layer: the [`engine::AnalysisEngine`] trait over
//!   the five engines, [`engine::Scenario`], [`engine::Budget`] and the auto-selector
//!   (which picks among the four analytic engines; simulation runs only on request).
//! * [`analyzer`] — the front-end: [`analyzer::analyze_auto`] picks an engine within a
//!   budget and returns an [`engine::AnalysisOutcome`] (a
//!   [`analyzer::ReliabilityReport`] tagged with the engine that produced it).
//! * [`query`] — the sweep-native front door: [`query::Query`] /
//!   [`query::AnalysisSession`] plan-and-execute whole grids, time-domain trajectory
//!   cells ([`query::TimeAxis`], repairable fleets) and paired analytic-vs-simulation
//!   cross-validation with z-scores, rendered to tables and JSON.
//! * [`cache`] — the concurrent cross-request session cache behind
//!   [`query::AnalysisSession`]: sharded, size-bounded, LRU-evicting scratch
//!   keyed by cell signature, with hit/miss/eviction counters
//!   ([`cache::CacheStats`]).
//! * [`epistemic`] — second-order uncertainty: deterministic posterior
//!   parameter draws ([`epistemic::posterior_draws`]) propagated through the
//!   engines by the query planner, the resulting
//!   [`epistemic::EpistemicReport`] separating epistemic (parameter) from
//!   aleatoric (sampling) intervals, and calibration diagnostics
//!   ([`epistemic::calibrate`]) against known ground truth.
//! * [`durability`] — data-loss analysis: probability that failures cover a persistence
//!   quorum, and MTTDL-style Markov results.
//! * [`heterogeneity`] — heterogeneous fleets: quorum placement policies ("require a
//!   reliable node"), node-replacement what-ifs.
//! * [`cost`] — price/carbon-aware deployment search over an instance catalogue.
//! * [`mod@optimize`] — the probability-native deployment optimizer: a three-tier
//!   search (counting/packed screening → importance-sampling refinement →
//!   optional time-domain scoring) over node count, fault curves, placement
//!   across failure domains and flexible quorums, emitting a ranked Pareto
//!   frontier of cost vs nines ([`optimize::FrontierRecord`]).
//! * [`tradeoff`] — safety vs. liveness trade-off sweeps across cluster and quorum sizes.
//! * [`dynamic_quorum`] — smallest quorum sizes meeting a target guarantee.
//! * [`leader`] — reliability-aware leader ranking and preemptive reconfiguration
//!   planning.
//! * [`committee`] — committee selection under heterogeneous reliability.
//! * [`timevarying`] — guarantees as a function of mission time under fault curves.
//! * [`end_to_end`] — translating protocol-level safety/liveness into application-level
//!   availability and durability.
//! * [`report`] — plain-text table formatting used by the benchmark harness.
//!
//! # Quickstart
//!
//! ```
//! use prob_consensus::analyzer::analyze_auto;
//! use prob_consensus::engine::Budget;
//! use prob_consensus::deployment::Deployment;
//! use prob_consensus::raft_model::RaftModel;
//!
//! // Three Raft nodes, each failing with 1% probability over the mission window.
//! let deployment = Deployment::uniform_crash(3, 0.01);
//! let outcome = analyze_auto(&RaftModel::standard(3), &deployment, &Budget::default());
//! // The paper: "Raft ... is only 99.97% safe and live in three node deployments".
//! assert_eq!(outcome.report.safe_and_live.as_percent(), "99.97%");
//! // The auto-selector picked the exact counting engine for this model.
//! assert!(outcome.is_exact());
//! ```

// Documentation is part of this crate's contract: every public item is
// documented, and CI builds rustdoc with `-D warnings` (see the `docs` job).
#![warn(missing_docs)]
pub mod analyzer;
pub mod cache;
pub mod committee;
pub mod cost;
pub mod counting;
pub mod deployment;
pub mod durability;
pub mod dynamic_quorum;
pub mod end_to_end;
pub mod engine;
pub mod enumeration;
pub mod epistemic;
pub mod failure;
pub mod heterogeneity;
pub mod json;
pub mod leader;
pub mod montecarlo;
pub mod optimize;
pub mod packed;
pub mod pbft_model;
pub mod protocol;
pub mod query;
pub mod raft_model;
pub mod rare_event;
pub mod report;
pub mod simulation;
pub mod timevarying;
pub mod tradeoff;

pub use analyzer::{
    analyze, analyze_auto, analyze_exact, analyze_scenario, AnalysisError, ReliabilityReport,
};
pub use cache::CacheStats;
pub use deployment::Deployment;
pub use engine::{
    AnalysisEngine, AnalysisOutcome, Budget, EngineChoice, EpistemicBudget, FaultEnvironment,
    InvalidBudget, Scenario, SimBudget,
};
pub use epistemic::{
    calibrate, posterior_draws, CalibrationConfig, CalibrationReport, EpistemicDraw,
    EpistemicReport, PosteriorDraw,
};
pub use failure::FailureConfig;
pub use json::JsonValue;
pub use optimize::{
    optimize, Candidate, DeploymentSpace, FailureDomains, FrontierRecord, NodeType, OptimizeReport,
    OptimizerConfig, Placement, RepairPolicy, TargetSpec, OPTIMIZER_SALT,
};
pub use pbft_model::PbftModel;
pub use protocol::{CountingModel, ExecutableSpec, ProtocolModel};
pub use query::{
    logspace, AnalysisReport, AnalysisSession, CellRecord, CorrelationSpec, Divergence,
    DivergenceDirection, FaultAxis, Metrics, ProtocolSpec, Query, QueryPlan, StreamSink, TimeAxis,
    TrajectoryKind, TrajectoryPoint, TrajectoryRecord, ValidationRecord, DIVERGENCE_Z,
};
pub use raft_model::RaftModel;
pub use rare_event::{ImportanceSamplingEngine, Proposal, RareEventReport};
pub use simulation::{SimulationEngine, SimulationReport};
